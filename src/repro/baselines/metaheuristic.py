"""Metaheuristic schedule search (a MOSCOA-style comparison baseline).

The paper's related work cites metaheuristic static schedulers (Akbari &
Rashidi's cuckoo-search MOSCOA, [2]).  This module provides a simple but
competent representative - random-restart stochastic local search over
the contiguous-schedule space - so the exact constraint-solver approach
can be compared against the metaheuristic alternative on equal terms
(same profiling table, same objective, same candidate-set interface).

Moves are schedule-space native: shift a chunk boundary by one stage,
swap two chunks' PU assignments, split a chunk onto an unused PU, or
merge two adjacent chunks.  All moves preserve contiguity (C2) by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.optimizer import OptimizationResult, ScheduleCandidate
from repro.core.profiler import ProfilingTable
from repro.core.schedule import Schedule
from repro.core.stage import Application
from repro.errors import SchedulingError

#: (boundaries, pus): boundaries are the chunk split points; pus the
#: distinct PU class per chunk, in pipeline order.
_State = Tuple[Tuple[int, ...], Tuple[str, ...]]


@dataclass
class SearchLog:
    """Bookkeeping of one search run."""

    evaluations: int = 0
    improvements: int = 0
    restarts: int = 0


class MetaheuristicOptimizer:
    """Random-restart local search over contiguous schedules.

    Args:
        application / table: Same inputs as the exact optimizer.
        pu_classes: Schedulable classes (defaults to the table's).
        restarts: Independent random starting points.
        moves_per_restart: Local-search move attempts per restart.
        seed: RNG seed.
    """

    def __init__(
        self,
        application: Application,
        table: ProfilingTable,
        pu_classes: Optional[Sequence[str]] = None,
        restarts: int = 8,
        moves_per_restart: int = 200,
        seed: int = 0,
    ):
        self.application = application
        self.table = table
        self.pu_classes = tuple(pu_classes or table.pu_classes)
        if restarts < 1 or moves_per_restart < 1:
            raise SchedulingError("restarts and moves must be >= 1")
        self.restarts = restarts
        self.moves_per_restart = moves_per_restart
        self.seed = seed
        self.log = SearchLog()
        self._lat = {
            (i, pu): table.latency(stage, pu)
            for i, stage in enumerate(application.stage_names)
            for pu in self.pu_classes
        }

    # ------------------------------------------------------------------
    # State handling
    # ------------------------------------------------------------------
    def _to_schedule(self, state: _State) -> Schedule:
        boundaries, pus = state
        assignments: List[str] = []
        bounds = (0,) + boundaries + (self.application.num_stages,)
        for chunk, pu in enumerate(pus):
            assignments.extend([pu] * (bounds[chunk + 1] - bounds[chunk]))
        return Schedule.from_assignments(assignments)

    def _latency(self, state: _State) -> float:
        self.log.evaluations += 1
        boundaries, pus = state
        bounds = (0,) + boundaries + (self.application.num_stages,)
        worst = 0.0
        for chunk, pu in enumerate(pus):
            total = sum(
                self._lat[(i, pu)]
                for i in range(bounds[chunk], bounds[chunk + 1])
            )
            worst = max(worst, total)
        return worst

    def _random_state(self, rng: np.random.Generator) -> _State:
        n = self.application.num_stages
        max_chunks = min(len(self.pu_classes), n)
        k = int(rng.integers(1, max_chunks + 1))
        boundaries = tuple(
            sorted(rng.choice(np.arange(1, n), size=k - 1, replace=False))
        ) if k > 1 else ()
        pus = tuple(
            rng.choice(self.pu_classes, size=k, replace=False).tolist()
        )
        return boundaries, pus

    # ------------------------------------------------------------------
    # Moves (all contiguity-preserving)
    # ------------------------------------------------------------------
    def _neighbours(self, state: _State,
                    rng: np.random.Generator) -> Optional[_State]:
        boundaries, pus = state
        n = self.application.num_stages
        moves: List[Callable[[], Optional[_State]]] = []

        def shift_boundary() -> Optional[_State]:
            if not boundaries:
                return None
            index = int(rng.integers(0, len(boundaries)))
            delta = int(rng.choice([-1, 1]))
            moved = boundaries[index] + delta
            lo = boundaries[index - 1] + 1 if index > 0 else 1
            hi = (boundaries[index + 1] - 1
                  if index + 1 < len(boundaries) else n - 1)
            if not lo <= moved <= hi:
                return None
            new = list(boundaries)
            new[index] = moved
            return tuple(new), pus

        def swap_pus() -> Optional[_State]:
            if len(pus) < 2:
                return None
            i, j = rng.choice(len(pus), size=2, replace=False)
            new = list(pus)
            new[i], new[j] = new[j], new[i]
            return boundaries, tuple(new)

        def replace_pu() -> Optional[_State]:
            unused = [p for p in self.pu_classes if p not in pus]
            if not unused:
                return None
            index = int(rng.integers(0, len(pus)))
            new = list(pus)
            new[index] = unused[int(rng.integers(0, len(unused)))]
            return boundaries, tuple(new)

        def split_chunk() -> Optional[_State]:
            unused = [p for p in self.pu_classes if p not in pus]
            if not unused:
                return None
            bounds = (0,) + boundaries + (n,)
            wide = [
                c for c in range(len(pus))
                if bounds[c + 1] - bounds[c] >= 2
            ]
            if not wide:
                return None
            chunk = wide[int(rng.integers(0, len(wide)))]
            cut = int(rng.integers(bounds[chunk] + 1, bounds[chunk + 1]))
            new_boundaries = tuple(sorted(boundaries + (cut,)))
            new_pus = list(pus)
            new_pus.insert(
                chunk + 1, unused[int(rng.integers(0, len(unused)))]
            )
            return new_boundaries, tuple(new_pus)

        def merge_chunks() -> Optional[_State]:
            if len(pus) < 2:
                return None
            index = int(rng.integers(0, len(pus) - 1))
            new_boundaries = tuple(
                b for k, b in enumerate(boundaries) if k != index
            )
            new_pus = tuple(
                p for k, p in enumerate(pus) if k != index + 1
            )
            return new_boundaries, new_pus

        moves = [shift_boundary, swap_pus, replace_pu, split_chunk,
                 merge_chunks]
        move = moves[int(rng.integers(0, len(moves)))]
        return move()

    # ------------------------------------------------------------------
    def optimize(self, k: int = 1) -> OptimizationResult:
        """Search; return the best ``k`` distinct schedules found."""
        rng = np.random.default_rng(self.seed)
        seen: dict = {}
        for _ in range(self.restarts):
            self.log.restarts += 1
            state = self._random_state(rng)
            best_latency = self._latency(state)
            seen[self._to_schedule(state).assignments] = best_latency
            for _ in range(self.moves_per_restart):
                neighbour = self._neighbours(state, rng)
                if neighbour is None:
                    continue
                latency = self._latency(neighbour)
                seen.setdefault(
                    self._to_schedule(neighbour).assignments, latency
                )
                if latency < best_latency:
                    state, best_latency = neighbour, latency
                    self.log.improvements += 1
        ranked = sorted(seen.items(), key=lambda kv: kv[1])[:k]
        candidates = [
            ScheduleCandidate(
                rank=rank,
                schedule=Schedule.from_assignments(assignments),
                predicted_latency_s=latency,
                gapness_s=Schedule.from_assignments(assignments).gapness(
                    self.application, self.table
                ),
            )
            for rank, (assignments, latency) in enumerate(ranked)
        ]
        return OptimizationResult(
            application=self.application.name,
            platform=self.table.platform,
            candidates=candidates,
            gap_threshold_s=float("inf"),
            utilization_optimum=None,
        )
