#!/usr/bin/env python3
"""Scenario: why schedules don't port across devices (paper section 1).

"A given pipeline schedule is not portable across devices": the optimal
mapping for the Pixel differs from the Nano's because their PU balances
differ.  This example optimizes the Octree pipeline per device, then
cross-applies each device's best schedule to every other device and
measures the damage - the quantitative case for re-optimizing per
target, i.e. for a *framework* rather than a fixed schedule.

Run:  python examples/schedule_portability.py
"""

from repro.apps import build_octree_application
from repro.baselines import measure_schedule
from repro.core import BetterTogether
from repro.eval.metrics import format_table
from repro.soc import all_platforms


def main() -> None:
    application = build_octree_application(n_points=100_000)
    platforms = all_platforms()

    plans = {}
    for platform in platforms:
        plans[platform.name] = BetterTogether(platform).run(application)
        schedule = plans[platform.name].schedule
        print(f"{platform.display_name:28s} -> "
              f"{schedule.describe(application)}")
    print()

    # Cross-apply: run platform A's schedule on platform B (when B has
    # the needed PU classes).
    rows = [["schedule from \\ run on"]
            + [p.display_name for p in platforms]]
    for source in platforms:
        schedule = plans[source.name].schedule
        row = [source.display_name]
        for target in platforms:
            usable = set(schedule.pu_classes_used) <= set(
                target.schedulable_classes()
            )
            if not usable:
                row.append("n/a")
                continue
            latency = measure_schedule(application, schedule, target)
            native = plans[target.name].measured_latency_s
            penalty = latency / native
            row.append(f"{latency * 1e3:.2f}ms ({penalty:.2f}x)")
        rows.append(row)
    print("cross-application latency (penalty vs the native schedule):")
    print(format_table(rows))
    print()

    # Quantify: the worst portability penalty observed.
    worst = 1.0
    for source in platforms:
        schedule = plans[source.name].schedule
        for target in platforms:
            if set(schedule.pu_classes_used) <= set(
                target.schedulable_classes()
            ):
                latency = measure_schedule(application, schedule, target)
                worst = max(
                    worst, latency / plans[target.name].measured_latency_s
                )
    print(f"worst cross-device penalty: {worst:.2f}x - schedules are "
          "device-specific; the portable artifact is the framework.")


if __name__ == "__main__":
    main()
