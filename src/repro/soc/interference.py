"""Intra-application interference model.

This is the phenomenon the whole paper is about (sections 3.2 and 5.3):
on edge SoCs, what the *other* PUs are doing changes a PU's throughput, in
platform-specific and even counter-intuitive ways:

* shared-DRAM bandwidth contention slows memory-bound kernels everywhere;
* vendor DVFS governors *boost* some PUs under system load - the mobile
  GPUs (Vulkan) and the OnePlus little cores got faster in the paper's
  measurements - while thermal/power budgets slow others (Jetson GPU,
  most CPU clusters).

The model exposes exactly what the rate-based discrete-event simulator
needs: given that a PU executes a kernel with memory-boundedness ``beta``
and bandwidth demand ``d`` while a set of co-runners draws bandwidth and
keeps ``co_load`` of the other PUs busy, produce an instantaneous *speed
multiplier* (< 1 means slower than isolated).

Design note: the profiler never sees this class.  It only observes times,
which is what makes the reproduction honest: interference-aware profiling
(paper section 3.2) measures the co-run condition, it does not read the
model's parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set

from repro.errors import PlatformError


@dataclass(frozen=True)
class DvfsCurve:
    """Frequency response of one PU class to co-run load.

    ``speed_at_full_load`` is the compute-speed multiplier when *all* other
    PUs are busy; at partial load the multiplier interpolates linearly from
    1.0.  Values above 1.0 model vendor boost behaviour (paper section 5.3
    observed up to ~2x GPU speedups under heavy CPU load).
    """

    speed_at_full_load: float

    def speed(self, co_load: float) -> float:
        """Compute-speed multiplier at a given co-run load."""
        if not 0.0 <= co_load <= 1.0:
            raise PlatformError(f"co_load must be in [0, 1], got {co_load}")
        return 1.0 + (self.speed_at_full_load - 1.0) * co_load


@dataclass(frozen=True)
class InterferenceModel:
    """Contention + DVFS response for one platform.

    Attributes:
        dram_bw_gbps: Total DRAM bandwidth shared by every PU (UMA).
        dvfs: Per-PU-class DVFS curves.
    """

    dram_bw_gbps: float
    dvfs: Mapping[str, DvfsCurve] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dram_bw_gbps <= 0:
            raise PlatformError("dram_bw_gbps must be positive")

    # ------------------------------------------------------------------
    def compute_speed(self, pu_class: str, co_load: float) -> float:
        """Compute-side speed multiplier for ``pu_class`` when a fraction
        ``co_load`` of the other PUs is busy."""
        curve = self.dvfs.get(pu_class)
        if curve is None:
            return 1.0
        return curve.speed(co_load)

    def bandwidth_factor(
        self, demand_gbps: float, total_demand_gbps: float
    ) -> float:
        """Fraction of its requested bandwidth a PU actually achieves.

        Bandwidth is allocated proportionally to demand when the sum of all
        demands exceeds the DRAM capability (a standard fair-share memory
        controller abstraction).
        """
        if demand_gbps <= 0.0:
            return 1.0
        if total_demand_gbps <= self.dram_bw_gbps:
            return 1.0
        return self.dram_bw_gbps / total_demand_gbps

    def speed_multiplier(
        self,
        pu_class: str,
        memory_boundedness: float,
        demand_gbps: float,
        total_demand_gbps: float,
        co_load: float,
    ) -> float:
        """Overall instantaneous speed multiplier for a running kernel.

        The kernel's time splits into a compute-bound part (scaled by the
        DVFS response) and a memory-bound part (scaled by the achieved
        bandwidth share); the multiplier is the harmonic combination:

        ``1 / ((1 - beta) / compute_speed + beta / bandwidth_factor)``
        """
        if not 0.0 <= memory_boundedness <= 1.0:
            raise PlatformError(
                f"memory_boundedness must be in [0, 1], got "
                f"{memory_boundedness}"
            )
        compute = self.compute_speed(pu_class, co_load)
        bandwidth = self.bandwidth_factor(demand_gbps, total_demand_gbps)
        beta = memory_boundedness
        return 1.0 / ((1.0 - beta) / compute + beta / bandwidth)


@dataclass(frozen=True)
class ExternalLoad:
    """Co-runner load from *outside* one pipeline's own chunks.

    The single-pipeline simulator derives interference from its own
    active set; a multi-tenant SoC adds co-runners the pipeline cannot
    see: other tenants' chunks on other PU classes, and foreign
    processes pinned anywhere.  This is the accounting object the
    serving layer hands the simulator:

    Attributes:
        busy: PU class -> fraction of time that class is kept busy by
            external co-runners (0 = idle, 1 = saturated).
        demand_gbps: Total DRAM bandwidth the external co-runners draw
            (contends with the pipeline on the shared memory
            controller).

    Busy load on a *different* class feeds the DVFS ``co_load`` input;
    busy load on the *same* class models time-sharing and divides the
    achievable rate by ``1 + fraction`` (fair-share scheduling of two
    co-located apps on one cluster).
    """

    busy: Mapping[str, float] = field(default_factory=dict)
    demand_gbps: float = 0.0

    def __post_init__(self) -> None:
        for pu_class, fraction in self.busy.items():
            if not 0.0 <= fraction <= 1.0:
                raise PlatformError(
                    f"external busy fraction for {pu_class!r} must be "
                    f"in [0, 1], got {fraction}"
                )
        if self.demand_gbps < 0.0:
            raise PlatformError("external demand_gbps must be >= 0")

    @property
    def is_empty(self) -> bool:
        return self.demand_gbps == 0.0 and not any(
            fraction > 0.0 for fraction in self.busy.values()
        )

    def combine(self, other: Optional["ExternalLoad"]) -> "ExternalLoad":
        """Superpose two external loads.

        Busy fractions add and saturate at 1.0 (two co-runners cannot
        keep one cluster more than fully busy); bandwidth demands add
        unboundedly (the memory controller sees the sum).
        """
        if other is None or other.is_empty:
            return self
        busy: Dict[str, float] = dict(self.busy)
        for pu_class, fraction in other.busy.items():
            busy[pu_class] = min(busy.get(pu_class, 0.0) + fraction, 1.0)
        return ExternalLoad(
            busy=busy, demand_gbps=self.demand_gbps + other.demand_gbps
        )

    def compute_only(self) -> "ExternalLoad":
        """This load with its DRAM demand stripped (busy kept).

        Counterfactual input for blame decomposition: comparing against
        the full load isolates how much slowdown the source's
        *bandwidth* contention contributes.
        """
        return ExternalLoad(busy=dict(self.busy), demand_gbps=0.0)

    def bandwidth_only(self) -> "ExternalLoad":
        """This load with its busy fractions stripped (demand kept).

        Counterfactual input for blame decomposition: comparing against
        the full load isolates the source's *compute* contention (DVFS
        co-load plus same-class time-sharing).
        """
        return ExternalLoad(busy={}, demand_gbps=self.demand_gbps)

    @classmethod
    def none(cls) -> "ExternalLoad":
        return cls()

    @classmethod
    def combined(
        cls, loads: Iterable[Optional["ExternalLoad"]]
    ) -> "ExternalLoad":
        """Superpose any number of loads (tenants plus injected drift)."""
        total = cls()
        for load in loads:
            if load is not None:
                total = total.combine(load)
        return total


def external_co_load(
    busy_classes: Set[str],
    pu_class: str,
    external: Optional[ExternalLoad],
    total_other_pus: int,
) -> float:
    """DVFS co-load for ``pu_class`` given internal *and* external load.

    The pipeline's own active chunks contribute 1.0 per distinct other
    class (they run flat out while active); external co-runners
    contribute their busy fraction on classes the pipeline is not
    already driving.  Saturates at 1.0, the interference-heavy
    profiling condition.
    """
    if total_other_pus <= 0:
        return 0.0
    others = set(busy_classes) - {pu_class}
    busy = float(len(others))
    if external is not None:
        for cls, fraction in external.busy.items():
            if cls != pu_class and cls not in others:
                busy += fraction
    return min(busy / total_other_pus, 1.0)


def co_load_fraction(busy_other_pus: int, total_other_pus: int) -> float:
    """Fraction of the *other* PUs currently busy, the DVFS model input.

    The interference-heavy profiling mode (paper section 3.2) corresponds
    to ``busy == total`` (all other PUs run the same computation), i.e. a
    co-load of 1.0; isolated profiling is 0.0.  During real pipeline
    execution the value moves between the two - which is precisely why
    isolated profiles mispredict and why even interference-heavy profiles
    retain a small error the autotuner (section 3.3, level 3) mops up.
    """
    if total_other_pus <= 0:
        return 0.0
    if busy_other_pus < 0 or busy_other_pus > total_other_pus:
        raise PlatformError(
            f"busy_other_pus={busy_other_pus} out of range "
            f"[0, {total_other_pus}]"
        )
    return busy_other_pus / total_other_pus
