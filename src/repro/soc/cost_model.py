"""Analytical (roofline-style) cost model for kernel execution on a PU.

The model answers one question: *how long does one invocation of a kernel,
described by a* :class:`~repro.soc.workprofile.WorkProfile`, *take on a given
PU in isolation?*  It is deliberately simple - a max(compute, memory)
roofline with structural penalties - because the paper's profiler is
black-box (section 3.2): what matters for reproducing BetterTogether is that
stage/PU affinities are heterogeneous in realistic ways (Fig. 1), not that
the absolute numbers match any specific silicon.

Interference is *not* modelled here; the
:class:`~repro.soc.interference.InterferenceModel` perturbs these isolated
times based on what the other PUs are doing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.pu import CpuCluster, Gpu
from repro.soc.workprofile import WorkProfile

# How strongly divergence hurts CPU pipelines (branch mispredictions) at
# zero irregularity-tolerance.  GPUs carry their own per-device penalty.
_CPU_DIVERGENCE_PENALTY = 0.5
# How much irregular access degrades achieved DRAM bandwidth.
_CPU_IRREGULAR_BW_LOSS = 0.55
_GPU_IRREGULAR_BW_LOSS = 0.75


@dataclass(frozen=True)
class CostBreakdown:
    """Execution-time decomposition for one kernel invocation on one PU.

    Attributes:
        compute_s: Arithmetic-limited time.
        memory_s: DRAM-traffic-limited time.
        overhead_s: Fixed dispatch / launch overhead.
        total_s: ``max(compute, memory) + overhead`` (compute and memory
            overlap on both CPU prefetchers and GPU latency hiding).
        memory_boundedness: Fraction of the overlapped portion attributable
            to memory - the interference model uses this to decide how much
            a bandwidth squeeze hurts.
        demand_bw_gbps: Average DRAM bandwidth drawn while executing, used
            by the interference model's contention accounting.
    """

    compute_s: float
    memory_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.overhead_s

    @property
    def memory_boundedness(self) -> float:
        denominator = self.compute_s + self.memory_s
        if denominator <= 0.0:
            return 0.0
        return self.memory_s / denominator

    def demand_bw_gbps(self, bytes_moved: float) -> float:
        """Average DRAM bandwidth drawn while executing (GB/s)."""
        if self.total_s <= 0.0:
            return 0.0
        return bytes_moved / self.total_s / 1e9


def cpu_cost(work: WorkProfile, cluster: CpuCluster) -> CostBreakdown:
    """Isolated execution time of ``work`` on a CPU cluster.

    Compute side: Amdahl over the cluster's cores, scaled by the kernel's
    CPU implementation efficiency, with penalties for irregular access and
    divergent branches that shrink as the microarchitecture's
    ``irregularity_tolerance`` grows (big OoO cores shrug these off, little
    in-order cores do not).

    Memory side: bytes over the cluster's achievable stream bandwidth,
    derated for irregular (non-prefetchable) access.
    """
    exposure = 1.0 - cluster.irregularity_tolerance
    irregular_factor = 1.0 + work.irregularity * exposure
    divergence_factor = (
        1.0 + _CPU_DIVERGENCE_PENALTY * work.divergence * exposure
    )
    core_rate_gflops = (
        cluster.freq_ghz
        * cluster.flops_per_cycle
        * cluster.sustained_efficiency
        * work.cpu_efficiency
        / (irregular_factor * divergence_factor)
    )
    usable_cores = min(float(cluster.cores), work.parallelism)
    serial_flops = work.flops * (1.0 - work.parallel_fraction)
    parallel_flops = work.flops * work.parallel_fraction
    compute_s = (
        serial_flops / (core_rate_gflops * 1e9)
        + parallel_flops / (core_rate_gflops * usable_cores * 1e9)
    )

    bw_gbps = cluster.stream_bw_gbps * (
        1.0 - _CPU_IRREGULAR_BW_LOSS * work.irregularity * exposure
    )
    memory_s = work.bytes_moved / (bw_gbps * 1e9)

    return CostBreakdown(
        compute_s=compute_s,
        memory_s=memory_s,
        overhead_s=cluster.dispatch_overhead_s,
    )


def gpu_cost(work: WorkProfile, gpu: Gpu) -> CostBreakdown:
    """Isolated execution time of ``work`` on an integrated GPU.

    Compute side: device peak scaled by the kernel's GPU implementation
    efficiency, derated by SIMT divergence and irregular access (per-device
    penalty strengths), and by occupancy when the kernel cannot fill the
    machine.  Any serial fraction runs on a single lane, which is why
    traversal-style stages are catastrophic on GPUs (section 4.1).

    Memory side: bytes over the GPU's stream bandwidth with a heavy derate
    for non-coalesced access.

    Overhead: one fixed cost per kernel launch (multi-pass algorithms pay
    it repeatedly - radix sort on mobile Vulkan being the canonical
    example behind Fig. 1's "GPU is bad at sorting").
    """
    divergence_factor = 1.0 + gpu.divergence_penalty * work.divergence
    irregular_factor = 1.0 + gpu.irregularity_penalty * work.irregularity
    occupancy = min(1.0, work.parallelism / gpu.min_parallelism)
    efficiency = work.effective_gpu_efficiency(gpu.api)
    device_rate_gflops = (
        gpu.sustained_gflops
        * efficiency
        * occupancy
        / (divergence_factor * irregular_factor)
    )
    lane_rate_gflops = (
        gpu.freq_ghz
        * gpu.flops_per_lane_cycle
        * gpu.sustained_efficiency
        * efficiency
        / (divergence_factor * irregular_factor)
    )
    serial_flops = work.flops * (1.0 - work.parallel_fraction)
    parallel_flops = work.flops * work.parallel_fraction
    compute_s = (
        serial_flops / (lane_rate_gflops * 1e9)
        + parallel_flops / (device_rate_gflops * 1e9)
    )

    bw_gbps = gpu.stream_bw_gbps * (
        1.0 - _GPU_IRREGULAR_BW_LOSS * work.irregularity
    )
    memory_s = work.bytes_moved / (bw_gbps * 1e9)

    return CostBreakdown(
        compute_s=compute_s,
        memory_s=memory_s,
        overhead_s=gpu.launch_overhead_s * work.gpu_launches,
    )


def pu_cost(work: WorkProfile, pu: "CpuCluster | Gpu") -> CostBreakdown:
    """Dispatch to :func:`cpu_cost` or :func:`gpu_cost` by PU type."""
    if isinstance(pu, CpuCluster):
        return cpu_cost(work, pu)
    if isinstance(pu, Gpu):
        return gpu_cost(work, pu)
    raise TypeError(f"unknown PU type: {type(pu).__name__}")
