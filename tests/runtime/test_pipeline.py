"""Tests for the threaded pipeline executor (functional back-end)."""

import threading

import numpy as np
import pytest

from repro.core import Application, Chunk, Stage
from repro.errors import PipelineError
from repro.runtime import ThreadedPipelineExecutor
from repro.soc import WorkProfile


def work():
    return WorkProfile(flops=1e3, bytes_moved=1e3, parallelism=4.0)


def make_counting_app(n_stages=3):
    """Each stage increments a counter; output proves order + coverage."""

    def stage_kernel(index):
        def kernel(task):
            trace = task["trace"]
            trace[index] = trace[index - 1] + 1 if index > 0 else 1
        return kernel

    stages = [
        Stage(f"s{i}", work(),
              {"cpu": stage_kernel(i), "gpu": stage_kernel(i)})
        for i in range(n_stages)
    ]

    def make_task(seed):
        return {"trace": np.zeros(n_stages, dtype=np.int64),
                "seed": np.array([seed], dtype=np.int64)}

    def validate(task):
        expected = np.arange(1, n_stages + 1)
        if not np.array_equal(np.asarray(task["trace"]), expected):
            raise ValueError(f"bad trace {task['trace']}")

    return Application("counting", stages, make_task=make_task,
                       validate_task=validate)


class TestThreadedExecutor:
    def test_single_chunk(self):
        app = make_counting_app(3)
        executor = ThreadedPipelineExecutor(app, [Chunk(0, 3, "big")])
        result = executor.run(5, validate=True)
        assert result.n_tasks == 5
        assert result.chunk_stage_counts == {0: 15}

    def test_multi_chunk_splits_work(self):
        app = make_counting_app(4)
        chunks = [Chunk(0, 2, "big"), Chunk(2, 4, "gpu")]
        result = ThreadedPipelineExecutor(app, chunks).run(6, validate=True)
        assert result.chunk_stage_counts == {0: 12, 1: 12}

    def test_on_complete_sees_every_task(self):
        app = make_counting_app(2)
        seen = []
        ThreadedPipelineExecutor(
            app, [Chunk(0, 1, "big"), Chunk(1, 2, "little")]
        ).run(7, on_complete=lambda task, i: seen.append(i))
        assert seen == list(range(7))

    def test_task_objects_recycled(self):
        app = make_counting_app(2)
        ids = set()
        executor = ThreadedPipelineExecutor(
            app, [Chunk(0, 2, "big")], num_task_objects=2
        )
        executor.run(8, on_complete=lambda task, i: ids.add(id(task)))
        assert len(ids) == 2  # 8 tasks flowed through 2 objects

    def test_inputs_differ_per_task(self):
        app = make_counting_app(1)
        seeds = []
        ThreadedPipelineExecutor(app, [Chunk(0, 1, "big")]).run(
            4, on_complete=lambda task, i: seeds.append(
                int(np.asarray(task["seed"])[0]))
        )
        assert seeds == [0, 1, 2, 3]

    def test_validation_failure_propagates(self):
        app = make_counting_app(2)
        bad = Application(
            "bad", app.stages, make_task=app.make_task,
            validate_task=lambda task: (_ for _ in ()).throw(
                ValueError("boom")),
        )
        with pytest.raises(ValueError):
            ThreadedPipelineExecutor(bad, [Chunk(0, 2, "big")]).run(
                1, validate=True
            )

    def test_kernel_exception_surfaces(self):
        def explode(task):
            raise RuntimeError("kernel crash")

        stage = Stage("s0", work(), {"cpu": explode, "gpu": explode})
        app = Application(
            "crashy", [stage],
            make_task=lambda seed: {"x": np.zeros(1)},
        )
        with pytest.raises(PipelineError):
            ThreadedPipelineExecutor(app, [Chunk(0, 1, "big")]).run(2)

    def test_kernel_raises_on_task_k_unwinds_with_true_count(self):
        """Crash mid-stream: the pipeline unwinds (no hang), the error
        surfaces chained, and the message reports how far it got."""
        n_stages, crash_at = 3, 2

        def maybe_explode(task):
            if int(np.asarray(task["seed"])[0]) == crash_at:
                raise RuntimeError("kernel crash on task 2")
            task["trace"][0] = 1

        def passthrough(task):
            trace = task["trace"]
            trace[1:] = trace[0] + np.arange(1, n_stages)

        stages = [
            Stage("s0", work(),
                  {"cpu": maybe_explode, "gpu": maybe_explode}),
            Stage("s1", work(), {"cpu": passthrough, "gpu": passthrough}),
            Stage("s2", work(), {"cpu": lambda t: None,
                                 "gpu": lambda t: None}),
        ]
        app = Application(
            "crash-at-k", stages,
            make_task=lambda seed: {
                "trace": np.zeros(n_stages, dtype=np.int64),
                "seed": np.array([seed], dtype=np.int64),
            },
        )
        executor = ThreadedPipelineExecutor(
            app, [Chunk(0, 2, "big"), Chunk(2, 3, "gpu")],
            queue_timeout_s=10.0,
        )
        with pytest.raises(PipelineError) as info:
            executor.run(6)
        assert isinstance(info.value.__cause__, RuntimeError)
        assert "of 6 tasks" in str(info.value)

    def test_unexplained_early_shutdown_raises(self):
        """A queue closing under the driver with no dispatcher error
        must raise, not return a result claiming every task finished."""

        def sneaky(task):
            # Kernels run on the dispatcher thread; closing its input
            # queue models an external wedge/shutdown with no error.
            if int(np.asarray(task["seed"])[0]) == 1:
                threading.current_thread().in_queue.close()

        stage = Stage("s0", work(), {"cpu": sneaky, "gpu": sneaky})
        app = Application(
            "wedged", [stage],
            make_task=lambda seed: {
                "seed": np.array([seed], dtype=np.int64)},
        )
        executor = ThreadedPipelineExecutor(
            app, [Chunk(0, 1, "big")], queue_timeout_s=10.0,
        )
        with pytest.raises(PipelineError) as info:
            executor.run(6)
        assert "shut down early" in str(info.value)
        assert "of 6" in str(info.value)

    def test_result_reports_completed_count(self):
        app = make_counting_app(2)
        result = ThreadedPipelineExecutor(
            app, [Chunk(0, 2, "big")]
        ).run(5)
        assert result.completed == 5
        assert result.failures == []
        assert result.succeeded == 5

    def test_needs_task_factory(self):
        stage = Stage("s0", work(), {"cpu": lambda t: None,
                                     "gpu": lambda t: None})
        app = Application("nofactory", [stage])
        with pytest.raises(PipelineError):
            ThreadedPipelineExecutor(app, [Chunk(0, 1, "big")])

    def test_zero_tasks_rejected(self):
        app = make_counting_app(1)
        executor = ThreadedPipelineExecutor(app, [Chunk(0, 1, "big")])
        with pytest.raises(PipelineError):
            executor.run(0)


class TestChunkCoverValidation:
    def make_executor(self, chunks):
        app = make_counting_app(4)
        return ThreadedPipelineExecutor(app, chunks)

    def test_gap_rejected(self):
        with pytest.raises(PipelineError):
            self.make_executor([Chunk(0, 2, "big"), Chunk(3, 4, "gpu")])

    def test_overlap_rejected(self):
        with pytest.raises(PipelineError):
            self.make_executor([Chunk(0, 3, "big"), Chunk(2, 4, "gpu")])

    def test_short_cover_rejected(self):
        with pytest.raises(PipelineError):
            self.make_executor([Chunk(0, 3, "big")])

    def test_duplicate_pu_rejected(self):
        with pytest.raises(PipelineError):
            self.make_executor([
                Chunk(0, 1, "big"), Chunk(1, 3, "gpu"), Chunk(3, 4, "big"),
            ])

    def test_empty_rejected(self):
        with pytest.raises(PipelineError):
            self.make_executor([])


class TestSchedulePermutationEquivalence:
    """The octree must come out identical under any valid schedule -
    the core functional guarantee BT-Implementer relies on."""

    def test_octree_outputs_identical_across_schedules(self):
        from repro.apps import build_octree_application

        app = build_octree_application(n_points=400)
        outputs = []
        for chunks in (
            [Chunk(0, 7, "big")],
            [Chunk(0, 2, "gpu"), Chunk(2, 7, "big")],
            [Chunk(0, 3, "little"), Chunk(3, 5, "gpu"),
             Chunk(5, 7, "medium")],
        ):
            snapshot = {}

            def capture(task, index, snapshot=snapshot):
                if index == 0:
                    n = int(np.asarray(task["oc_num_cells"])[0])
                    snapshot["cells"] = n
                    snapshot["levels"] = np.asarray(
                        task["oc_level"])[:n].copy()
                    snapshot["codes"] = np.asarray(
                        task["oc_code"])[:n].copy()

            ThreadedPipelineExecutor(app, chunks).run(
                1, on_complete=capture, validate=True
            )
            outputs.append(snapshot)
        first = outputs[0]
        for other in outputs[1:]:
            assert other["cells"] == first["cells"]
            np.testing.assert_array_equal(other["levels"], first["levels"])
            np.testing.assert_array_equal(other["codes"], first["codes"])
