"""Seeded clock-domain violations, in both mixing directions.

Control time is counted in scheduler *ticks*; simulated time is
counted in virtual DES *seconds*.  Adding, subtracting, or comparing
across the two is always a unit bug.
"""


def mix_in_arithmetic(warmup_ticks, window_s):
    # CLOCK-MIX: control ticks added to virtual seconds.
    return warmup_ticks + window_s


def mix_in_comparison(elapsed_s, max_ticks):
    # CLOCK-MIX: virtual seconds compared against a tick budget.
    return elapsed_s > max_ticks


def advance_clock(sim_time_s):
    return sim_time_s


def run_beats(n_beats):
    return n_beats


def call_seconds_with_ticks(budget_ticks):
    # CLOCK-CALL: a tick count passed where seconds are declared.
    return advance_clock(budget_ticks)


def call_ticks_with_seconds(horizon_s):
    # CLOCK-CALL: virtual seconds passed where beats are declared.
    return run_beats(horizon_s)
