"""JSON persistence for profiling tables, schedules and candidate sets.

Collecting a profiling table takes ~6 minutes per device per application
on real hardware (paper section 3.2), so a deployable framework must be
able to cache and ship them.  This module round-trips the framework's
data products through plain JSON:

* :class:`~repro.core.profiler.ProfilingTable` - the expensive artifact,
* :class:`~repro.core.schedule.Schedule` - the deployable artifact,
* :class:`~repro.core.optimizer.OptimizationResult` - the candidate log
  (enough to resume an autotuning campaign on-device).

All dumps carry a ``kind`` and ``version`` tag plus a SHA-256 checksum
over the payload; loads validate all three.  Writes are atomic (tmp +
fsync + rename) so a crash mid-write never leaves a truncated artifact
behind - the checkpoint/resume machinery in :mod:`repro.core.session`
depends on both properties to tell "cell never written" from "cell
written and trustworthy".
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.optimizer import OptimizationResult, ScheduleCandidate
from repro.core.profiler import ProfilingTable
from repro.core.schedule import Schedule
from repro.errors import ReproError

FORMAT_VERSION = 1

#: Key under which the payload checksum is stored in every artifact.
CHECKSUM_KEY = "sha256"

PathLike = Union[str, Path]


class SerializationError(ReproError):
    """Raised for malformed or mismatched persisted artifacts."""


def _where(path: Optional[PathLike]) -> str:
    return f"{path}: " if path is not None else ""


def _tagged(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    return {"kind": kind, "version": FORMAT_VERSION, **payload}


def _check_tag(data: Dict[str, Any], kind: str,
               path: Optional[PathLike] = None) -> None:
    if not isinstance(data, dict):
        raise SerializationError(
            f"{_where(path)}expected a JSON object for {kind}"
        )
    if data.get("kind") != kind:
        raise SerializationError(
            f"{_where(path)}expected kind {kind!r}, "
            f"found {data.get('kind')!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"{_where(path)}expected {kind} version {FORMAT_VERSION}, "
            f"found {data.get('version')!r}"
        )


# ----------------------------------------------------------------------
# Atomic, checksummed file primitives
# ----------------------------------------------------------------------
def artifact_sha256(data: Dict[str, Any]) -> str:
    """Checksum of an artifact dict (the ``sha256`` key excluded)."""
    body = {k: v for k, v in data.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    Readers either see the previous complete file or the new complete
    file - never a truncated in-between, even across a crash or SIGKILL
    mid-write.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_json_report(path: PathLike, payload: Dict[str, Any]) -> None:
    """Persist a plain (untagged) JSON report atomically.

    The single sanctioned sink for tool output files - fault-sim
    reports, lint findings, race-checker verdicts - so every artifact
    write in the tree goes through the atomic tmp + fsync + rename
    path (and the ``RAW-ARTIFACT-WRITE`` lint rule can flag any that
    does not).

    When the observability metrics registry is capturing
    (:func:`repro.obs.capture`), its snapshot rides along under a
    ``metrics`` key, so every report written during an instrumented run
    carries its counters.  Disabled registries leave the payload - and
    therefore the bytes on disk - untouched.
    """
    from repro.obs.metrics import metrics

    registry = metrics()
    if registry.enabled and "metrics" not in payload:
        payload = dict(payload)
        payload["metrics"] = registry.snapshot()
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def write_artifact(path: PathLike, kind: str,
                   payload: Dict[str, Any]) -> None:
    """Persist a tagged, checksummed JSON artifact atomically."""
    data = _tagged(kind, payload)
    data[CHECKSUM_KEY] = artifact_sha256(data)
    atomic_write_text(path, json.dumps(data, indent=2))


def read_artifact(path: PathLike,
                  kind: Optional[str] = None) -> Dict[str, Any]:
    """Read a tagged artifact, verifying checksum (and ``kind`` if given).

    Raises:
        SerializationError: Unreadable or truncated file, checksum
            mismatch, or tag mismatch - always naming ``path``.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc
    if not isinstance(data, dict) or "kind" not in data:
        raise SerializationError(f"{path} is not a tagged artifact")
    stored = data.get(CHECKSUM_KEY)
    if stored is not None:
        expected = artifact_sha256(data)
        if stored != expected:
            raise SerializationError(
                f"{path}: checksum mismatch - expected {expected}, "
                f"found {stored} (artifact corrupted?)"
            )
    if kind is not None:
        _check_tag(data, kind, path=path)
    return data


# ----------------------------------------------------------------------
# ProfilingTable
# ----------------------------------------------------------------------
def profiling_table_to_dict(table: ProfilingTable) -> Dict[str, Any]:
    """Render a profiling table as a tagged JSON-ready dict."""
    return _tagged("profiling_table", {
        "application": table.application,
        "platform": table.platform,
        "mode": table.mode,
        "stage_names": list(table.stage_names),
        "pu_classes": list(table.pu_classes),
        "latencies_s": [
            [table.latency(stage, pu) for pu in table.pu_classes]
            for stage in table.stage_names
        ],
        "stddevs_s": [
            [table.stddev(stage, pu) for pu in table.pu_classes]
            for stage in table.stage_names
        ],
    })


def profiling_table_from_dict(
    data: Dict[str, Any], path: Optional[PathLike] = None,
) -> ProfilingTable:
    """Rebuild a profiling table from its tagged dict form."""
    _check_tag(data, "profiling_table", path=path)
    try:
        stage_names = tuple(data["stage_names"])
        pu_classes = tuple(data["pu_classes"])
        rows = data["latencies_s"]
        entries = {
            (stage, pu): float(rows[i][j])
            for i, stage in enumerate(stage_names)
            for j, pu in enumerate(pu_classes)
        }
        std_rows = data.get("stddevs_s")
        stddevs = {}
        if std_rows is not None:
            stddevs = {
                (stage, pu): float(std_rows[i][j])
                for i, stage in enumerate(stage_names)
                for j, pu in enumerate(pu_classes)
            }
        return ProfilingTable(
            application=data["application"],
            platform=data["platform"],
            mode=data["mode"],
            entries=entries,
            stage_names=stage_names,
            pu_classes=pu_classes,
            stddevs=stddevs,
        )
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"{_where(path)}malformed profiling table: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Schedule
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Render a schedule as a tagged JSON-ready dict."""
    return _tagged("schedule", {"assignments": list(schedule.assignments)})


def schedule_from_dict(
    data: Dict[str, Any], path: Optional[PathLike] = None,
) -> Schedule:
    """Rebuild a schedule (contiguity re-validated on load)."""
    _check_tag(data, "schedule", path=path)
    try:
        return Schedule.from_assignments(data["assignments"])
    except KeyError as exc:
        raise SerializationError(
            f"{_where(path)}schedule missing assignments"
        ) from exc


# ----------------------------------------------------------------------
# OptimizationResult
# ----------------------------------------------------------------------
def optimization_to_dict(result: OptimizationResult) -> Dict[str, Any]:
    """Render an optimization result (candidate log) as a tagged dict."""
    def candidate(c: ScheduleCandidate) -> Dict[str, Any]:
        return {
            "rank": c.rank,
            "assignments": list(c.schedule.assignments),
            "predicted_latency_s": c.predicted_latency_s,
            "gapness_s": c.gapness_s,
        }

    # solver_wall_s is a host wall-clock measurement (diagnostic only):
    # serializing it would make the checksummed artifact differ across
    # otherwise-identical runs, so it stays in-memory and the loader
    # defaults it to 0.0.
    return _tagged("optimization_result", {
        "application": result.application,
        "platform": result.platform,
        "gap_threshold_s": result.gap_threshold_s,
        "solver_invocations": result.solver_invocations,
        "degraded": result.degraded,
        "utilization_optimum": (
            candidate(result.utilization_optimum)
            if result.utilization_optimum is not None else None
        ),
        "candidates": [candidate(c) for c in result.candidates],
    })


def optimization_from_dict(
    data: Dict[str, Any], path: Optional[PathLike] = None,
) -> OptimizationResult:
    """Rebuild an optimization result from its tagged dict form."""
    _check_tag(data, "optimization_result", path=path)

    def candidate(entry: Dict[str, Any]) -> ScheduleCandidate:
        return ScheduleCandidate(
            rank=int(entry["rank"]),
            schedule=Schedule.from_assignments(entry["assignments"]),
            predicted_latency_s=float(entry["predicted_latency_s"]),
            gapness_s=float(entry["gapness_s"]),
        )

    try:
        return OptimizationResult(
            application=data["application"],
            platform=data["platform"],
            candidates=[candidate(c) for c in data["candidates"]],
            gap_threshold_s=float(data["gap_threshold_s"]),
            utilization_optimum=(
                candidate(data["utilization_optimum"])
                if data.get("utilization_optimum") is not None else None
            ),
            solver_invocations=int(data.get("solver_invocations", 0)),
            solver_wall_s=float(data.get("solver_wall_s", 0.0)),
            degraded=bool(data.get("degraded", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"{_where(path)}malformed optimization result: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
_DUMPERS = {
    ProfilingTable: profiling_table_to_dict,
    Schedule: schedule_to_dict,
    OptimizationResult: optimization_to_dict,
}
_LOADERS = {
    "profiling_table": profiling_table_from_dict,
    "schedule": schedule_from_dict,
    "optimization_result": optimization_from_dict,
}


def save(obj, path: PathLike) -> None:
    """Persist a supported artifact as checksummed JSON, atomically."""
    dumper = _DUMPERS.get(type(obj))
    if dumper is None:
        raise SerializationError(
            f"cannot serialize {type(obj).__name__}"
        )
    data = dumper(obj)
    data[CHECKSUM_KEY] = artifact_sha256(data)
    atomic_write_text(path, json.dumps(data, indent=2))


def load(path: PathLike):
    """Load any supported artifact (dispatches on its ``kind`` tag).

    The payload checksum, when present, is verified before the artifact
    is rebuilt; artifacts written by older versions (no ``sha256`` key)
    still load.
    """
    data = read_artifact(path)
    loader = _LOADERS.get(data["kind"])
    if loader is None:
        raise SerializationError(
            f"{path}: unknown artifact kind {data['kind']!r}"
        )
    return loader(data, path=path)
