"""Deterministic serving metrics and the final serve report.

Everything here is pure arithmetic over recorded window measurements -
no wall clock, no RNG - so a serve run's report is byte-identical
across repeats with the same seed (the acceptance property the soak
test asserts by comparing serialized reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError, ServeError
from repro.obs.metrics import percentile as _canonical_percentile
from repro.serve.tenant import TenantRecord


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method).

    Thin shim over the canonical :func:`repro.obs.metrics.percentile`
    (one implementation, identical values), narrowing its structured
    errors to :class:`~repro.errors.ServeError` for this layer's
    callers.
    """
    try:
        return _canonical_percentile(samples, q)
    except ServeError:
        raise
    except ReproError as exc:
        raise ServeError(str(exc)) from None


def attainment(samples: Sequence[float], slo: float) -> float:
    """Fraction of samples meeting an SLO threshold, in [0, 1].

    A sample *attains* when it is at or under the threshold - the
    boundary counts as met, matching how latency SLOs are stated
    ("p95 <= 40 ms").  Raises on an empty sample set (a tenant with no
    served windows has no attainment, and silently reporting 0.0 or
    1.0 would each mislead in a different direction) and on a
    non-positive threshold.
    """
    if not samples:
        raise ServeError("attainment of an empty sample set")
    if slo <= 0.0:
        raise ServeError(f"SLO threshold must be positive, got {slo}")
    met = sum(1 for sample in samples if sample <= slo)
    return met / len(samples)


@dataclass(frozen=True)
class TenantMetrics:
    """Latency summary of one tenant's served windows."""

    tenant: str
    status: str
    windows_served: int
    reschedules: int
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    max_latency_s: float

    @classmethod
    def from_record(cls, record: TenantRecord) -> "TenantMetrics":
        samples = record.per_item_latencies()
        if not samples:
            return cls(
                tenant=record.name,
                status=record.status,
                windows_served=0,
                reschedules=record.reschedules,
                mean_latency_s=0.0,
                p50_latency_s=0.0,
                p95_latency_s=0.0,
                max_latency_s=0.0,
            )
        return cls(
            tenant=record.name,
            status=record.status,
            windows_served=record.windows_done,
            reschedules=record.reschedules,
            mean_latency_s=sum(samples) / len(samples),
            p50_latency_s=percentile(samples, 50.0),
            p95_latency_s=percentile(samples, 95.0),
            max_latency_s=max(samples),
        )

    def to_dict(self) -> Dict[str, object]:
        # A tenant with zero completed windows has no latency
        # distribution; rendering 0.0 would read as "infinitely fast"
        # in the report, so the serialized form says "n/a" instead
        # (the dataclass fields stay numeric for arithmetic consumers).
        def _latency(value: float) -> object:
            if self.windows_served == 0:
                return "n/a"
            return round(value, 9)

        return {
            "tenant": self.tenant,
            "status": self.status,
            "windows_served": self.windows_served,
            "reschedules": self.reschedules,
            "mean_latency_s": _latency(self.mean_latency_s),
            "p50_latency_s": _latency(self.p50_latency_s),
            "p95_latency_s": _latency(self.p95_latency_s),
            "max_latency_s": _latency(self.max_latency_s),
        }


@dataclass(frozen=True)
class ServeReport:
    """The serialized outcome of one serving run."""

    platform: str
    seed: int
    ticks: int
    rescheduling_enabled: bool
    tenants: Mapping[str, TenantMetrics]
    timeline: Sequence[Mapping[str, object]]
    plan_cache: Mapping[str, int]
    #: Blame decomposition summary (``ServerConfig.attribution``);
    #: None - and absent from the serialized form - when attribution
    #: is off, so default report bytes are unchanged.
    attribution: Optional[Mapping[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """Stable dict for :func:`repro.serialization.write_json_report`.

        Keys are emitted in sorted tenant order so two runs with the
        same seed serialize byte-identically.
        """
        out: Dict[str, object] = {
            "platform": self.platform,
            "seed": self.seed,
            "ticks": self.ticks,
            "rescheduling_enabled": self.rescheduling_enabled,
            "tenants": {
                name: self.tenants[name].to_dict()
                for name in sorted(self.tenants)
            },
            "timeline": list(self.timeline),
            "plan_cache": dict(self.plan_cache),
        }
        if self.attribution is not None:
            out["attribution"] = dict(self.attribution)
        return out


def fleet_p95(metrics: Mapping[str, TenantMetrics]) -> float:
    """Worst per-tenant p95 - the serving layer's headline number."""
    served = [m.p95_latency_s for m in metrics.values()
              if m.windows_served > 0]
    if not served:
        return 0.0
    return max(served)


def merge_latencies(records: List[TenantRecord]) -> List[float]:
    """All per-item samples across tenants (for fleet-wide percentiles)."""
    out: List[float] = []
    for record in records:
        out.extend(record.per_item_latencies())
    return out
