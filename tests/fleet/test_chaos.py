"""Chaos schedule validation, injector queries, seeded generation."""

import pytest

from repro.errors import FleetError, ReproError
from repro.fleet import (
    ChaosInjector,
    ChaosSchedule,
    DegradeSpec,
    GrayFailureSpec,
    ShardCrashSpec,
)


class TestSpecValidation:
    def test_crash_rejoin_must_follow_crash(self):
        with pytest.raises(FleetError, match="rejoin_tick"):
            ShardCrashSpec("soc0", at_tick=10, rejoin_tick=10)

    def test_crash_tick_must_be_nonnegative(self):
        with pytest.raises(FleetError, match="at_tick"):
            ShardCrashSpec("soc0", at_tick=-1)

    def test_gray_window_must_be_nonempty(self):
        with pytest.raises(FleetError, match="end_tick"):
            GrayFailureSpec("soc0", start_tick=5, end_tick=5)

    def test_degrade_busy_fraction_bounds(self):
        with pytest.raises(FleetError, match="busy fraction"):
            DegradeSpec("soc0", start_tick=0, busy={"big": 1.5})
        with pytest.raises(FleetError, match="busy fraction"):
            DegradeSpec("soc0", start_tick=0, busy={"big": 0.0})

    def test_duplicate_crash_specs_rejected(self):
        with pytest.raises(FleetError, match="multiple crash"):
            ChaosSchedule(crashes=[
                ShardCrashSpec("soc0", at_tick=4),
                ShardCrashSpec("soc0", at_tick=9),
            ])

    def test_fleet_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            GrayFailureSpec("soc0", start_tick=-1, end_tick=3)


class TestScheduleQueries:
    @pytest.fixture
    def injector(self):
        schedule = ChaosSchedule(
            crashes=[ShardCrashSpec("a", at_tick=4, rejoin_tick=9)],
            grays=[GrayFailureSpec("b", start_tick=2, end_tick=6)],
            degradations=[DegradeSpec("c", start_tick=3, end_tick=7,
                                      busy={"big": 0.5})],
        )
        return ChaosInjector(schedule, seed=1)

    def test_crash_and_rejoin_lookup(self, injector):
        assert [c.shard for c in injector.crashes_at(4)] == ["a"]
        assert injector.crashes_at(5) == []
        assert [c.shard for c in injector.rejoins_at(9)] == ["a"]

    def test_gray_half_open_interval(self, injector):
        assert not injector.gray_active("b", 1)
        assert injector.gray_active("b", 2)
        assert injector.gray_active("b", 5)
        assert not injector.gray_active("b", 6)
        assert not injector.gray_active("a", 3)

    def test_gray_edges(self, injector):
        assert [g.shard for g in injector.gray_edges_at(2)] == ["b"]
        assert [g.shard for g in injector.gray_edges_at(6)] == ["b"]
        assert injector.gray_edges_at(4) == []

    def test_degradation_lookup(self, injector):
        assert [d.shard for d in injector.degradations_at(3)] == ["c"]
        assert [d.shard for d in injector.degrade_ends_at(7)] == ["c"]

    def test_record_appends_events(self, injector):
        injector.record(4, "soc-crash", "a", detail="test")
        assert injector.events == [{
            "tick": 4, "kind": "soc-crash", "shard": "a",
            "detail": "test",
        }]


class TestRandomSchedule:
    SHARDS = ("soc0", "soc1", "soc2", "soc3")

    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.random(3, self.SHARDS, ticks=32,
                                 crash_rate=0.5, gray_rate=0.5,
                                 degrade_rate=0.5)
        b = ChaosSchedule.random(3, self.SHARDS, ticks=32,
                                 crash_rate=0.5, gray_rate=0.5,
                                 degrade_rate=0.5)
        assert a.crashes == b.crashes
        assert a.grays == b.grays
        assert a.degradations == b.degradations

    def test_zero_rates_yield_empty_schedule(self):
        schedule = ChaosSchedule.random(3, self.SHARDS, ticks=32)
        assert not schedule
        assert schedule.n_events == 0

    def test_unit_rates_hit_every_shard(self):
        schedule = ChaosSchedule.random(
            3, self.SHARDS, ticks=32,
            crash_rate=1.0, gray_rate=1.0, degrade_rate=1.0,
        )
        assert {c.shard for c in schedule.crashes} == set(self.SHARDS)
        assert {g.shard for g in schedule.grays} == set(self.SHARDS)
        assert ({d.shard for d in schedule.degradations}
                == set(self.SHARDS))
        # Every generated spec passed its own validation; crashes all
        # rejoin within the horizon's reach.
        for crash in schedule.crashes:
            assert crash.rejoin_tick is not None
            assert crash.rejoin_tick > crash.at_tick

    def test_rate_bounds_validated(self):
        with pytest.raises(FleetError, match="crash_rate"):
            ChaosSchedule.random(3, self.SHARDS, 32, crash_rate=1.5)

    def test_short_horizon_rejected(self):
        with pytest.raises(FleetError, match="horizon"):
            ChaosSchedule.random(3, self.SHARDS, ticks=4)
