"""Prefix sum (stage 6 of the Octree pipeline, also used inside the sort).

The CPU variant is a sequential-in-spirit running sum (``np.cumsum``); the
GPU variant is the classic Blelloch work-efficient scan - an up-sweep
(reduce) phase followed by a down-sweep, each ``log2(n)`` passes, exactly
how a compute-shader scan is structured.  Both produce an *exclusive*
prefix sum.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.kernels.base import next_power_of_two
from repro.soc.workprofile import WorkProfile


def exclusive_scan_cpu(values: np.ndarray, out: np.ndarray) -> None:
    """Host variant: one pass, carried dependence (limited parallelism)."""
    if len(values) != len(out):
        raise KernelError("scan output length mismatch")
    if len(values) == 0:
        return
    np.copyto(out[1:], np.cumsum(values[:-1], dtype=out.dtype))
    out[0] = 0


def exclusive_scan_gpu(values: np.ndarray, out: np.ndarray) -> None:
    """Device variant: Blelloch up-sweep / down-sweep over a padded tree."""
    if len(values) != len(out):
        raise KernelError("scan output length mismatch")
    n = len(values)
    if n == 0:
        return
    size = next_power_of_two(n)
    tree = np.zeros(size, dtype=np.int64)
    tree[:n] = values
    # Up-sweep (reduce): tree[k + 2^(d+1) - 1] += tree[k + 2^d - 1]
    depth = size.bit_length() - 1
    for d in range(depth):
        step = 1 << (d + 1)
        half = 1 << d
        idx = np.arange(step - 1, size, step)
        tree[idx] += tree[idx - half]
    # Down-sweep.
    tree[size - 1] = 0
    for d in range(depth - 1, -1, -1):
        step = 1 << (d + 1)
        half = 1 << d
        idx = np.arange(step - 1, size, step)
        left = tree[idx - half].copy()
        tree[idx - half] = tree[idx]
        tree[idx] += left
    np.copyto(out, tree[:n].astype(out.dtype))


def scan_work_profile(n: int) -> WorkProfile:
    """Work characterization for prefix sum.

    Cheap (one add per element) and memory-streaming, but the GPU pays
    several kernel launches for the hierarchical sweep while the CPU's
    single accumulating pass has a carried dependence that caps its
    parallelism - on small inputs the CPU usually wins on the mobile
    parts, where per-launch overhead is high.
    """
    # A production device scan is hierarchical (scan tiles, scan the
    # tile sums, add back): ~5 launches, not 2*log2(n) global sweeps.
    launches = 5
    return WorkProfile(
        flops=2.0 * max(n, 1),
        bytes_moved=12.0 * max(n, 1),
        parallelism=float(max(n // 2, 1)),
        parallel_fraction=0.85,
        divergence=0.05,
        irregularity=0.05,
        cpu_efficiency=0.5,
        gpu_efficiency=0.4,
        gpu_cuda_efficiency=0.6,
        gpu_launches=launches,
    )
