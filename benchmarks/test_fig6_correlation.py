"""Benchmark + shape check for Fig. 6 (correlation heatmaps)."""

from benchmarks.conftest import run_once
from repro.eval.experiments import format_fig6, run_fig6


def test_fig6_correlation_grid(benchmark, paper_scale):
    result = run_once(benchmark, run_fig6, paper_scale)
    print("\n" + format_fig6(result))

    # BetterTogether's mean correlation is high (paper: 0.92 mean,
    # 0.99 max) and beats the prior-work flow's mean (paper: 0.85).
    assert result.mean_correlation("bettertogether") > 0.9
    assert result.bt_mean_exceeds_isolated()

    # The gap concentrates on the irregular workloads (CIFAR-S, Tree).
    assert result.sparse_tree_gap() > 0.05

    # The dense workload correlates well under BOTH flows (its regular
    # behaviour is easy to model; paper rows 'CIFAR-D').
    dense_iso = [
        v for (app, _), v in result.isolated.items()
        if app == "alexnet-dense"
    ]
    assert min(dense_iso) > 0.9
