#!/usr/bin/env python3
"""Scenario: LiDAR occupancy mapping on a Jetson-class robot.

A robot streams point-cloud sweeps and must fold each into an octree map
(OctoMap-style, paper section 4.1) within a real-time budget, on both
the Jetson Orin Nano's normal (25 W) and low-power (7 W) modes.

The example shows the workflow a robotics team would follow:

1. profile once per power mode (interference matters: in the 7 W
   envelope the GPU throttles hard when the CPUs are busy),
2. generate and autotune schedules per mode,
3. check the frame budget, and
4. validate functional correctness of the chosen schedule by running
   the real kernels through the threaded runtime.

Run:  python examples/robot_mapping.py
"""

import numpy as np

from repro.apps import build_octree_application
from repro.baselines import measure_baselines
from repro.core import BetterTogether
from repro.runtime import ThreadedPipelineExecutor
from repro.soc import estimate_energy, get_platform

#: 10 Hz LiDAR: each sweep must fold into the map within 100 ms; leave
#: most of it for perception and planning.
LIDAR_HZ = 10.0
FRAME_BUDGET_MS = 15.0
SWEEP_POINTS = 100_000


def plan_for_mode(mode_name: str, application):
    platform = get_platform(mode_name)
    print(f"=== {platform.display_name} ===")
    plan = BetterTogether(platform).run(application)
    baselines = measure_baselines(application, platform)
    latency_ms = plan.measured_latency_s * 1e3
    print(f"  schedule: {plan.schedule.describe(application)}")
    print(f"  per-sweep latency: {latency_ms:.3f} ms "
          f"(GPU-only {baselines.gpu_latency_s * 1e3:.3f}, "
          f"CPU-only {baselines.cpu_latency_s * 1e3:.3f})")
    budget = "MEETS" if latency_ms <= FRAME_BUDGET_MS else "MISSES"
    print(f"  {budget} the {FRAME_BUDGET_MS:.0f} ms mapping budget")
    run = plan.execute(n_tasks=30)
    energy = estimate_energy(run, platform)
    print(f"  energy: {energy.per_task_j * 1e3:.2f} mJ per sweep "
          f"(battery budget input)")
    # Drive the pipeline at the actual sensor rate rather than from a
    # backlog: does it keep up, and what is sweep-to-map latency?
    from repro.runtime import SimulatedPipelineExecutor

    executor = SimulatedPipelineExecutor(
        application, plan.schedule.chunks(), platform
    )
    at_rate = executor.run(30, arrival_period_s=1.0 / LIDAR_HZ)
    e2e = at_rate.end_to_end_latencies_s()
    print(f"  at {LIDAR_HZ:.0f} Hz: keeps up = "
          f"{at_rate.keeps_up_with_arrivals()}, sweep-to-map latency "
          f"{max(e2e) * 1e3:.3f} ms worst case")
    print()
    return plan


def validate_functionally(application, plan) -> None:
    """Run real sweeps through real kernels under the chosen schedule."""
    cells = []

    def record(task, index):
        cells.append(int(np.asarray(task["oc_num_cells"])[0]))

    ThreadedPipelineExecutor(
        application, plan.schedule.chunks()
    ).run(3, on_complete=record, validate=True)
    print(f"functional check: 3 sweeps -> octrees with {cells} cells, "
          "all structural invariants hold")


def main() -> None:
    application = build_octree_application(n_points=SWEEP_POINTS)
    plan_normal = plan_for_mode("jetson_orin_nano", application)
    plan_lp = plan_for_mode("jetson_orin_nano_lp", application)

    # Battery-first deployment: among all candidates that sustain the
    # LiDAR rate, deploy the lowest-energy one (not the fastest).
    from repro.core import select_for_rate

    choice = select_for_rate(
        application, plan_lp.platform, plan_lp.optimization,
        rate_hz=LIDAR_HZ,
    )
    trial = choice.selected_trial
    print(f"battery-first pick at {LIDAR_HZ:.0f} Hz (7W mode): "
          f"{choice.selected.schedule.describe(application)}")
    print(f"  sustains rate: {choice.meets_rate}, "
          f"{trial.energy_per_task_j * 1e3:.2f} mJ/sweep, worst "
          f"sweep-to-map {trial.worst_latency_s * 1e3:.3f} ms")
    print()

    # Power modes need different schedules: the scheduler is the
    # portable part, the schedule is not (paper section 1).
    same = (plan_normal.schedule.assignments
            == plan_lp.schedule.assignments)
    print(f"normal-mode schedule reused in low-power mode? "
          f"{'yes' if same else 'no - re-optimized per mode'}")
    print()

    # Functional validation with a small sweep (real kernels).
    small_app = build_octree_application(n_points=5_000)
    small_plan = BetterTogether(
        get_platform("jetson_orin_nano"), repetitions=5, k=8,
        eval_tasks=10,
    ).run(small_app)
    validate_functionally(small_app, small_plan)


if __name__ == "__main__":
    main()
