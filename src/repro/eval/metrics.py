"""Statistics used throughout the evaluation (paper section 5).

Pearson correlation between predicted and measured latencies (Fig. 6),
geometric-mean speedups (Fig. 4), and small table-formatting helpers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.errors import ReproError


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson's r between two equal-length samples.

    Raises for degenerate inputs (length < 2 or zero variance) rather
    than silently returning NaN - a correlation heatmap with silent NaNs
    would misreport the model comparison.
    """
    if len(xs) != len(ys):
        raise ReproError("correlation inputs must have equal length")
    n = len(xs)
    if n < 2:
        raise ReproError("correlation needs at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        raise ReproError("correlation undefined for constant samples")
    return cov / math.sqrt(var_x * var_y)


def safe_pearson(xs: Sequence[float], ys: Sequence[float],
                 default: float = 0.0) -> float:
    """Pearson's r, with degenerate samples mapped to ``default``.

    Used by the experiment drivers at reduced scales: a candidate set
    whose predictions are all identical (a single performance tier) has
    no ranking power, which ``default=0.0`` expresses; the strict
    :func:`pearson_correlation` would raise instead.
    """
    try:
        return pearson_correlation(xs, ys)
    except ReproError:
        return default


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (Fig. 4's summary statistic)."""
    items: List[float] = list(values)
    if not items:
        raise ReproError("geometric mean of nothing")
    if any(v <= 0 for v in items):
        raise ReproError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def speedup(baseline_s: float, measured_s: float) -> float:
    """Baseline-over-measured ratio; > 1 means ``measured`` is faster."""
    if baseline_s <= 0 or measured_s <= 0:
        raise ReproError("speedup needs positive latencies")
    return baseline_s / measured_s


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average (Fig. 6 aggregates correlations arithmetically)."""
    items = list(values)
    if not items:
        raise ReproError("mean of nothing")
    return sum(items) / len(items)


def format_table(rows: Sequence[Sequence[str]],
                 align_right_from: int = 1) -> str:
    """Monospace-align a list-of-rows table for terminal output."""
    if not rows:
        return ""
    widths = [
        max(len(str(row[col])) for row in rows)
        for col in range(len(rows[0]))
    ]
    lines = []
    for row in rows:
        cells = []
        for col, cell in enumerate(row):
            text = str(cell)
            if col >= align_right_from:
                cells.append(text.rjust(widths[col]))
            else:
                cells.append(text.ljust(widths[col]))
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def ratio_map_mean(per_key: Dict[str, List[float]]) -> Dict[str, float]:
    """Average each key's list (per-PU interference ratios, Fig. 7)."""
    return {key: arithmetic_mean(vals) for key, vals in per_key.items()}
