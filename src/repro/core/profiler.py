"""BT-Profiler (paper section 3.2): interference-aware black-box profiling.

Profiles every stage on every PU class and aggregates mean latencies into
a 2-D :class:`ProfilingTable` (rows: stages, columns: PUs).  Two execution
modes, exactly as the paper defines them:

* ``isolated`` - the stage runs alone on its PU; nothing else executes.
  This is how prior work builds its (miscomposing) models.
* ``interference`` - while the stage runs on the measuring PU, *all other
  PUs concurrently execute the same computation* (their own kernel variant
  of the same stage), simulating realistic intra-application interference.
  Only the measuring PU's latency is recorded.

The profiler is strictly black-box: it asks the platform to *run and
time* kernels (here: the virtual SoC's ground-truth oracle plus timer
noise) and never inspects cost-model internals.  Each entry averages
``repetitions`` noisy measurements (30 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.stage import Application
from repro.errors import ProfilingError
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.soc.platform import Platform
from repro.soc.timer import mean_of_measurements

ISOLATED = "isolated"
INTERFERENCE = "interference"
MODES = (ISOLATED, INTERFERENCE)


@dataclass(frozen=True)
class ProfilingTable:
    """Stage x PU mean-latency table (seconds).

    Attributes:
        application: Application name the table describes.
        platform: Platform name it was collected on.
        mode: ``isolated`` or ``interference``.
        entries: (stage name, pu class) -> mean latency in seconds.
        stage_names: Row order.
        pu_classes: Column order.
        stddevs: Optional (stage, pu) -> sample standard deviation of the
            repeated measurements; empty when unavailable (e.g. loaded
            from an artifact that predates it).
    """

    application: str
    platform: str
    mode: str
    entries: Mapping[Tuple[str, str], float]
    stage_names: Tuple[str, ...]
    pu_classes: Tuple[str, ...]
    stddevs: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    def latency(self, stage: str, pu_class: str) -> float:
        """Mean latency of ``stage`` on ``pu_class`` in seconds."""
        try:
            return self.entries[(stage, pu_class)]
        except KeyError:
            raise ProfilingError(
                f"no profile entry for stage {stage!r} on {pu_class!r}"
            ) from None

    def stddev(self, stage: str, pu_class: str) -> float:
        """Sample standard deviation of the entry's measurements (0.0
        when statistics were not collected)."""
        return self.stddevs.get((stage, pu_class), 0.0)

    def noise_fraction(self, stage: str, pu_class: str) -> float:
        """Relative measurement noise, std / mean - the quantity the
        paper's 30-repetition averaging suppresses."""
        mean = self.latency(stage, pu_class)
        if mean <= 0:
            return 0.0
        return self.stddev(stage, pu_class) / mean

    def row(self, stage: str) -> Dict[str, float]:
        """All PU latencies for one stage."""
        return {pu: self.latency(stage, pu) for pu in self.pu_classes}

    def column(self, pu_class: str) -> Dict[str, float]:
        """All stage latencies on one PU class."""
        return {s: self.latency(s, pu_class) for s in self.stage_names}

    def best_pu(self, stage: str) -> str:
        """The PU class with the lowest profiled latency for a stage."""
        return min(self.pu_classes, key=lambda pu: self.latency(stage, pu))

    def restricted(self, pu_classes: Iterable[str]) -> "ProfilingTable":
        """A sub-table over a subset of PU columns (used to drop
        unpinnable clusters before optimization)."""
        keep = tuple(pu for pu in self.pu_classes if pu in set(pu_classes))
        if not keep:
            raise ProfilingError("restriction removes every PU column")
        entries = {
            (stage, pu): self.entries[(stage, pu)]
            for stage in self.stage_names
            for pu in keep
        }
        stddevs = {
            key: value
            for key, value in self.stddevs.items()
            if key[1] in keep
        }
        return ProfilingTable(
            application=self.application,
            platform=self.platform,
            mode=self.mode,
            entries=entries,
            stage_names=self.stage_names,
            pu_classes=keep,
            stddevs=stddevs,
        )

    def to_rows(self) -> List[List[str]]:
        """Render as a text table (stage rows, PU columns, milliseconds)."""
        header = ["stage"] + [str(pu) for pu in self.pu_classes]
        rows = [header]
        for stage in self.stage_names:
            rows.append(
                [stage]
                + [f"{self.latency(stage, pu) * 1e3:.3f}"
                   for pu in self.pu_classes]
            )
        return rows


@dataclass
class BTProfiler:
    """Collects profiling tables on a (virtual) platform.

    Args:
        platform: The target system (Fig. 2 input 2).
        repetitions: Timed repetitions per entry (paper: 30).
    """

    platform: Platform
    repetitions: int = 30

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ProfilingError("repetitions must be >= 1")

    # ------------------------------------------------------------------
    def profile(self, application: Application,
                mode: str = INTERFERENCE) -> ProfilingTable:
        """Build the full stage x PU table in the given mode."""
        if mode not in MODES:
            raise ProfilingError(
                f"unknown profiling mode {mode!r}; expected one of {MODES}"
            )
        pu_classes = self.platform.pu_classes()
        entries: Dict[Tuple[str, str], float] = {}
        stddevs: Dict[Tuple[str, str], float] = {}
        with tracer().span("profiler.profile", "profiler",
                           application=application.name, mode=mode):
            for stage in application.stages:
                for pu_class in pu_classes:
                    mean, std = self._measure_stage(
                        application, stage.name, pu_class, mode
                    )
                    entries[(stage.name, pu_class)] = mean
                    stddevs[(stage.name, pu_class)] = std
        return ProfilingTable(
            application=application.name,
            platform=self.platform.name,
            mode=mode,
            entries=entries,
            stage_names=application.stage_names,
            pu_classes=pu_classes,
            stddevs=stddevs,
        )

    def profile_both(
        self, application: Application
    ) -> Tuple[ProfilingTable, ProfilingTable]:
        """Convenience: (isolated, interference) pair, used by the Fig. 7
        interference study."""
        return (
            self.profile(application, mode=ISOLATED),
            self.profile(application, mode=INTERFERENCE),
        )

    # ------------------------------------------------------------------
    def measure_cell(self, application: Application, stage_name: str,
                     pu_class: str, mode: str) -> Tuple[float, float]:
        """Measure one (stage, PU, mode) cell: ``(mean, stddev)``.

        The unit of work the checkpoint/resume machinery persists
        (:mod:`repro.core.session`): each cell's measurement RNG is
        keyed by its coordinates alone, so cells can be collected - or
        re-collected after a crash - in any order and still reproduce
        the uninterrupted table bit for bit.
        """
        if mode not in MODES:
            raise ProfilingError(
                f"unknown profiling mode {mode!r}; expected one of {MODES}"
            )
        return self._measure_stage(application, stage_name, pu_class, mode)

    def _measure_stage(self, application: Application, stage_name: str,
                       pu_class: str, mode: str) -> Tuple[float, float]:
        with tracer().span("profiler.cell", "profiler",
                           stage=stage_name, pu=pu_class, mode=mode):
            mean, std = self._measure_stage_inner(
                application, stage_name, pu_class, mode
            )
        reg = metrics()
        if reg.enabled:
            reg.counter("profiler.cells")
            reg.observe("profiler.cell_mean_s", mean)
        return mean, std

    def _measure_stage_inner(
        self, application: Application, stage_name: str,
        pu_class: str, mode: str,
    ) -> Tuple[float, float]:
        stage = application.stage(stage_name)
        if mode == ISOLATED:
            co_load, other_demand = 0.0, 0.0
        else:
            co_load = 1.0
            other_demand = sum(
                self.platform.bandwidth_demand(stage.work, other)
                for other in self.platform.pu_classes()
                if other != pu_class
            )
        true_seconds = self.platform.true_time(
            stage.work, pu_class,
            co_load=co_load, other_demand_gbps=other_demand,
        )
        rng = self.platform.measurement_rng(
            "profile", application.name, stage_name, pu_class, mode
        )
        samples = [
            self.platform.measure(true_seconds, rng)
            for _ in range(self.repetitions)
        ]
        mean = mean_of_measurements(samples)
        if len(samples) < 2:
            return mean, 0.0
        variance = sum((x - mean) ** 2 for x in samples) / (
            len(samples) - 1
        )
        return mean, variance**0.5


def interference_ratios(
    isolated: ProfilingTable, interference: ProfilingTable
) -> Dict[str, float]:
    """Average interference-heavy / isolated latency ratio per PU class
    (the quantity Fig. 7 plots; > 1 is a slowdown under contention)."""
    if isolated.stage_names != interference.stage_names:
        raise ProfilingError("tables cover different stages")
    if isolated.pu_classes != interference.pu_classes:
        raise ProfilingError("tables cover different PUs")
    ratios: Dict[str, float] = {}
    for pu_class in isolated.pu_classes:
        per_stage = [
            interference.latency(stage, pu_class)
            / isolated.latency(stage, pu_class)
            for stage in isolated.stage_names
        ]
        ratios[pu_class] = sum(per_stage) / len(per_stage)
    return ratios
