"""Tests for the interference model (DVFS curves + bandwidth contention)."""

import pytest

from repro.errors import PlatformError
from repro.soc import DvfsCurve, InterferenceModel, co_load_fraction
from repro.soc.pu import BIG, GPU, LITTLE


@pytest.fixture
def model():
    return InterferenceModel(
        dram_bw_gbps=30.0,
        dvfs={
            BIG: DvfsCurve(speed_at_full_load=0.74),
            LITTLE: DvfsCurve(speed_at_full_load=1.6),
            GPU: DvfsCurve(speed_at_full_load=1.45),
        },
    )


class TestDvfsCurve:
    def test_isolated_is_unit_speed(self):
        assert DvfsCurve(0.7).speed(0.0) == pytest.approx(1.0)

    def test_full_load_hits_endpoint(self):
        assert DvfsCurve(0.7).speed(1.0) == pytest.approx(0.7)

    def test_interpolates_linearly(self):
        assert DvfsCurve(0.6).speed(0.5) == pytest.approx(0.8)

    def test_boost_curve(self):
        assert DvfsCurve(1.6).speed(1.0) == pytest.approx(1.6)

    def test_rejects_bad_co_load(self):
        with pytest.raises(PlatformError):
            DvfsCurve(0.7).speed(1.5)


class TestBandwidthSharing:
    def test_undersubscribed_full_bandwidth(self, model):
        assert model.bandwidth_factor(10.0, 25.0) == pytest.approx(1.0)

    def test_oversubscribed_proportional(self, model):
        # Total demand 60 against 30 GB/s -> everyone gets half.
        assert model.bandwidth_factor(20.0, 60.0) == pytest.approx(0.5)

    def test_zero_demand_unaffected(self, model):
        assert model.bandwidth_factor(0.0, 100.0) == pytest.approx(1.0)

    def test_rejects_nonpositive_dram_bw(self):
        with pytest.raises(PlatformError):
            InterferenceModel(dram_bw_gbps=0.0)


class TestSpeedMultiplier:
    def test_isolated_compute_bound_is_unit(self, model):
        m = model.speed_multiplier(
            BIG, memory_boundedness=0.0, demand_gbps=1.0,
            total_demand_gbps=1.0, co_load=0.0,
        )
        assert m == pytest.approx(1.0)

    def test_compute_bound_tracks_dvfs(self, model):
        m = model.speed_multiplier(
            BIG, memory_boundedness=0.0, demand_gbps=1.0,
            total_demand_gbps=1.0, co_load=1.0,
        )
        assert m == pytest.approx(0.74)

    def test_memory_bound_tracks_bandwidth_share(self, model):
        m = model.speed_multiplier(
            BIG, memory_boundedness=1.0, demand_gbps=20.0,
            total_demand_gbps=60.0, co_load=1.0,
        )
        assert m == pytest.approx(0.5)

    def test_mixed_harmonic_combination(self, model):
        m = model.speed_multiplier(
            BIG, memory_boundedness=0.5, demand_gbps=20.0,
            total_demand_gbps=60.0, co_load=1.0,
        )
        expected = 1.0 / (0.5 / 0.74 + 0.5 / 0.5)
        assert m == pytest.approx(expected)

    def test_boosted_pu_speeds_up_under_load(self, model):
        m = model.speed_multiplier(
            GPU, memory_boundedness=0.0, demand_gbps=1.0,
            total_demand_gbps=1.0, co_load=1.0,
        )
        assert m == pytest.approx(1.45)

    def test_boost_fights_contention(self, model):
        # A boosted GPU that is memory-bound can still end up slower.
        m = model.speed_multiplier(
            GPU, memory_boundedness=0.9, demand_gbps=20.0,
            total_demand_gbps=90.0, co_load=1.0,
        )
        assert m < 1.0

    def test_unknown_class_defaults_to_no_dvfs(self, model):
        m = model.speed_multiplier(
            "npu", memory_boundedness=0.0, demand_gbps=0.0,
            total_demand_gbps=0.0, co_load=1.0,
        )
        assert m == pytest.approx(1.0)

    def test_rejects_bad_memory_boundedness(self, model):
        with pytest.raises(PlatformError):
            model.speed_multiplier(BIG, 1.5, 1.0, 1.0, 0.0)


class TestCoLoadFraction:
    def test_isolated(self):
        assert co_load_fraction(0, 3) == 0.0

    def test_interference_heavy(self):
        assert co_load_fraction(3, 3) == 1.0

    def test_partial(self):
        assert co_load_fraction(1, 4) == pytest.approx(0.25)

    def test_no_other_pus(self):
        assert co_load_fraction(0, 0) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(PlatformError):
            co_load_fraction(4, 3)
        with pytest.raises(PlatformError):
            co_load_fraction(-1, 3)
