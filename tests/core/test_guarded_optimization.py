"""Tests for guarded optimization: wall budgets and graceful degradation.

A bigger application or a slower device must never turn the optimizer
into a hang: with ``time_budget_s`` set, budget expiry yields a greedy
best-PU schedule flagged ``degraded`` - an answer, not an exception.
"""

import pytest

from repro.apps import build_octree_application
from repro.core import BetterTogether
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import ProfilingTable
from repro.core.stage import Application, Stage
from repro.errors import SchedulingError, SolverTimeoutError
from repro.solver import Model, Solver
from repro.soc import WorkProfile, get_platform


def make_app(n):
    return Application(
        "app",
        [Stage.model_only(f"s{i}", WorkProfile(flops=1e6, bytes_moved=1e5,
                                               parallelism=8.0))
         for i in range(n)],
    )


def make_table(app, latencies):
    pus = tuple(latencies)
    entries = {
        (stage, pu): latencies[pu][i]
        for i, stage in enumerate(app.stage_names)
        for pu in pus
    }
    return ProfilingTable(
        application=app.name, platform="test", mode="interference",
        entries=entries, stage_names=app.stage_names, pu_classes=pus,
    )


@pytest.fixture
def case():
    app = make_app(4)
    table = make_table(app, {
        "big": [1.0, 4.0, 2.0, 1.0],
        "gpu": [2.0, 1.0, 1.0, 2.0],
    })
    return app, table


class TestSolverBudget:
    def build_wide_model(self):
        """Many free booleans: enumeration visits 2^24 assignments."""
        model = Model()
        variables = [model.new_bool(f"b{i}") for i in range(24)]
        model.add_clause(variables)
        return model

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            Solver(Model(), time_budget_s=0.0)
        with pytest.raises(ValueError):
            Solver(Model(), time_budget_s=-1.0)

    def test_enumerate_stops_at_deadline(self):
        solver = Solver(self.build_wide_model(), time_budget_s=0.05)
        with pytest.raises(SolverTimeoutError, match="wall-clock"):
            for _ in solver.enumerate():
                pass

    def test_minimize_stops_at_deadline(self):
        model = self.build_wide_model()
        solver = Solver(model, time_budget_s=0.05)
        with pytest.raises(SolverTimeoutError):
            solver.minimize(lambda values: sum(values))

    def test_no_budget_is_unlimited(self):
        model = Model()
        a = model.new_bool("a")
        model.add_clause([a])
        assert Solver(model).solve() is not None


class TestGreedyFallback:
    def test_budget_validated(self, case):
        app, table = case
        with pytest.raises(SchedulingError):
            BTOptimizer(app, table, time_budget_s=0.0)

    def test_greedy_assignment_contiguous_best_pu(self, case):
        app, table = case
        optimizer = BTOptimizer(app, table)
        assignment = optimizer.greedy_assignment()
        # Stage 0 is fastest on big; from stage 1 on, gpu wins and the
        # big chunk is closed (C2), so the tail stays on gpu.
        assert assignment == (0, 1, 1, 1)

    def test_expired_budget_degrades_not_raises(self, case):
        app, table = case
        optimizer = BTOptimizer(app, table, k=4, time_budget_s=1e-9)
        result = optimizer.optimize()
        assert result.degraded
        assert result.utilization_optimum is None
        assert result.candidates  # the greedy schedule, at minimum
        greedy = optimizer.greedy_assignment()
        schedules = [c.schedule.assignments for c in result.candidates]
        assert tuple(table.pu_classes[c] for c in greedy) in schedules
        for candidate in result.candidates:
            assert candidate.schedule.is_contiguous()

    def test_generous_budget_stays_exact(self, case):
        app, table = case
        unbudgeted = BTOptimizer(app, table, k=4).optimize()
        budgeted = BTOptimizer(app, table, k=4,
                               time_budget_s=60.0).optimize()
        assert not budgeted.degraded
        assert ([c.schedule.assignments for c in budgeted.candidates]
                == [c.schedule.assignments for c in unbudgeted.candidates])

    def test_decision_budget_also_degrades(self, case):
        app, table = case
        result = BTOptimizer(app, table, k=4,
                             max_decisions=1).optimize()
        assert result.degraded

    def test_degraded_candidates_rank_by_latency(self, case):
        app, table = case
        result = BTOptimizer(app, table, k=4,
                             time_budget_s=1e-9).optimize()
        latencies = [c.predicted_latency_s for c in result.candidates]
        assert latencies == sorted(latencies)
        assert [c.rank for c in result.candidates] \
            == list(range(len(result.candidates)))


class TestFrameworkBudget:
    def test_budget_plumbs_through_framework(self):
        framework = BetterTogether(get_platform("jetson_orin_nano"),
                                   repetitions=2, k=3, eval_tasks=4,
                                   time_budget_s=1e-9)
        app = build_octree_application()
        table = framework.profile(app)
        result = framework.optimize(app, table)
        assert result.degraded

    def test_degraded_campaign_still_deploys(self):
        """Budget expiry must not break the end-to-end flow: the greedy
        schedule autotunes, validates and deploys like any other."""
        framework = BetterTogether(get_platform("jetson_orin_nano"),
                                   repetitions=2, k=3, eval_tasks=4,
                                   time_budget_s=1e-9)
        plan = framework.run(build_octree_application())
        assert plan.optimization.degraded
        assert plan.schedule.is_contiguous()
        assert plan.autotune.measured_best.measured_latency_s > 0
