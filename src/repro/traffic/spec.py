"""Workload specifications for the open-loop traffic generator.

A :class:`TrafficSpec` is a *description* of production load, not the
load itself: tier mix, arrival process, time-varying rate shape, and
session-length distribution.  Feeding one spec and one seed to
:class:`~repro.traffic.generator.TrafficGenerator` yields a concrete
arrival stream as a pure function of (spec, seed) - the property every
determinism test in :mod:`tests.traffic` leans on.

Everything here round-trips through plain dicts so a spec can ride
inside a checksummed :class:`~repro.traffic.trace.TrafficTrace`
artifact and a replayed trace can prove it was generated from the same
workload description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.errors import TrafficError

#: Supported arrival processes.
POISSON = "poisson"
MMPP = "mmpp"

ARRIVAL_PROCESSES = (POISSON, MMPP)


@dataclass(frozen=True)
class TierSpec:
    """One service tier in the tenant population.

    Attributes:
        name: Tier id ("gold" > "silver" > "bronze" by convention).
        priority: Fleet priority (higher survives shedding longer).
        weight: Relative share of arrivals landing in this tier.
        slo_slowdown: The tier's SLO, stated as the largest acceptable
            ratio of a measured window latency to the tenant's
            contention-free (isolated-prediction) reference.  A window
            at exactly the threshold attains.
        window_tasks: Tasks streamed per execution window.
    """

    name: str
    priority: int
    weight: float
    slo_slowdown: float
    window_tasks: int = 6

    def __post_init__(self) -> None:
        if not self.name:
            raise TrafficError("a tier needs a non-empty name")
        if self.weight <= 0.0:
            raise TrafficError(
                f"tier {self.name!r} weight must be positive"
            )
        if self.slo_slowdown < 1.0:
            raise TrafficError(
                f"tier {self.name!r} slo_slowdown must be >= 1.0 "
                "(a slowdown below 1.0 is faster than isolated)"
            )
        if self.window_tasks < 2:
            raise TrafficError(
                f"tier {self.name!r} window_tasks must be >= 2"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "priority": self.priority,
            "weight": self.weight,
            "slo_slowdown": self.slo_slowdown,
            "window_tasks": self.window_tasks,
        }


@dataclass(frozen=True)
class BurstSpec:
    """A seeded burst overlay: the arrival rate is multiplied by
    ``multiplier`` over control ticks [start_tick, end_tick)."""

    start_tick: int
    end_tick: int
    multiplier: float

    def __post_init__(self) -> None:
        if self.start_tick < 0:
            raise TrafficError("burst start_tick must be >= 0")
        if self.end_tick <= self.start_tick:
            raise TrafficError(
                "burst end_tick must be > start_tick"
            )
        if self.multiplier <= 0.0:
            raise TrafficError("burst multiplier must be positive")

    def active_at(self, tick: int) -> bool:
        return self.start_tick <= tick < self.end_tick

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "multiplier": self.multiplier,
        }


#: Default three-tier mix: a small latency-critical gold slice over a
#: broad best-effort base, the shape of a consumer serving fleet.
DEFAULT_TIERS: Tuple[TierSpec, ...] = (
    TierSpec(name="gold", priority=2, weight=1.0, slo_slowdown=1.35),
    TierSpec(name="silver", priority=1, weight=2.0, slo_slowdown=1.6),
    TierSpec(name="bronze", priority=0, weight=3.0, slo_slowdown=2.0),
)


@dataclass(frozen=True)
class TrafficSpec:
    """One open-loop workload description.

    Attributes:
        ticks: Generation horizon in fleet control ticks.
        arrival_process: ``"poisson"`` (constant-intensity counts) or
            ``"mmpp"`` (two-state Markov-modulated Poisson: the
            intensity switches between a calm and a surge state).
        arrivals_per_tick: Base arrival intensity (tenants/tick)
            before diurnal, burst, and MMPP modulation.
        load_multiplier: Uniform scale on the arrival intensity - the
            knob overload sweeps turn (1.0 = the spec's natural load).
        diurnal_amplitude: Relative swing of the diurnal sinusoid in
            [0, 1); 0 disables it.
        diurnal_period_ticks: Period of the diurnal curve.
        bursts: Burst overlays (may overlap; multipliers compose).
        mmpp_surge_factor: Intensity multiplier while the MMPP chain
            is in its surge state.
        mmpp_enter_surge: Per-tick probability of switching calm ->
            surge.
        mmpp_exit_surge: Per-tick probability of switching surge ->
            calm.
        tiers: The tier population (weights need not sum to 1).
        session_alpha: Bounded-Pareto tail index for session lengths;
            smaller alpha = heavier tail.
        session_windows_min: Shortest session, in execution windows.
        session_windows_max: Truncation bound for the heavy tail.
        app_pool_size: Distinct applications the population cycles
            through (shared apps give the fleet's plan caches real hit
            traffic, like popular models in production).
        stage_count: Pipeline stages per generated application.
    """

    ticks: int = 64
    arrival_process: str = POISSON
    arrivals_per_tick: float = 0.5
    load_multiplier: float = 1.0
    diurnal_amplitude: float = 0.0
    diurnal_period_ticks: int = 64
    bursts: Tuple[BurstSpec, ...] = ()
    mmpp_surge_factor: float = 3.0
    mmpp_enter_surge: float = 0.1
    mmpp_exit_surge: float = 0.3
    tiers: Tuple[TierSpec, ...] = field(default_factory=lambda: DEFAULT_TIERS)
    session_alpha: float = 1.5
    session_windows_min: int = 2
    session_windows_max: int = 24
    app_pool_size: int = 4
    stage_count: int = 3

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise TrafficError("ticks must be >= 1")
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise TrafficError(
                f"unknown arrival process {self.arrival_process!r} "
                f"(expected one of {ARRIVAL_PROCESSES})"
            )
        if self.arrivals_per_tick <= 0.0:
            raise TrafficError("arrivals_per_tick must be positive")
        if self.load_multiplier <= 0.0:
            raise TrafficError("load_multiplier must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise TrafficError(
                "diurnal_amplitude must be in [0, 1) so the "
                "modulated intensity stays positive"
            )
        if self.diurnal_period_ticks < 2:
            raise TrafficError("diurnal_period_ticks must be >= 2")
        if self.mmpp_surge_factor < 1.0:
            raise TrafficError("mmpp_surge_factor must be >= 1.0")
        for prob, knob in ((self.mmpp_enter_surge, "mmpp_enter_surge"),
                           (self.mmpp_exit_surge, "mmpp_exit_surge")):
            if not 0.0 <= prob <= 1.0:
                raise TrafficError(f"{knob} must be a probability")
        if not self.tiers:
            raise TrafficError("a workload needs at least one tier")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise TrafficError(f"duplicate tier names in {names}")
        if self.session_alpha <= 0.0:
            raise TrafficError("session_alpha must be positive")
        if self.session_windows_min < 1:
            raise TrafficError("session_windows_min must be >= 1")
        if self.session_windows_max < self.session_windows_min:
            raise TrafficError(
                "session_windows_max must be >= session_windows_min"
            )
        if self.app_pool_size < 1:
            raise TrafficError("app_pool_size must be >= 1")
        if self.stage_count < 1:
            raise TrafficError("stage_count must be >= 1")

    def tier(self, name: str) -> TierSpec:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise TrafficError(f"unknown tier {name!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ticks": self.ticks,
            "arrival_process": self.arrival_process,
            "arrivals_per_tick": self.arrivals_per_tick,
            "load_multiplier": self.load_multiplier,
            "diurnal_amplitude": self.diurnal_amplitude,
            "diurnal_period_ticks": self.diurnal_period_ticks,
            "bursts": [burst.to_dict() for burst in self.bursts],
            "mmpp_surge_factor": self.mmpp_surge_factor,
            "mmpp_enter_surge": self.mmpp_enter_surge,
            "mmpp_exit_surge": self.mmpp_exit_surge,
            "tiers": [tier.to_dict() for tier in self.tiers],
            "session_alpha": self.session_alpha,
            "session_windows_min": self.session_windows_min,
            "session_windows_max": self.session_windows_max,
            "app_pool_size": self.app_pool_size,
            "stage_count": self.stage_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrafficSpec":
        try:
            return cls(
                ticks=int(data["ticks"]),
                arrival_process=str(data["arrival_process"]),
                arrivals_per_tick=float(data["arrivals_per_tick"]),
                load_multiplier=float(data["load_multiplier"]),
                diurnal_amplitude=float(data["diurnal_amplitude"]),
                diurnal_period_ticks=int(data["diurnal_period_ticks"]),
                bursts=tuple(BurstSpec(
                    start_tick=int(b["start_tick"]),
                    end_tick=int(b["end_tick"]),
                    multiplier=float(b["multiplier"]),
                ) for b in data["bursts"]),
                mmpp_surge_factor=float(data["mmpp_surge_factor"]),
                mmpp_enter_surge=float(data["mmpp_enter_surge"]),
                mmpp_exit_surge=float(data["mmpp_exit_surge"]),
                tiers=tuple(TierSpec(
                    name=str(t["name"]),
                    priority=int(t["priority"]),
                    weight=float(t["weight"]),
                    slo_slowdown=float(t["slo_slowdown"]),
                    window_tasks=int(t["window_tasks"]),
                ) for t in data["tiers"]),
                session_alpha=float(data["session_alpha"]),
                session_windows_min=int(data["session_windows_min"]),
                session_windows_max=int(data["session_windows_max"]),
                app_pool_size=int(data["app_pool_size"]),
                stage_count=int(data["stage_count"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TrafficError(
                f"malformed traffic spec: {exc}"
            ) from exc
