"""Stereo-depth kernels (extension workload beyond the paper's three).

A classic local-matching stereo pipeline - rectification, census
transform, Hamming cost volume, box aggregation, winner-take-all
disparity, median cleanup - chosen because it mixes the paper's stage
classes inside one application: dense regular map stages, a
compute-heavy cost volume, bandwidth-heavy aggregation, and a
reduction.  Every kernel has a host (whole-frame vectorized) and a
device (tile-dispatched) variant with identical results.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.soc.workprofile import WorkProfile

#: Census window radius (5x5 window -> 24-bit descriptors).
CENSUS_RADIUS = 2
#: Rows per simulated device workgroup tile.
GPU_ROW_TILE = 32


def _check_image(name: str, image: np.ndarray) -> None:
    if image.ndim != 2:
        raise KernelError(f"{name} must be 2-D, got shape {image.shape}")


# ----------------------------------------------------------------------
# Stage 1: rectification (vertical shear remap, bilinear)
# ----------------------------------------------------------------------
def _rectify(src: np.ndarray, dst: np.ndarray, shear: float) -> None:
    h, w = src.shape
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    source_rows = np.clip(rows + shear * (cols - w / 2) / w, 0, h - 1)
    low = np.floor(source_rows).astype(np.int64)
    high = np.minimum(low + 1, h - 1)
    frac = (source_rows - low).astype(src.dtype)
    dst[:] = (1 - frac) * src[low, cols] + frac * src[high, cols]


def rectify_cpu(left, right, left_out, right_out, shear=0.5):
    """Host variant: one vectorized remap per image."""
    _check_image("left", left)
    _rectify(left, left_out, shear)
    _rectify(right, right_out, shear)


def rectify_gpu(left, right, left_out, right_out, shear=0.5):
    """Device variant: same remap, dispatched per image 'surface'."""
    for src, dst in ((left, left_out), (right, right_out)):
        _check_image("image", src)
        _rectify(src, dst, shear)


def rectify_work_profile(h: int, w: int) -> WorkProfile:
    """Bilinear remap: regular map with gather-flavoured reads."""
    pixels = h * w
    return WorkProfile(
        flops=12.0 * pixels * 2,
        bytes_moved=4.0 * pixels * 4,
        parallelism=float(pixels),
        divergence=0.05,
        irregularity=0.2,  # bilinear gathers
        cpu_efficiency=0.4,
        gpu_efficiency=0.45,
        gpu_launches=2,
    )


# ----------------------------------------------------------------------
# Stage 2: census transform (5x5 comparison descriptor)
# ----------------------------------------------------------------------
def _census(image: np.ndarray, out: np.ndarray) -> None:
    h, w = image.shape
    r = CENSUS_RADIUS
    padded = np.pad(image, r, mode="edge")
    descriptor = np.zeros((h, w), dtype=np.uint32)
    bit = 0
    for dy in range(-r, r + 1):
        for dx in range(-r, r + 1):
            if dy == 0 and dx == 0:
                continue
            neighbour = padded[r + dy : r + dy + h, r + dx : r + dx + w]
            descriptor |= (
                (neighbour > image).astype(np.uint32) << np.uint32(bit)
            )
            bit += 1
    out[:] = descriptor


def census_cpu(left, right, left_out, right_out):
    """Host variant: vectorized window comparisons."""
    _census(left, left_out)
    _census(right, right_out)


def census_gpu(left, right, left_out, right_out):
    """Device variant: identical comparisons, one launch per image."""
    _census(left, left_out)
    _census(right, right_out)


def census_work_profile(h: int, w: int) -> WorkProfile:
    """Window comparisons: dense, regular, GPU-friendly."""
    pixels = h * w
    window = (2 * CENSUS_RADIUS + 1) ** 2 - 1
    return WorkProfile(
        flops=2.0 * window * pixels * 2,
        bytes_moved=4.0 * pixels * (window / 4 + 2) * 2,
        parallelism=float(pixels),
        divergence=0.05,
        irregularity=0.1,
        cpu_efficiency=0.35,
        gpu_efficiency=0.5,
        gpu_launches=2,
    )


# ----------------------------------------------------------------------
# Stage 3: Hamming cost volume
# ----------------------------------------------------------------------
def _popcount32(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.uint32)
    x = x - ((x >> np.uint32(1)) & np.uint32(0x55555555))
    x = (x & np.uint32(0x33333333)) + (
        (x >> np.uint32(2)) & np.uint32(0x33333333)
    )
    x = (x + (x >> np.uint32(4))) & np.uint32(0x0F0F0F0F)
    return ((x * np.uint32(0x01010101)) >> np.uint32(24)).astype(np.uint8)


def cost_volume_cpu(left_census, right_census, cost, max_disparity):
    """Host variant: one vectorized Hamming pass per disparity."""
    h, w = left_census.shape
    if cost.shape != (max_disparity, h, w):
        raise KernelError(f"cost volume shape {cost.shape} wrong")
    for d in range(max_disparity):
        shifted = np.empty_like(right_census)
        shifted[:, d:] = right_census[:, : w - d]
        shifted[:, :d] = right_census[:, :1]
        cost[d] = _popcount32(left_census ^ shifted)


def cost_volume_gpu(left_census, right_census, cost, max_disparity):
    """Device variant: disparity-major launches (one per d), matching
    how a compute shader grid would be dispatched."""
    cost_volume_cpu(left_census, right_census, cost, max_disparity)


def cost_volume_work_profile(h: int, w: int, d: int) -> WorkProfile:
    """Hamming matching over D disparities: the compute-heavy stage."""
    pixels = h * w
    return WorkProfile(
        flops=8.0 * pixels * d,
        bytes_moved=4.0 * pixels * d / 2 + pixels * d,
        parallelism=float(pixels * d),
        divergence=0.02,
        irregularity=0.05,
        cpu_efficiency=0.25,
        gpu_efficiency=0.55,
        gpu_launches=1,
    )


# ----------------------------------------------------------------------
# Stage 4: box aggregation over the cost volume
# ----------------------------------------------------------------------
def aggregate_cpu(cost, aggregated, radius=2):
    """Host variant: separable box filter via cumulative sums."""
    d, h, w = cost.shape
    if aggregated.shape != cost.shape:
        raise KernelError("aggregated volume shape mismatch")
    k = 2 * radius + 1
    padded = np.pad(
        cost.astype(np.float32),
        ((0, 0), (radius, radius), (radius, radius)),
        mode="edge",
    )
    rows = np.cumsum(padded, axis=1)
    rows = np.concatenate(
        [rows[:, k - 1 : k], rows[:, k:] - rows[:, : -k]], axis=1
    )
    cols = np.cumsum(rows, axis=2)
    cols = np.concatenate(
        [cols[:, :, k - 1 : k], cols[:, :, k:] - cols[:, :, : -k]], axis=2
    )
    aggregated[:] = cols / (k * k)


def aggregate_gpu(cost, aggregated, radius=2):
    """Device variant: per-disparity-slice launches."""
    d = cost.shape[0]
    for slice_index in range(d):
        aggregate_cpu(
            cost[slice_index : slice_index + 1],
            aggregated[slice_index : slice_index + 1],
            radius,
        )


def aggregate_work_profile(h: int, w: int, d: int) -> WorkProfile:
    """Box filtering the cost volume: the bandwidth-heavy stage."""
    pixels = h * w
    return WorkProfile(
        flops=6.0 * pixels * d,
        bytes_moved=4.0 * pixels * d * 3,
        parallelism=float(pixels * d),
        divergence=0.02,
        irregularity=0.05,
        cpu_efficiency=0.45,
        gpu_efficiency=0.4,
        gpu_launches=max(d // 8, 1),
    )


# ----------------------------------------------------------------------
# Stage 5: winner-take-all disparity
# ----------------------------------------------------------------------
def wta_cpu(aggregated, disparity):
    """Host variant: argmin reduction across the disparity axis."""
    if disparity.shape != aggregated.shape[1:]:
        raise KernelError("disparity map shape mismatch")
    np.copyto(disparity, np.argmin(aggregated, axis=0).astype(np.int32))


def wta_gpu(aggregated, disparity):
    """Device variant: running-minimum over disparity launches."""
    d = aggregated.shape[0]
    best_cost = aggregated[0].copy()
    best_index = np.zeros(aggregated.shape[1:], dtype=np.int32)
    for index in range(1, d):
        better = aggregated[index] < best_cost
        best_cost = np.where(better, aggregated[index], best_cost)
        best_index = np.where(better, np.int32(index), best_index)
    np.copyto(disparity, best_index)


def wta_work_profile(h: int, w: int, d: int) -> WorkProfile:
    """Argmin reduction across disparities (mildly divergent)."""
    pixels = h * w
    return WorkProfile(
        flops=2.0 * pixels * d,
        bytes_moved=4.0 * pixels * d,
        parallelism=float(pixels),
        divergence=0.25,
        irregularity=0.1,
        cpu_efficiency=0.4,
        gpu_efficiency=0.3,
        gpu_launches=1,
    )


# ----------------------------------------------------------------------
# Stage 6: 3x3 median cleanup
# ----------------------------------------------------------------------
def median3x3_cpu(disparity, cleaned):
    """Host variant: stacked-neighbour median."""
    if cleaned.shape != disparity.shape:
        raise KernelError("cleaned map shape mismatch")
    h, w = disparity.shape
    padded = np.pad(disparity, 1, mode="edge")
    stack = np.stack([
        padded[dy : dy + h, dx : dx + w]
        for dy in range(3)
        for dx in range(3)
    ])
    np.copyto(cleaned, np.median(stack, axis=0).astype(disparity.dtype))


def median3x3_gpu(disparity, cleaned):
    """Device variant: row-tile launches."""
    h = disparity.shape[0]
    out = np.empty_like(cleaned)
    median3x3_cpu(disparity, out)  # identical math
    for row0 in range(0, h, GPU_ROW_TILE):
        sl = slice(row0, min(row0 + GPU_ROW_TILE, h))
        cleaned[sl] = out[sl]


def median_work_profile(h: int, w: int) -> WorkProfile:
    """3x3 median cleanup: small, branchy, little-core material."""
    pixels = h * w
    return WorkProfile(
        flops=30.0 * pixels,
        bytes_moved=4.0 * pixels * 3,
        parallelism=float(pixels),
        divergence=0.3,
        irregularity=0.15,
        cpu_efficiency=0.35,
        gpu_efficiency=0.25,
        gpu_launches=1,
    )
