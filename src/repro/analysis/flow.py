"""Interprocedural determinism-flow analysis (``repro flow``).

The per-statement linter (:mod:`repro.analysis.rules`) flags a
``time.time()`` call *at the call site*; it cannot see the value
laundered through three helpers into a serialized report.  This pass
can.  It runs in two phases over the project model from
:mod:`repro.analysis.callgraph`:

**Phase A - summaries.**  Every function is abstractly interpreted
with its parameters bound to symbolic markers (``@param:i``).  The
result is a :class:`Summary` per function: which taint kinds its
return value carries, which parameters flow to its return value,
which parameters reach a determinism sink inside it (transitively),
which parameters it mutates with tainted data, and which parameters it
stores into named object fields.  Field stores and CamelCase
constructor keywords feed a *name-keyed global field-taint table* -
the pragmatic answer to heap aliasing that makes a chain like
``perf_counter() -> SolverStats.wall_seconds -> result.solver_wall_s
-> optimization_to_dict -> write_artifact`` trackable without a points-
to analysis.  Summaries and the field table iterate to a fixpoint.

**Phase B - reporting.**  Every function (and module body) is re-
interpreted with *empty* parameter taint; now any concrete taint
reaching a sink - directly, through a summary's ``param_sinks``, or
via the field table - is a finding.  Findings are filtered through
``# bt-flow: disable=RULE -- justification`` comments; a bt-flow
suppression *without* a justification suffix does not suppress and is
itself reported (``BAD-SUPPRESSION``).

Control dependence is deliberately out of scope: branching on
``os.environ`` (engine selection) taints nothing - only data flow
into report bytes counts.  Unresolved calls join their argument taint
into the result (taint is never laundered by code we cannot see) but
never add sink edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, \
    Tuple, Union

from repro.analysis import taint as T
from repro.analysis.astcache import (
    AstCache,
    ParsedModule,
    Suppression,
    ast_cache,
    suppressed_at,
)
from repro.analysis.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.clocks import check_clocks
from repro.analysis.linter import collect_files
from repro.analysis.rules import Finding

#: Suppression-comment tag honoured by this tool.
TOOL_TAG = "bt-flow"

#: Fixpoint bound.  Summaries grow monotonically, so this only caps
#: pathological call-graph depth; real trees converge in 2-3 rounds.
_MAX_ROUNDS = 10

#: Method names that mutate their receiver with their arguments.
_MUTATORS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
    "push", "put", "appendleft", "add_event",
})


_COMPOUND_STMTS = (ast.If, ast.For, ast.AsyncFor, ast.While,
                   ast.With, ast.AsyncWith, ast.Try)


def _loop_carries(loop: ast.stmt) -> bool:
    """Whether a loop can carry taint between iterations.

    A second interpretation pass over a loop body only changes the
    result when some name is *read* at an earlier statement than a
    *write* to it - the write feeds the next iteration's read.  Bodies
    without that shape (the overwhelming majority) converge in one
    pass.  Field-carried flow needs no second pass here: the field
    table is global and monotone, and the worklist re-runs readers
    when it grows.  The verdict is static, so it is memoized on the
    loop node.
    """
    cached = getattr(loop, "_bt_carries", None)
    if cached is not None:
        return cached
    min_read: Dict[str, int] = {}
    max_write: Dict[str, int] = {}
    counter = 0

    def collect(expr: ast.AST, index: int) -> None:
        for node in ast.walk(expr):
            if node.__class__ is not ast.Name:
                continue
            if isinstance(node.ctx, ast.Load):
                if node.id not in min_read:
                    min_read[node.id] = index
            else:
                prev = max_write.get(node.id)
                if prev is None or prev < index:
                    max_write[node.id] = index

    def scan(stmts: Iterable[ast.stmt]) -> None:
        nonlocal counter
        for stmt in stmts:
            counter += 1
            index = counter
            if isinstance(stmt, _COMPOUND_STMTS):
                # Header expressions at this index, blocks in order.
                for _, value in ast.iter_fields(stmt):
                    if isinstance(value, (ast.expr, ast.withitem)):
                        collect(value, index)
                    elif (isinstance(value, list) and value
                          and not isinstance(value[0], ast.stmt)):
                        for item in value:
                            collect(item, index)
                for name in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, name, None)
                    if sub:
                        scan(sub)
                for handler in getattr(stmt, "handlers", ()):
                    scan(handler.body)
            else:
                collect(stmt, index)

    scan(loop.body)
    carries = any(
        reader_index < max_write.get(name, -1)
        for name, reader_index in min_read.items()
    )
    try:
        loop._bt_carries = carries  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - slotted nodes
        pass
    return carries


@dataclass
class Summary:
    """One function's interprocedural behaviour."""

    return_kinds: T.Taint = T.EMPTY
    return_params: FrozenSet[int] = frozenset()
    #: param index -> sink description it (transitively) reaches.
    param_sinks: Dict[int, str] = field(default_factory=dict)
    #: param index -> concrete kinds the function adds to that argument.
    mutates: Dict[int, T.Taint] = field(default_factory=dict)
    #: param index -> object field names it is stored into.
    param_fields: Dict[int, FrozenSet[str]] = field(default_factory=dict)


#: Shared read-only default for unresolved/unprocessed callees - the
#: call-site hot path must not allocate a Summary per call.
_NO_SUMMARY = Summary()


@dataclass
class FlowReport:
    """Outcome of one flow run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return out

    def to_dict(self) -> Dict:
        """JSON-serialisable form of the report."""
        return {
            "tool": "repro-flow",
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts,
        }


class _Analysis:
    """Shared state across both phases: project, summaries, fields."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, Summary] = {
            q: Summary() for q in project.functions
        }
        self.field_taint: Dict[str, Set[str]] = {}
        self._chains: Dict[str, Tuple[str, ...]] = {}
        #: callee qname -> caller qnames (from resolved call sites).
        self._callers: Dict[str, Set[str]] = {}
        #: field key -> qnames of functions that read it.
        self._field_readers: Dict[str, Set[str]] = {}
        #: field keys whose taint grew since last drained.
        self._changed_fields: Set[str] = set()
        #: qname -> whether the function's last summary run evaluated
        #: any call that could emit a finding (a sink call, or a call
        #: into a function whose params reach a sink).  Phase B skips
        #: functions where this is False - they cannot report.
        self._report_sites: Dict[str, bool] = {}
        #: qname -> annotation-derived var_types, resolved once; the
        #: interpreter re-instantiates per run and resolution walks
        #: import tables.
        self._annot_types: Dict[str, Dict[str, str]] = {}

    def add_field_taint(self, key: str, kinds: Set[str]) -> None:
        """Grow the field table, recording which keys changed so the
        worklist can re-run just their readers."""
        entry = self.field_taint.setdefault(key, set())
        if not kinds <= entry:
            entry.update(kinds)
            self._changed_fields.add(key)

    def class_chain(self, qname: str) -> Tuple[str, ...]:
        """A class qname plus its project base-class qnames."""
        cached = self._chains.get(qname)
        if cached is not None:
            return cached
        chain: List[str] = []
        queue = [qname]
        while queue:
            current = queue.pop(0)
            if current in chain:
                continue
            chain.append(current)
            ci = self.project.classes.get(current)
            if ci is None:
                continue
            module = self.project.modules.get(ci.module)
            if module is None:
                continue
            for base in ci.bases:
                base_ci = self.project.class_by_local_name(base, module)
                if base_ci is not None:
                    queue.append(base_ci.qname)
        result = tuple(chain)
        self._chains[qname] = result
        return result

    def run_summaries(self) -> None:
        """Round-based fixpoint over function summaries + field table.

        Round 0 runs every function once, recording call/field-read
        edges.  Later rounds re-run only functions whose dependencies
        (a callee summary, or a field key they read) actually grew -
        in callee-before-caller postorder, so one round flushes a
        whole call chain.  A dependent scheduled *later in the same
        round* sees the growth when it runs, so it is not re-marked.
        Taint sets grow monotonically, so this terminates; the round
        cap only bounds pathological dependency churn (cycles through
        the field table).
        """
        funcs = self.project.all_functions()
        by_qname = {fn.qname: fn for fn in funcs}
        dirty: Set[str] = set()
        #: Position of each function in the round currently running:
        #: dependents at a later position need no re-mark.
        position: Dict[str, int] = {}

        def process(fn: FunctionInfo, index: int) -> None:
            interp = _FunctionInterp(self, fn, symbolic=True)
            new = interp.run()
            # Last run wins: if a callee's param_sinks grow later, the
            # callee's Summary changes, which re-marks this caller, so
            # the final flag always reflects fixpoint summaries.
            self._report_sites[fn.qname] = interp.saw_report_site
            for callee in interp.called:
                self._callers.setdefault(callee, set()).add(fn.qname)
            for key in interp.fields_read:
                self._field_readers.setdefault(
                    key, set()).add(fn.qname)
            grown: Set[str] = set()
            if new != self.summaries[fn.qname]:
                self.summaries[fn.qname] = new
                grown |= self._callers.get(fn.qname, set())
            if self._changed_fields:
                for key in self._changed_fields:
                    grown |= self._field_readers.get(key, set())
                self._changed_fields.clear()
            for qname in grown:
                if position.get(qname, -1) <= index \
                        and qname in by_qname:
                    dirty.add(qname)

        # Calls overwhelmingly follow import direction, so running
        # round 0 in module-import postorder (imported modules first,
        # intra-module definition order preserved) makes most
        # summaries converge in a single pass - without walking a
        # single tree for call sites.
        mod_order = self._module_import_order()
        funcs = sorted(
            funcs, key=lambda f: mod_order.get(f.module, 0))
        position = {fn.qname: i for i, fn in enumerate(funcs)}
        for i, fn in enumerate(funcs):
            process(fn, i)

        order = self._postorder(by_qname)
        for _ in range(_MAX_ROUNDS):
            if not dirty:
                break
            batch = sorted(dirty, key=lambda q: (order.get(q, 0), q))
            dirty.clear()
            position = {q: i for i, q in enumerate(batch)}
            for i, qname in enumerate(batch):
                process(by_qname[qname], i)

    def _module_import_order(self) -> Dict[str, int]:
        """Modname -> postorder index over the import graph (an
        imported module sorts before its importers; cycles break at
        the back edge)."""
        modules = self.project.modules
        edges: Dict[str, List[str]] = {}
        for modname, info in modules.items():
            targets = []
            for target in info.imports.values():
                # Longest project-module prefix of the imported name:
                # "pkg.mod.symbol" -> "pkg.mod".
                name = target
                while name and name not in modules:
                    name = name.rpartition(".")[0]
                if name and name != modname:
                    targets.append(name)
            edges[modname] = targets
        order: Dict[str, int] = {}
        visiting: Set[str] = set()
        for root in modules:
            if root in order:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                modname, child = stack[-1]
                subs = edges.get(modname, ())
                if child == 0:
                    visiting.add(modname)
                advanced = False
                while child < len(subs):
                    nxt = subs[child]
                    child += 1
                    if nxt not in order and nxt not in visiting:
                        stack[-1] = (modname, child)
                        stack.append((nxt, 0))
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                visiting.discard(modname)
                order[modname] = len(order)
        return order

    def _postorder(self, by_qname: Dict[str, FunctionInfo],
                   ) -> Dict[str, int]:
        """Callee-before-caller postorder index over the call edges
        discovered in round 0 (cycles break at the back edge)."""
        callees: Dict[str, List[str]] = {}
        for callee, callers in self._callers.items():
            for caller in callers:
                callees.setdefault(caller, []).append(callee)
        order: Dict[str, int] = {}
        visiting: Set[str] = set()
        for root in by_qname:
            if root in order:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                qname, child = stack[-1]
                subs = callees.get(qname, ())
                if child == 0:
                    visiting.add(qname)
                advanced = False
                while child < len(subs):
                    nxt = subs[child]
                    child += 1
                    if nxt not in order and nxt not in visiting \
                            and nxt in by_qname:
                        stack[-1] = (qname, child)
                        stack.append((nxt, 0))
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                visiting.discard(qname)
                order[qname] = len(order)
        return order

    def report_module(self, parsed: ParsedModule) -> List[Finding]:
        """Phase B over one module: functions + top-level code."""
        module = self.project.modules.get(
            _modname_of(self.project, parsed.path))
        findings: List[Finding] = []
        for fn in self.project.functions_in(parsed.path):
            if not self._report_sites.get(fn.qname, True):
                continue  # no sink-reaching call sites: cannot report
            interp = _FunctionInterp(self, fn, symbolic=False)
            interp.run()
            findings.extend(interp.findings)
        if module is not None:
            interp = _FunctionInterp(self, None, symbolic=False,
                                     module=module)
            top_level = [s for s in parsed.tree.body
                         if not isinstance(s, (ast.FunctionDef,
                                               ast.AsyncFunctionDef,
                                               ast.ClassDef))]
            interp.exec_block(top_level)
            findings.extend(interp.findings)
        return findings


def _modname_of(project: Project, path: str) -> str:
    for modname, info in project.modules.items():
        if info.path == path:
            return modname
    return ""


class _FunctionInterp:
    """Abstract interpreter for one function body (or module body)."""

    def __init__(self, analysis: _Analysis,
                 fn: Optional[FunctionInfo], symbolic: bool,
                 module: Optional[ModuleInfo] = None) -> None:
        self.analysis = analysis
        self.fn = fn
        self.symbolic = symbolic
        self.module = module if module is not None else (
            analysis.project.modules.get(fn.module) if fn else None)
        self.enclosing_class = fn.cls if fn else None
        self.path = fn.path if fn else (module.path if module else "")
        self.env: Dict[str, Set[str]] = {}
        self.summary = Summary()
        self._ret_kinds: Set[str] = set()
        self._ret_params: Set[int] = set()
        self._param_sinks: Dict[int, str] = {}
        self._mutates: Dict[int, Set[str]] = {}
        self._param_fields: Dict[int, Set[str]] = {}
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, str, int, int]] = set()
        self._param_index: Dict[str, int] = {}
        #: Worklist dependencies discovered during this run: resolved
        #: callee qnames and field keys read through the table.
        self.called: Set[str] = set()
        self.fields_read: Set[str] = set()
        #: Whether this run saw a call site that could ever report
        #: (used by the summary phase to prune phase B).
        self.saw_report_site = False
        #: local name -> ClassInfo qname, from parameter annotations,
        #: ``self``, and constructor-call assignments.  Typed bases get
        #: class-keyed field lookups; untyped bases fall back to the
        #: (much smaller) global name-keyed table.
        self.var_types: Dict[str, str] = {}
        if fn is not None:
            all_params = tuple(fn.params) + tuple(fn.kwonly_params)
            for i, name in enumerate(all_params):
                self._param_index[name] = i
                self.env[name] = ({T.param_marker(i)} if symbolic
                                  else set())
            annotated = analysis._annot_types.get(fn.qname)
            if annotated is None:
                self._type_params_from_annotations(fn)
                analysis._annot_types[fn.qname] = dict(self.var_types)
            else:
                self.var_types.update(annotated)
            if fn.is_method:
                self.env.setdefault("self", set())
                self.env.setdefault("cls", set())
                if self.module is not None and fn.cls is not None:
                    cls_info = self.module.classes.get(fn.cls)
                    if cls_info is not None:
                        self.var_types["self"] = cls_info.qname
                        self.var_types["cls"] = cls_info.qname

    def _type_params_from_annotations(self, fn: FunctionInfo) -> None:
        if self.module is None:
            return
        args = fn.node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            annotation = arg.annotation
            if isinstance(annotation, ast.Subscript):
                annotation = annotation.slice  # Optional[X] -> X
            if isinstance(annotation, (ast.Name, ast.Attribute)):
                resolved = self._class_of_expr_name(annotation)
                if resolved is not None:
                    self.var_types[arg.arg] = resolved

    def _class_of_expr_name(self, node: ast.expr) -> Optional[str]:
        """ClassInfo qname a Name/Attribute annotation refers to."""
        if self.module is None:
            return None
        if isinstance(node, ast.Name):
            ci = self.analysis.project.class_by_local_name(
                node.id, self.module)
            return ci.qname if ci is not None else None
        if isinstance(node, ast.Attribute):
            target = self.analysis.project.resolve(node, self.module)
            if isinstance(target, ClassInfo):
                return target.qname
        return None

    def _type_of(self, node: ast.expr) -> Optional[str]:
        """The tracked class qname of an expression's value, if any."""
        if isinstance(node, ast.Name):
            return self.var_types.get(node.id)
        return None

    # -- driver --------------------------------------------------------
    def run(self) -> Summary:
        if self.fn is not None:
            self.exec_block(self.fn.node.body)
        return Summary(
            return_kinds=frozenset(self._ret_kinds),
            return_params=frozenset(self._ret_params),
            param_sinks=dict(self._param_sinks),
            mutates={i: frozenset(v)
                     for i, v in self._mutates.items() if v},
            param_fields={i: frozenset(v)
                          for i, v in self._param_fields.items() if v},
        )

    def emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule_id, self.path, line, col)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule_id=rule_id, path=self.path, line=line, col=col,
            message=message,
        ))

    # -- statements ----------------------------------------------------
    def exec_block(self, stmts: Iterable[ast.stmt]) -> None:
        # Dispatch inline rather than via exec_stmt: one call frame
        # per statement is measurable at this volume.
        get = _EXEC.get
        for stmt in stmts:
            handler = get(stmt.__class__)
            if handler is not None:
                handler(self, stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        """Interpret one statement (class-keyed dispatch, see
        ``_EXEC``); unknown statement kinds are no-ops."""
        handler = _EXEC.get(stmt.__class__)
        if handler is not None:
            handler(self, stmt)

    def _exec_assign(self, stmt: ast.Assign) -> None:
        value = self.eval(stmt.value)
        for target in stmt.targets:
            self.assign(target, value)
            self._record_type(target, stmt.value)

    def _exec_annassign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is not None:
            self.assign(stmt.target, self.eval(stmt.value))
            self._record_type(stmt.target, stmt.value)

    def _exec_augassign(self, stmt: ast.AugAssign) -> None:
        value = self.eval(stmt.target) | self.eval(stmt.value)
        self.assign(stmt.target, value)

    def _exec_expr(self, stmt: ast.Expr) -> None:
        self.eval(stmt.value)

    def _exec_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            value = self.eval(stmt.value)
            self._ret_kinds |= T.concrete(value)
            self._ret_params |= T.markers(value)

    def _exec_if(self, stmt: ast.If) -> None:
        self.eval(stmt.test)
        self.exec_block(stmt.body)
        self.exec_block(stmt.orelse)

    def _exec_for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        self.assign(stmt.target, self.element_of(
            self.eval(stmt.iter)))
        # The body runs twice when a name read early can be written
        # later (loop-carried flow, see ``_loop_carries``); findings
        # dedupe on (rule, path, line, col).
        self.exec_block(stmt.body)
        if _loop_carries(stmt):
            self.assign(stmt.target, self.element_of(
                self.eval(stmt.iter)))
            self.exec_block(stmt.body)
        self.exec_block(stmt.orelse)

    def _exec_while(self, stmt: ast.While) -> None:
        # Same conditional double pass as ``_exec_for``.
        self.eval(stmt.test)
        self.exec_block(stmt.body)
        if _loop_carries(stmt):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
        self.exec_block(stmt.orelse)

    def _exec_with(self, stmt: Union[ast.With,
                                     ast.AsyncWith]) -> None:
        for item in stmt.items:
            ctx = self.eval(item.context_expr)
            if item.optional_vars is not None:
                self.assign(item.optional_vars, ctx)
        self.exec_block(stmt.body)

    def _exec_try(self, stmt: ast.Try) -> None:
        self.exec_block(stmt.body)
        for handler in stmt.handlers:
            if handler.name:
                self.env[handler.name] = set()
            self.exec_block(handler.body)
        self.exec_block(stmt.orelse)
        self.exec_block(stmt.finalbody)

    def _exec_funcdef(self, stmt: Union[ast.FunctionDef,
                                        ast.AsyncFunctionDef]) -> None:
        # Nested function / closure: interpret inline against the
        # current environment so captured taint is visible, but
        # keep its returns out of the enclosing summary.
        self.env[stmt.name] = set()
        saved = (self._ret_kinds, self._ret_params)
        self._ret_kinds, self._ret_params = set(), set()
        for arg in (stmt.args.posonlyargs + stmt.args.args
                    + stmt.args.kwonlyargs):
            self.env.setdefault(arg.arg, set())
        self.exec_block(stmt.body)
        self._ret_kinds, self._ret_params = saved

    def _exec_raise(self, stmt: Union[ast.Raise,
                                      ast.Assert]) -> None:
        for sub in ast.iter_child_nodes(stmt):
            if isinstance(sub, ast.expr):
                self.eval(sub)

    def _exec_delete(self, stmt: ast.Delete) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self.env.pop(target.id, None)

    def _record_type(self, target: ast.expr,
                     value: ast.expr) -> None:
        """Track ``x = ClassName(...)`` so later ``x.attr`` reads are
        class-keyed instead of falling back to the global table."""
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, ast.Call) and self.module is not None:
            resolved = self.analysis.project.resolve(
                value.func, self.module, self.enclosing_class)
            if isinstance(resolved, ClassInfo):
                self.var_types[target.id] = resolved.qname
                return
        self.var_types.pop(target.id, None)

    def assign(self, target: ast.expr, value: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(value)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            unpacked = self.element_of(value)
            for elt in target.elts:
                self.assign(elt, unpacked)
        elif isinstance(target, ast.Attribute):
            self.store_field(target.attr, value,
                             self._type_of(target.value))
            self.eval(target.value)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                self.env.setdefault(base.id, set()).update(value)
                index = self._param_index.get(base.id)
                if index is not None and T.concrete(value):
                    self._mutates.setdefault(index, set()).update(
                        T.concrete(value))
            elif isinstance(base, ast.Attribute):
                self.store_field(base.attr, value,
                                 self._type_of(base.value))

    def store_field(self, name: str, value: Set[str],
                    owner: Optional[str] = None) -> None:
        """Record ``obj.<name> = value`` in the field table.

        Stores through a base of known class land under a
        ``<class qname>::<field>`` key; stores through untyped bases
        fall back to the bare field name.
        """
        if T.is_control_plane_field(name):
            return
        key = f"{owner}::{name}" if owner else name
        kinds = T.concrete(value) & T.FIELD_TRACKED_KINDS
        if kinds:
            self.analysis.add_field_taint(key, kinds)
        for index in T.markers(value):
            self._param_fields.setdefault(index, set()).add(key)

    def field_kinds(self, base: ast.expr, attr: str) -> Set[str]:
        """Field taint visible through an attribute read.

        A typed base sees its class chain's keyed entries plus the
        global bare-name entry (stores through untyped aliases of the
        same object land there).  An untyped base sees only the bare-
        name entry - it cannot alias class-keyed state it never built.
        """
        table = self.analysis.field_taint
        self.fields_read.add(attr)
        entry = table.get(attr)
        kinds = set(entry) if entry else set()
        owner = self._type_of(base)
        if owner is not None:
            for qname in self.analysis.class_chain(owner):
                key = f"{qname}::{attr}"
                self.fields_read.add(key)
                entry = table.get(key)
                if entry:
                    kinds |= entry
        return kinds

    # -- expressions ---------------------------------------------------
    def element_of(self, container: Set[str]) -> Set[str]:
        """Taint of one element drawn from a container: iterating an
        unordered collection makes the *selection* order-dependent."""
        if T.UNORDERED in container:
            return (container - {T.UNORDERED}) | {T.UNORDERED_ITER}
        return set(container)

    def eval(self, node: Optional[ast.expr]) -> Set[str]:
        """Taint of an expression.  Dispatch is a class-keyed table
        (see ``_EVAL``) - this runs hundreds of thousands of times per
        tree, so an isinstance chain is measurably too slow."""
        if node is None:
            return set()
        handler = _EVAL.get(node.__class__)
        if handler is None:
            return set()
        return handler(self, node)

    def _eval_name(self, node: ast.Name) -> Set[str]:
        taint = self.env.get(node.id)
        return set(taint) if taint else set()

    def _eval_constant(self, node: ast.Constant) -> Set[str]:
        return set()

    def _eval_attribute(self, node: ast.Attribute) -> Set[str]:
        base = self.eval(node.value)
        return base | self.field_kinds(node.value, node.attr)

    def _eval_subscript(self, node: ast.Subscript) -> Set[str]:
        if T.is_env_read(node):
            return {T.ENV_READ}
        return self.eval(node.value) | self.eval(node.slice)

    def _eval_binop(self, node: ast.BinOp) -> Set[str]:
        return self.eval(node.left) | self.eval(node.right)

    def _eval_boolop(self, node: ast.BoolOp) -> Set[str]:
        out: Set[str] = set()
        for value in node.values:
            out |= self.eval(value)
        return out

    def _eval_unaryop(self, node: ast.UnaryOp) -> Set[str]:
        return self.eval(node.operand)

    def _eval_compare(self, node: ast.Compare) -> Set[str]:
        # Membership / equality against a set is deterministic:
        # comparisons read values, not iteration order.
        out = self.eval(node.left)
        for comp in node.comparators:
            out |= self.eval(comp)
        return out - {T.UNORDERED}

    def _eval_ifexp(self, node: ast.IfExp) -> Set[str]:
        self.eval(node.test)  # control dependence: not tracked
        return self.eval(node.body) | self.eval(node.orelse)

    def _eval_sequence(self, node: Union[ast.List,
                                         ast.Tuple]) -> Set[str]:
        out: Set[str] = set()
        for elt in node.elts:
            out |= self.eval(elt)
        return out

    def _eval_set(self, node: ast.Set) -> Set[str]:
        out: Set[str] = set()
        for elt in node.elts:
            out |= self.eval(elt)
        return (out - {T.UNORDERED_ITER}) | {T.UNORDERED}

    def _eval_dict(self, node: ast.Dict) -> Set[str]:
        out: Set[str] = set()
        for key in node.keys:
            out |= self.eval(key)
        for value in node.values:
            out |= self.eval(value)
        return out

    def _eval_comp(self, node: Union[ast.ListComp,
                                     ast.GeneratorExp]) -> Set[str]:
        self.bind_comprehension(node.generators)
        return self.eval(node.elt)

    def _eval_setcomp(self, node: ast.SetComp) -> Set[str]:
        self.bind_comprehension(node.generators)
        out = self.eval(node.elt)
        return (out - {T.UNORDERED_ITER}) | {T.UNORDERED}

    def _eval_dictcomp(self, node: ast.DictComp) -> Set[str]:
        self.bind_comprehension(node.generators)
        return self.eval(node.key) | self.eval(node.value)

    def _eval_joinedstr(self, node: ast.JoinedStr) -> Set[str]:
        out: Set[str] = set()
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                out |= self.eval(value.value)
        return out

    def _eval_formatted(self, node: ast.FormattedValue) -> Set[str]:
        return self.eval(node.value)

    def _eval_starred(self, node: ast.Starred) -> Set[str]:
        return self.element_of(self.eval(node.value))

    def _eval_lambda(self, node: ast.Lambda) -> Set[str]:
        return set()

    def _eval_wrapped(self, node: Union[ast.Await,
                                        ast.YieldFrom]) -> Set[str]:
        return self.eval(node.value)

    def _eval_yield(self, node: ast.Yield) -> Set[str]:
        if node.value is not None:
            value = self.eval(node.value)
            self._ret_kinds |= T.concrete(value)
            self._ret_params |= T.markers(value)
        return set()

    def _eval_namedexpr(self, node: ast.NamedExpr) -> Set[str]:
        value = self.eval(node.value)
        self.assign(node.target, value)
        return value

    def _eval_slice(self, node: ast.Slice) -> Set[str]:
        out: Set[str] = set()
        for sub in (node.lower, node.upper, node.step):
            if sub is not None:
                out |= self.eval(sub)
        return out

    def bind_comprehension(self,
                           generators: List[ast.comprehension]) -> None:
        for gen in generators:
            self.assign(gen.target,
                        self.element_of(self.eval(gen.iter)))
            for cond in gen.ifs:
                self.eval(cond)

    # -- calls ---------------------------------------------------------
    def eval_call(self, call: ast.Call) -> Set[str]:
        arg_taints: List[Set[str]] = [self.eval(a) for a in call.args]
        kw_taints: List[Tuple[Optional[str], Set[str]]] = [
            (kw.arg, self.eval(kw.value)) for kw in call.keywords
        ]
        joined: Set[str] = set()
        for t in arg_taints:
            joined |= t
        for _, t in kw_taints:
            joined |= t

        kind, launder_tag, sink = T.classify_call(call)
        if kind is not None:
            joined.add(kind)
            return joined

        if launder_tag is not None:
            return set(T.apply_launder(launder_tag,
                                       frozenset(joined)))

        if sink is not None:
            self.saw_report_site = True
            self.check_sink_args(call, sink[0], sink[1], arg_taints,
                                 kw_taints)

        target = None
        if self.module is not None:
            target = self.analysis.project.resolve(
                call.func, self.module, self.enclosing_class)

        if isinstance(target, FunctionInfo):
            return self.call_function(call, target, arg_taints,
                                      kw_taints)
        if isinstance(target, ClassInfo):
            return self.call_constructor(call, target, arg_taints,
                                         kw_taints)
        return self.call_unknown(call, arg_taints, kw_taints, joined)

    def _map_args(self, params: Tuple[str, ...],
                  arg_taints: List[Set[str]],
                  kw_taints: List[Tuple[Optional[str], Set[str]]],
                  ) -> Dict[int, Set[str]]:
        """Map call-site argument taints onto callee parameter slots."""
        mapping: Dict[int, Set[str]] = {}
        for i, t in enumerate(arg_taints):
            if i < len(params):
                mapping[i] = t
        for name, t in kw_taints:
            if name is not None and name in params:
                mapping[params.index(name)] = t
        return mapping

    def call_function(self, call: ast.Call, fn: FunctionInfo,
                      arg_taints: List[Set[str]],
                      kw_taints: List[Tuple[Optional[str], Set[str]]],
                      ) -> Set[str]:
        # Sink classification already ran in eval_call.
        self.called.add(fn.qname)
        summary = self.analysis.summaries.get(fn.qname, _NO_SUMMARY)
        if summary.param_sinks:
            self.saw_report_site = True
        # Most summaries are entirely empty; build the arg->param
        # mapping (and walk it) only when some table will consume it.
        mapping: Dict[int, Set[str]] = {}
        if (summary.param_sinks or summary.param_fields
                or summary.mutates or summary.return_params):
            params = tuple(fn.params) + tuple(fn.kwonly_params)
            mapping = self._map_args(params, arg_taints, kw_taints)
        for index, sink in summary.param_sinks.items():
            t = mapping.get(index)
            if not t:
                continue
            for marker in T.markers(t):
                self._param_sinks.setdefault(marker, sink)
            kinds = T.concrete(t)
            if kinds and not self.symbolic:
                self.report_sink(call, kinds,
                                 f"{sink} (via {fn.name}())")
        for index, fnames in summary.param_fields.items():
            t = mapping.get(index)
            if not t:
                continue
            kinds = T.concrete(t)
            for fname in fnames:
                if T.is_control_plane_field(fname):
                    continue
                tracked = kinds & T.FIELD_TRACKED_KINDS
                if tracked:
                    self.analysis.add_field_taint(fname, tracked)
                for marker in T.markers(t):
                    self._param_fields.setdefault(
                        marker, set()).add(fname)
        for index, added in summary.mutates.items():
            if added and index < len(call.args):
                arg = call.args[index]
                if isinstance(arg, ast.Name):
                    self.env.setdefault(arg.id, set()).update(added)

        result: Set[str] = set(summary.return_kinds)
        for index in summary.return_params:
            result |= mapping.get(index, set())
        if fn.is_method and isinstance(call.func, ast.Attribute):
            # A tainted receiver taints what its methods hand back.
            result |= self.eval(call.func.value)
        return result

    def call_constructor(self, call: ast.Call, cls: ClassInfo,
                         arg_taints: List[Set[str]],
                         kw_taints: List[Tuple[Optional[str],
                                               Set[str]]],
                         ) -> Set[str]:
        params = cls.init_params()
        mapping = self._map_args(params, arg_taints, kw_taints)
        for index, t in mapping.items():
            if index < len(params):
                self.store_field(params[index], t, cls.qname)
        # SINK_CONSTRUCTORS classification already ran in eval_call.
        # The object reference itself is deterministic; its tainted
        # fields are tracked through the field table.
        return set()

    def call_unknown(self, call: ast.Call,
                     arg_taints: List[Set[str]],
                     kw_taints: List[Tuple[Optional[str], Set[str]]],
                     joined: Set[str]) -> Set[str]:
        # Sink classification already ran in eval_call.
        result = set(joined)
        if isinstance(call.func, ast.Attribute):
            base = self.eval(call.func.value)
            if call.func.attr in _MUTATORS \
                    and isinstance(call.func.value, ast.Name):
                name = call.func.value.id
                self.env.setdefault(name, set()).update(joined)
                index = self._param_index.get(name)
                if index is not None and T.concrete(joined):
                    self._mutates.setdefault(index, set()).update(
                        T.concrete(joined))
            # Drawing from an unordered receiver (s.pop()) yields an
            # order-dependent value.
            result |= self.element_of(base)
        return result

    # -- sinks ---------------------------------------------------------
    def check_sink_args(self, call: ast.Call, description: str,
                        payload_index: Optional[int],
                        arg_taints: List[Set[str]],
                        kw_taints: List[Tuple[Optional[str], Set[str]]],
                        ) -> None:
        checked: List[Set[str]] = []
        if payload_index is None:
            checked = arg_taints + [t for _, t in kw_taints]
        elif payload_index < len(arg_taints):
            checked = [arg_taints[payload_index]]
        else:
            checked = [t for _, t in kw_taints]
        for t in checked:
            kinds = T.concrete(t)
            for marker in T.markers(t):
                self._param_sinks.setdefault(marker, description)
            if kinds and not self.symbolic:
                self.report_sink(call, kinds, description)

    def report_sink(self, call: ast.Call, kinds: FrozenSet[str],
                    description: str) -> None:
        by_rule: Dict[str, List[str]] = {}
        for kind in sorted(kinds):
            rule = T.RULE_FOR_KIND[kind]
            by_rule.setdefault(rule, []).append(kind)
        for rule, rule_kinds in sorted(by_rule.items()):
            self.emit(
                call, rule,
                f"{'+'.join(rule_kinds)}-tainted value reaches "
                f"{description}; launder it (sorted(), seeded RNG, "
                "soc.timer virtual clock) or justify a suppression",
            )


#: Expression-dispatch table for :meth:`_FunctionInterp.eval`.
_EVAL = {
    ast.Name: _FunctionInterp._eval_name,
    ast.Constant: _FunctionInterp._eval_constant,
    ast.Attribute: _FunctionInterp._eval_attribute,
    ast.Subscript: _FunctionInterp._eval_subscript,
    ast.Call: _FunctionInterp.eval_call,
    ast.BinOp: _FunctionInterp._eval_binop,
    ast.BoolOp: _FunctionInterp._eval_boolop,
    ast.UnaryOp: _FunctionInterp._eval_unaryop,
    ast.Compare: _FunctionInterp._eval_compare,
    ast.IfExp: _FunctionInterp._eval_ifexp,
    ast.List: _FunctionInterp._eval_sequence,
    ast.Tuple: _FunctionInterp._eval_sequence,
    ast.Set: _FunctionInterp._eval_set,
    ast.Dict: _FunctionInterp._eval_dict,
    ast.ListComp: _FunctionInterp._eval_comp,
    ast.GeneratorExp: _FunctionInterp._eval_comp,
    ast.SetComp: _FunctionInterp._eval_setcomp,
    ast.DictComp: _FunctionInterp._eval_dictcomp,
    ast.JoinedStr: _FunctionInterp._eval_joinedstr,
    ast.FormattedValue: _FunctionInterp._eval_formatted,
    ast.Starred: _FunctionInterp._eval_starred,
    ast.Lambda: _FunctionInterp._eval_lambda,
    ast.Await: _FunctionInterp._eval_wrapped,
    ast.YieldFrom: _FunctionInterp._eval_wrapped,
    ast.Yield: _FunctionInterp._eval_yield,
    ast.NamedExpr: _FunctionInterp._eval_namedexpr,
    ast.Slice: _FunctionInterp._eval_slice,
}

#: Statement dispatch for :meth:`_FunctionInterp.exec_stmt` - same
#: rationale as ``_EVAL``: one dict hit replaces a 14-way isinstance
#: chain on the hottest interpreter paths.
_EXEC = {
    ast.Assign: _FunctionInterp._exec_assign,
    ast.AnnAssign: _FunctionInterp._exec_annassign,
    ast.AugAssign: _FunctionInterp._exec_augassign,
    ast.Expr: _FunctionInterp._exec_expr,
    ast.Return: _FunctionInterp._exec_return,
    ast.If: _FunctionInterp._exec_if,
    ast.For: _FunctionInterp._exec_for,
    ast.AsyncFor: _FunctionInterp._exec_for,
    ast.While: _FunctionInterp._exec_while,
    ast.With: _FunctionInterp._exec_with,
    ast.AsyncWith: _FunctionInterp._exec_with,
    ast.Try: _FunctionInterp._exec_try,
    ast.FunctionDef: _FunctionInterp._exec_funcdef,
    ast.AsyncFunctionDef: _FunctionInterp._exec_funcdef,
    ast.Raise: _FunctionInterp._exec_raise,
    ast.Assert: _FunctionInterp._exec_raise,
    ast.Delete: _FunctionInterp._exec_delete,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def analyze_modules(modules: List[ParsedModule]) -> List[Finding]:
    """Run both phases over parsed modules; returns raw (unsuppressed)
    taint + clock findings in deterministic order."""
    project = Project.build(modules)
    analysis = _Analysis(project)
    analysis.run_summaries()
    findings: List[Finding] = []
    for parsed in modules:
        findings.extend(analysis.report_module(parsed))
        findings.extend(check_clocks(parsed, project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _apply_suppressions(
    parsed_by_path: Dict[str, ParsedModule],
    findings: List[Finding],
) -> Tuple[List[Finding], int]:
    """Filter findings through justified ``bt-flow`` suppressions.

    An unjustified suppression comment suppresses nothing and adds a
    ``BAD-SUPPRESSION`` finding where it sits.
    """
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        parsed = parsed_by_path.get(finding.path)
        if parsed is None:
            kept.append(finding)
            continue
        table = parsed.suppressions(TOOL_TAG)
        covering = suppressed_at(finding.rule_id, finding.line, table)
        if covering is not None and covering.justification:
            suppressed += 1
        else:
            kept.append(finding)
    for path in sorted(parsed_by_path):
        parsed = parsed_by_path[path]
        for line, suppression in sorted(
                parsed.suppressions(TOOL_TAG).items()):
            if not suppression.justification:
                kept.append(Finding(
                    rule_id="BAD-SUPPRESSION", path=path, line=line,
                    col=0,
                    message=(
                        "bt-flow suppression without a justification; "
                        "append ' -- <why this is deterministic>'"
                    ),
                ))
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept, suppressed


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    cache: Optional[AstCache] = None,
) -> FlowReport:
    """Flow-analyze every ``.py`` file under ``paths``.

    Parsing shares the process-wide :class:`AstCache` with ``repro
    lint``, so running both tools parses each file once.

    Raises:
        AnalysisError: A path is missing, unreadable, or unparseable.
    """
    cache = cache if cache is not None else ast_cache()
    files = collect_files(Path(p) for p in paths)
    modules = [cache.get(f) for f in files]
    findings = analyze_modules(modules)
    parsed_by_path = {m.path: m for m in modules}
    kept, suppressed = _apply_suppressions(parsed_by_path, findings)
    return FlowReport(findings=kept, files_checked=len(modules),
                      suppressed=suppressed)


def analyze_source(source: str, path: str = "<string>") -> FlowReport:
    """Flow-analyze one in-memory module (test convenience)."""
    from repro.analysis.astcache import parse_module

    parsed = parse_module(source, path)
    findings = analyze_modules([parsed])
    kept, suppressed = _apply_suppressions({path: parsed}, findings)
    return FlowReport(findings=kept, files_checked=1,
                      suppressed=suppressed)
