"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestListing:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "pixel7a" in out
        assert "raspberry_pi5" in out
        assert "* = part of the paper's evaluation grid" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "alexnet-dense" in out
        assert "octree" in out


class TestProfile:
    def test_prints_table(self, capsys):
        code = main([
            "profile", "--platform", "jetson_orin_nano",
            "--app", "octree", "--repetitions", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "radix-tree" in out
        assert "gpu" in out

    def test_saves_table(self, tmp_path, capsys):
        path = tmp_path / "table.json"
        main([
            "profile", "--platform", "jetson_orin_nano",
            "--app", "octree", "--repetitions", "2",
            "--mode", "isolated", "--out", str(path),
        ])
        from repro.serialization import load

        table = load(path)
        assert table.mode == "isolated"
        assert table.platform == "jetson_orin_nano"

    def test_unknown_platform_structured_error(self, capsys):
        assert main(["profile", "--platform", "iphone15"]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "PlatformError"
        assert "iphone15" in err["message"]

    def test_unknown_app_structured_error(self, capsys):
        assert main(["profile", "--app", "resnet"]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "ReproError"
        assert "resnet" in err["message"]


class TestPlan:
    def test_plan_prints_summary(self, capsys, tmp_path):
        path = tmp_path / "schedule.json"
        code = main([
            "plan", "--platform", "jetson_orin_nano", "--app", "octree",
            "--repetitions", "2", "--k", "4", "--eval-tasks", "6",
            "--out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BetterTogether plan" in out
        from repro.serialization import load

        schedule = load(path)
        assert schedule.num_stages == 7


class TestBaselinesAndGantt:
    def test_baselines(self, capsys):
        code = main([
            "baselines", "--platform", "pixel7a", "--app", "octree",
            "--eval-tasks", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPU-only" in out and "GPU-only" in out

    def test_gantt(self, capsys):
        code = main([
            "gantt", "--platform", "jetson_orin_nano", "--app", "octree",
            "--repetitions", "2", "--k", "3", "--eval-tasks", "6",
            "--tasks", "4", "--width", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chunk 0" in out
        assert "ms" in out


class TestFaultsim:
    def test_recovery_report_and_json(self, capsys, tmp_path):
        path = tmp_path / "faults.json"
        code = main([
            "faultsim", "--platform", "jetson_orin_nano",
            "--app", "octree", "--repetitions", "2", "--k", "4",
            "--eval-tasks", "6", "--tasks", "5", "--seed", "1",
            "--out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "threaded phase" in out
        assert "fault/recovery report" in out
        assert "dropout phase" in out
        assert "fallback=True" in out
        import json

        structured = json.loads(path.read_text())
        assert structured["threaded"]["counts"].get("recovery")
        assert structured["dropout"]["counts"] == {"pu-dropout": 1,
                                                  "fallback": 1}

    def test_no_dropout_flag(self, capsys):
        code = main([
            "faultsim", "--platform", "raspberry_pi5", "--app",
            "octree", "--repetitions", "2", "--k", "3",
            "--eval-tasks", "6", "--tasks", "3",
            "--kernel-fault-rate", "0.0", "--no-dropout",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 faults planned" in out
        assert "no faults injected" in out
        assert "dropout phase" not in out


class TestRun:
    ARGS = ["run", "--platform", "jetson_orin_nano", "--app", "octree",
            "--repetitions", "2", "--k", "3", "--eval-tasks", "4"]

    def test_without_session_behaves_like_plan(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "BetterTogether plan" in out
        assert "campaign session" not in out

    def test_session_checkpoints_and_resumes(self, capsys, tmp_path):
        session = tmp_path / "campaign"
        assert main(self.ARGS + ["--session", str(session)]) == 0
        first = capsys.readouterr().out
        assert "0 reused, 14 measured" in first
        assert (session / "manifest.json").exists()
        assert (session / "schedule.json").exists()

        assert main(self.ARGS + ["--resume", str(session)]) == 0
        second = capsys.readouterr().out
        assert "14 reused, 0 measured" in second
        assert "optimization: reused" in second
        assert "3 reused, 0 run" in second

    def test_resume_missing_session_structured_error(self, capsys,
                                                     tmp_path):
        code = main(self.ARGS + ["--resume", str(tmp_path / "nope")])
        assert code == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "CampaignError"
        assert "no session manifest" in err["message"]

    def test_parameter_mismatch_structured_error(self, capsys, tmp_path):
        session = tmp_path / "campaign"
        assert main(self.ARGS + ["--session", str(session)]) == 0
        capsys.readouterr()
        changed = [arg if arg != "2" else "3" for arg in self.ARGS]
        assert main(changed + ["--session", str(session)]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "CampaignError"
        assert "repetitions" in err["message"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestAnalyze:
    def test_analyze_prints_all_sections(self, capsys):
        code = main([
            "analyze", "--platform", "jetson_orin_nano", "--app",
            "octree", "--repetitions", "2", "--k", "4",
            "--eval-tasks", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PU affinities" in out
        assert "speedup ceiling" in out
        assert "bottleneck" in out
        assert "MiB" in out


class TestListingJson:
    def test_platforms_json(self, capsys):
        assert main(["platforms", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [row["name"] for row in payload["platforms"]]
        assert "pixel7a" in names
        pixel = next(r for r in payload["platforms"]
                     if r["name"] == "pixel7a")
        assert pixel["paper_grid"] is True
        assert "gpu" in pixel["schedulable_classes"]

    def test_apps_json(self, capsys):
        assert main(["apps", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        octree = next(r for r in payload["applications"]
                      if r["name"] == "octree")
        assert octree["stages"] >= 2
        assert octree["input_kind"]

    def test_listing_out_uses_the_report_sink(self, tmp_path, capsys):
        path = tmp_path / "platforms.json"
        assert main(["platforms", "--out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert {row["name"] for row in payload["platforms"]} >= {
            "pixel7a", "raspberry_pi5"
        }


class TestServe:
    def test_soak_serves_and_rejects(self, capsys, tmp_path):
        path = tmp_path / "serve.json"
        code = main([
            "serve", "--windows", "8", "--tasks", "6",
            "--out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant-drift" in out
        assert "rejected" in out
        payload = json.loads(path.read_text())
        assert payload["tenants"]["tenant-probe"]["status"] == "rejected"
        assert payload["tenants"]["tenant-drift"]["reschedules"] >= 1

    def test_gantt_renders_tenant_sections(self, capsys):
        code = main([
            "serve", "--windows", "8", "--tasks", "6",
            "--gantt", "--width", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant tenant-drift:" in out
        assert "tenant tenant-gpu:" in out

    def test_too_few_windows_structured_error(self, capsys):
        assert main(["serve", "--windows", "4"]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "ServeError"
        assert "8 windows" in err["message"]

    def test_json_mode_stdout_is_pure_json(self, capsys):
        # The whole point of the text sink: --json must never mix the
        # human summary (or gantt) into the machine-readable stream.
        code = main([
            "serve", "--windows", "8", "--tasks", "6",
            "--json", "--gantt",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # raises if any stray line leaked
        assert payload["tenants"]["tenant-probe"]["status"] == "rejected"
        assert "tenant tenant-drift:" in payload["gantt"]

    def test_trace_out_exports_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "soak_trace.json"
        code = main([
            "serve", "--windows", "8", "--tasks", "6",
            "--trace-out", str(path),
        ])
        assert code == 0
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        categories = {e.get("cat") for e in trace["traceEvents"]}
        assert {"profiler", "solver", "runtime", "serve"} <= categories
        assert trace["otherData"]["metrics"]["counters"]

    def test_trace_out_report_carries_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        code = main([
            "serve", "--windows", "8", "--tasks", "6",
            "--trace-out", str(trace_path), "--out", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["metrics"]["counters"]["admission.admits"] >= 1


class TestFleet:
    def test_soak_recovers_from_all_three_failures(
        self, capsys, tmp_path
    ):
        path = tmp_path / "fleet.json"
        code = main(["fleet", "--out", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet of 4 shards" in out
        assert "failover" in out
        payload = json.loads(path.read_text())
        assert payload["counts"]["failover"] == 3
        assert payload["surviving_tenants"] >= 11
        statuses = {t["status"]
                    for t in payload["tenants"].values()}
        assert statuses <= {"completed", "shed"}
        assert isinstance(payload["surviving_p95_slowdown"], float)
        assert payload["shards"]["soc1"]["generation"] == 2

    def test_json_mode_stdout_is_pure_json(self, capsys):
        code = main(["fleet", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failover_enabled"] is True
        assert payload["n_shards"] == 4

    def test_no_failover_baseline_strands_tenants(self, capsys):
        code = main(["fleet", "--no-failover", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failover_enabled"] is False
        assert "failover" not in payload["counts"]
        assert any(t["status"] == "failed"
                   for t in payload["tenants"].values())

    def test_trace_out_exports_chrome_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "fleet_trace.json"
        report_path = tmp_path / "fleet.json"
        code = main([
            "fleet", "--trace-out", str(trace_path),
            "--out", str(report_path),
        ])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        categories = {e.get("cat") for e in trace["traceEvents"]}
        assert {"fleet", "serve"} <= categories
        report = json.loads(report_path.read_text())
        counters = report["metrics"]["counters"]
        assert counters["fleet.failovers"] == 3
        assert counters["breaker.transitions"] >= 3

    def test_scenario_validation_is_structured(self, capsys):
        assert main(["fleet", "--shards", "2"]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "FleetError"
        assert "4" in err["message"]


class TestTrace:
    def test_offline_trace_prints_chrome_json(self, capsys):
        code = main([
            "trace", "--repetitions", "2", "--k", "4",
            "--eval-tasks", "4", "--tasks", "4",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        categories = {e.get("cat") for e in payload["traceEvents"]}
        assert {"profiler", "solver", "runtime"} <= categories

    def test_serve_trace_writes_file(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main([
            "trace", "--serve", "--windows", "8", "--tasks", "6",
            "--export", "perfetto", "--out", str(path),
        ])
        assert code == 0
        assert capsys.readouterr().out == ""  # file mode: clean stdout
        trace = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_gantt_export(self, capsys):
        code = main([
            "trace", "--serve", "--windows", "8", "--tasks", "6",
            "--export", "gantt", "--width", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant tenant-drift:" in out


class TestSubmit:
    def test_submission_completes_under_contention(self, capsys):
        code = main([
            "submit", "--app", "octree", "--co", "1",
            "--windows", "3", "--require", "gpu",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "outcome: completed" in out
        assert "gpu" in out


class TestTraffic:
    SMALL = ["--ticks", "10", "--shards", "1", "--multiplier", "1.0"]

    def test_generate_records_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main([
            "traffic", "generate", *self.SMALL,
            "--trace-out", str(path), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["arrivals"] > 0
        assert payload["offered_windows"] > 0
        assert set(payload["by_tier"]) <= {"gold", "silver", "bronze"}
        assert json.loads(path.read_text())["kind"] == "traffic_trace"

    def test_replay_reproduces_soak_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        live = tmp_path / "live.json"
        replayed = tmp_path / "replayed.json"
        assert main([
            "traffic", "soak", *self.SMALL,
            "--trace-out", str(trace), "--out", str(live),
        ]) == 0
        assert main([
            "traffic", "replay", *self.SMALL,
            "--trace", str(trace), "--out", str(replayed),
        ]) == 0
        capsys.readouterr()
        assert live.read_bytes() == replayed.read_bytes()

    def test_replay_without_trace_is_structured_error(self, capsys):
        assert main(["traffic", "replay", *self.SMALL]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "ReproError"
        assert "--trace" in err["message"]

    def test_soak_human_output(self, capsys):
        code = main(["traffic", "soak", *self.SMALL])
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop run" in out
        assert "tiers:" in out

    def test_default_soak_compare_passes_gate(self, capsys):
        # The shipped overload scenario: admission control must
        # strictly beat admit-everything on goodput.
        code = main(["traffic", "soak", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "admission gate" in out
        assert "PASS" in out

    def test_curve_sweeps_load(self, capsys):
        code = main([
            "traffic", "soak", *self.SMALL, "--curve", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        multipliers = [p["load_multiplier"] for p in payload["curve"]]
        assert multipliers == [0.5, 1.0, 1.5, 2.0]
