"""Execution traces and ASCII Gantt rendering for simulated runs.

The BT-Implementer is "a rigorous empirical tool for exploring and
evaluating pipeline schedules" (paper section 1.1); being able to *see*
a pipeline's overlap - which chunk stalls, where the bubble is - is half
of that.  The simulator optionally records one :class:`Span` per
(chunk, task) execution; :func:`format_gantt` renders the spans as a
terminal Gantt chart, one row per chunk.

Spans optionally carry a tenant/job id (multi-tenant serving,
:mod:`repro.serve`); tagged traces render as one Gantt section per
tenant on a shared time axis, so cross-tenant interference windows
line up visually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Span:
    """One chunk's processing of one task, in virtual time.

    ``tenant`` is ``None`` for single-workload runs; the serving layer
    stamps each tenant's spans with its job id so interleaved traces
    remain separable.
    """

    chunk_index: int
    pu_class: str
    task_id: int
    start_s: float
    end_s: float
    tenant: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def record_span(chunk_index: int, pu_class: str, task_id: int,
                start_s: float, end_s: float,
                tenant: Optional[str] = None) -> Span:
    """The sanctioned :class:`Span` constructor.

    All span emission goes through here (or the tracer API in
    :mod:`repro.obs`); the ``UNTAGGED-SPAN`` lint rule flags direct
    ``Span(...)`` construction elsewhere, so spans cannot bypass the
    unified observability layer.
    """
    return Span(chunk_index=chunk_index, pu_class=pu_class,
                task_id=task_id, start_s=start_s, end_s=end_s,
                tenant=tenant)


def _chunk_rows(spans: Sequence[Span], t_end: float,
                width: int) -> List[str]:
    """One Gantt row per (chunk, PU) present in ``spans``."""
    chunks = sorted({(s.chunk_index, s.pu_class) for s in spans})
    lines: List[str] = []
    for chunk_index, pu_class in chunks:
        row = [" "] * width
        for span in spans:
            if span.chunk_index != chunk_index:
                continue
            # Half-open column interval.  Dividing by t_end *before*
            # scaling keeps the right edge exact (x/x*w == w in IEEE,
            # whereas x*(w/x) can land at w-ulp), so a sub-column span
            # widened to one cell before clamping maps to the empty
            # interval [width, width) at the right edge and draws
            # nothing instead of overwriting the last cell; clamping
            # afterwards means pathological coordinates never wrap the
            # row.
            lo = int(span.start_s / t_end * width)
            hi = int(span.end_s / t_end * width)
            if hi <= lo:
                hi = lo + 1
            lo = max(lo, 0)
            hi = min(hi, width)
            glyph = format(span.task_id % 16, "x")
            for col in range(lo, hi):
                row[col] = glyph
        label = f"chunk {chunk_index} {pu_class:7s}"
        lines.append(f"{label} |{''.join(row)}|")
    return lines


def format_gantt(spans: Sequence[Span], width: int = 72) -> str:
    """Render spans as an ASCII Gantt chart.

    One row per chunk; each task's span is drawn with the last hex digit
    of its task id, so the pipeline diagonal is visible:

        chunk 0 big    00111222333...
        chunk 1 gpu    ..0011122233...

    When the spans carry tenant ids (multi-tenant traces), each tenant
    gets its own titled section; every section shares one time axis so
    co-run intervals align across tenants.
    """
    if not spans:
        return "(empty trace)"
    t_end = max(span.end_s for span in spans)
    if t_end <= 0:
        return "(zero-length trace)"
    tenants = {span.tenant for span in spans}
    lines: List[str] = []
    if tenants == {None}:
        lines.extend(_chunk_rows(spans, t_end, width))
    else:
        # Named tenants in sorted order; untagged spans last.
        ordered = sorted(t for t in tenants if t is not None)
        if None in tenants:
            ordered.append(None)
        for tenant in ordered:
            label = tenant if tenant is not None else "(untagged)"
            lines.append(f"tenant {label}:")
            lines.extend(_chunk_rows(
                [s for s in spans if s.tenant == tenant], t_end, width
            ))
    # Right-align the end-time label with the closing "|"; the pad
    # clamps at zero so narrow charts degrade instead of crashing on a
    # negative field width.
    end_label = f"{t_end * 1e3:.2f} ms"
    pad = max(width - len(end_label), 0)
    lines.append(f"{'':16s} 0{'':{pad}s}{end_label}")
    return "\n".join(lines)


def pipeline_bubbles(spans: Sequence[Span]) -> dict:
    """Idle fraction per chunk between its first and last span - the
    'bubble' a scheduler wants to minimize."""
    out = {}
    by_chunk: dict = {}
    for span in spans:
        by_chunk.setdefault(span.chunk_index, []).append(span)
    for chunk_index, chunk_spans in by_chunk.items():
        chunk_spans.sort(key=lambda s: s.start_s)
        first = chunk_spans[0].start_s
        last = chunk_spans[-1].end_s
        busy = sum(s.duration_s for s in chunk_spans)
        window = last - first
        out[chunk_index] = 0.0 if window <= 0 else 1.0 - busy / window
    return out
