"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at full
(paper) scale, times the regeneration with pytest-benchmark, prints the
rendered artifact, and asserts the paper's *shape* (who wins, by roughly
what factor, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only
"""

import os
import sys

import pytest

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.eval.experiments import ExperimentScale  # noqa: E402


@pytest.fixture(scope="session")
def paper_scale():
    """The paper's configuration: 100k points, batch 128, K=20, 30 reps."""
    return ExperimentScale.paper()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single timed round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
