"""Traffic overload benchmark: admission control's worth at 1.5x load.

Not a paper artifact - the traffic layer is this repository's
open-loop serving extension - but measured the paper's way: the
identical seeded overload scenario with the mechanism on and off,
compared on the statistic the mechanism is accountable for.  Admission
control serves strictly *fewer* windows than admit-everything; what it
buys is that the windows it does serve stay inside their tier SLOs, so
goodput (SLO-attaining window-tasks) must strictly favour it.  The
goodput-vs-offered-load curve is written to ``BENCH_traffic.json`` at
the repo root - the trajectory CI uploads so each PR shows its delta.
"""

import os

from benchmarks.conftest import run_once
from repro.eval.metrics import format_table
from repro.serialization import write_json_report
from repro.traffic import (
    FleetOverloadScenario,
    overload_curve,
    run_overload_soak,
)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_traffic.json",
)


def test_admission_vs_admit_everything(benchmark):
    scenario = FleetOverloadScenario()

    def evaluate():
        _, with_admission = run_overload_soak(scenario, admission=True)
        _, admit_all = run_overload_soak(scenario, admission=False)
        curve = overload_curve(scenario, admission=True)
        return with_admission, admit_all, curve

    with_admission, admit_all, curve = run_once(benchmark, evaluate)

    rows = [["", "admission on", "admit everything"]]
    for label, pick in [
        ("served windows", lambda r: r.served_windows),
        ("goodput windows", lambda r: r.goodput_windows),
        ("goodput tasks", lambda r: r.goodput_tasks),
        ("rejected tenants", lambda r: r.rejected),
        ("gold attainment",
         lambda r: f"{r.tiers['gold'].attainment:.3f}"),
    ]:
        rows.append([label, str(pick(with_admission)),
                     str(pick(admit_all))])
    print("\n" + format_table(rows))

    write_json_report(BENCH_PATH, {
        "benchmark": "traffic_overload",
        "scenario": {
            "seed": scenario.seed,
            "n_shards": scenario.n_shards,
            "ticks": scenario.ticks,
            "load_multiplier": scenario.load_multiplier,
        },
        "admission_on": {
            "served_windows": with_admission.served_windows,
            "goodput_tasks": with_admission.goodput_tasks,
        },
        "admit_everything": {
            "served_windows": admit_all.served_windows,
            "goodput_tasks": admit_all.goodput_tasks,
        },
        "goodput_curve": curve,
    })

    # Admit-everything wins on raw throughput...
    assert admit_all.served_windows > with_admission.served_windows
    # ...admission control wins on what the fleet actually sells.
    assert with_admission.goodput_tasks > admit_all.goodput_tasks
    # Graceful degradation: goodput plateaus past saturation instead
    # of collapsing.
    goodput = [p["goodput_tasks"] for p in curve]
    assert goodput[0] < goodput[1] < goodput[2]
    assert goodput[3] >= 0.85 * goodput[2]
