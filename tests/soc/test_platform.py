"""Tests for Platform and the four calibrated device definitions."""

import pytest

from repro.errors import PlatformError
from repro.soc import (
    PLATFORM_NAMES,
    WorkProfile,
    all_platforms,
    get_platform,
)
from repro.soc.pu import BIG, GPU, LITTLE, MEDIUM


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def oneplus():
    return get_platform("oneplus11")


@pytest.fixture(scope="module")
def jetson():
    return get_platform("jetson_orin_nano")


def dense_work():
    return WorkProfile(
        flops=200e6, bytes_moved=5e6, parallelism=1e6,
        cpu_efficiency=0.2, gpu_efficiency=0.5,
    )


def irregular_work():
    return WorkProfile(
        flops=5e6, bytes_moved=8e6, parallelism=5e4,
        divergence=0.8, irregularity=0.9,
    )


class TestRegistry:
    def test_four_platforms(self):
        assert len(PLATFORM_NAMES) == 4
        assert len(all_platforms()) == 4

    def test_unknown_platform(self):
        with pytest.raises(PlatformError):
            get_platform("iphone")

    def test_platforms_are_freshly_built(self):
        assert get_platform("pixel7a") is not get_platform("pixel7a")


class TestTopology:
    def test_pixel_has_three_cpu_tiers_and_gpu(self, pixel):
        assert set(pixel.pu_classes()) == {BIG, MEDIUM, LITTLE, GPU}
        assert set(pixel.schedulable_classes()) == {BIG, MEDIUM, LITTLE, GPU}

    def test_oneplus_little_not_schedulable(self, oneplus):
        assert LITTLE in oneplus.pu_classes()
        assert LITTLE not in oneplus.schedulable_classes()
        assert set(oneplus.schedulable_classes()) == {BIG, MEDIUM, GPU}

    def test_oneplus_pinnable_core_count(self, oneplus):
        assert oneplus.affinity.total_cores() == 8
        assert oneplus.affinity.pinnable_cores() == 5

    def test_jetson_two_classes(self, jetson):
        assert set(jetson.pu_classes()) == {BIG, GPU}

    def test_unknown_pu_class_rejected(self, jetson):
        with pytest.raises(PlatformError):
            jetson.pu(MEDIUM)

    def test_num_other_pus(self, pixel, jetson):
        assert pixel.num_other_pus(GPU) == 3
        assert jetson.num_other_pus(GPU) == 1


class TestGroundTruthTiming:
    def test_isolated_time_positive(self, pixel):
        for pu_class in pixel.pu_classes():
            assert pixel.isolated_time(dense_work(), pu_class) > 0

    def test_true_time_isolated_matches(self, pixel):
        t_iso = pixel.isolated_time(dense_work(), BIG)
        t_true = pixel.true_time(dense_work(), BIG, co_load=0.0)
        assert t_true == pytest.approx(t_iso)

    def test_pixel_cpu_slows_under_load(self, pixel):
        t_iso = pixel.true_time(dense_work(), BIG, co_load=0.0)
        t_loaded = pixel.true_time(
            dense_work(), BIG, co_load=1.0, other_demand_gbps=25.0
        )
        assert t_loaded > t_iso

    def test_pixel_gpu_boosts_under_load(self, pixel):
        compute_bound = WorkProfile(
            flops=500e6, bytes_moved=1e6, parallelism=1e6,
            gpu_efficiency=0.5,
        )
        t_iso = pixel.true_time(compute_bound, GPU, co_load=0.0)
        t_loaded = pixel.true_time(compute_bound, GPU, co_load=1.0)
        assert t_loaded < t_iso

    def test_dense_work_prefers_gpu_on_all_platforms(self):
        for platform in all_platforms():
            cpu_t = platform.isolated_time(dense_work(), BIG)
            gpu_t = platform.isolated_time(dense_work(), GPU)
            assert gpu_t < cpu_t, platform.name

    def test_irregular_work_prefers_big_cpu_on_mobile(self, pixel, oneplus):
        for platform in (pixel, oneplus):
            cpu_t = platform.isolated_time(irregular_work(), BIG)
            gpu_t = platform.isolated_time(irregular_work(), GPU)
            assert cpu_t < gpu_t, platform.name

    def test_overhead_not_scaled_by_interference(self, pixel):
        tiny = WorkProfile(flops=1.0, bytes_moved=1.0, parallelism=1.0)
        t_iso = pixel.true_time(tiny, GPU, co_load=0.0)
        t_loaded = pixel.true_time(tiny, GPU, co_load=1.0)
        # Launch-overhead dominated: interference barely matters.
        assert t_loaded == pytest.approx(t_iso, rel=0.05)


class TestMeasurement:
    def test_measurement_noise_deterministic(self, pixel):
        rng1 = pixel.measurement_rng("stage", BIG, 0)
        rng2 = pixel.measurement_rng("stage", BIG, 0)
        assert pixel.measure(1.0, rng1) == pixel.measure(1.0, rng2)

    def test_different_keys_differ(self, pixel):
        rng1 = pixel.measurement_rng("stage", BIG, 0)
        rng2 = pixel.measurement_rng("stage", BIG, 1)
        assert pixel.measure(1.0, rng1) != pixel.measure(1.0, rng2)

    def test_noise_is_small(self, pixel):
        rng = pixel.measurement_rng("noise-check")
        samples = [pixel.measure(1.0, rng) for _ in range(200)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(1.0, rel=0.02)

    def test_describe_mentions_gpu(self, pixel):
        assert "Mali" in pixel.describe()
