"""Prior-work performance-modeling flows (paper Fig. 5b / 5c, Fig. 6b).

Two comparison pipelines isolate BetterTogether's two ideas:

* :func:`latency_only_candidates` (Fig. 5b) keeps the interference-aware
  profiling table but drops the utilization (gapness) filter: the solver
  minimizes predicted latency directly.  Its top schedules may idle PUs,
  so the co-run conditions no longer match the ones the table was
  collected under.
* :func:`isolated_latency_only_candidates` (Fig. 5c) is the standard
  prior-work recipe ([3], [4], [11], [17] in the paper): profile each PU
  in isolation, compose the numbers, minimize predicted latency.  This is
  the flow whose predictions were ~57% off in the paper's motivating
  example.

Both return candidates in the optimizer's format so the evaluation can
feed them through the same measurement and correlation machinery.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.optimizer import (
    DEFAULT_K,
    BTOptimizer,
    OptimizationResult,
)
from repro.core.profiler import ISOLATED, BTProfiler, ProfilingTable
from repro.core.stage import Application
from repro.errors import ProfilingError
from repro.soc.platform import Platform


def latency_only_candidates(
    application: Application,
    table: ProfilingTable,
    pu_classes: Optional[Sequence[str]] = None,
    k: int = DEFAULT_K,
) -> OptimizationResult:
    """Minimize predicted latency with NO utilization filter.

    Implemented as the BetterTogether optimizer with an infinite gapness
    slack, which makes the level-1 threshold vacuous while preserving the
    constraint encoding (C1, C2) and the blocking-clause enumeration (C5).
    """
    optimizer = BTOptimizer(
        application,
        table,
        pu_classes=pu_classes,
        k=k,
        gap_slack=math.inf,
    )
    return optimizer.optimize()


def isolated_latency_only_candidates(
    application: Application,
    platform: Platform,
    k: int = DEFAULT_K,
    repetitions: int = 30,
    table: Optional[ProfilingTable] = None,
) -> OptimizationResult:
    """The full prior-work flow: isolated table + latency-only solve.

    Args:
        table: Pass a pre-collected *isolated* table to skip re-profiling;
            must have been collected in isolated mode.
    """
    if table is None:
        table = BTProfiler(platform, repetitions=repetitions).profile(
            application, mode=ISOLATED
        )
    elif table.mode != ISOLATED:
        raise ProfilingError(
            f"expected an isolated table, got mode {table.mode!r}"
        )
    return latency_only_candidates(
        application,
        table.restricted(platform.schedulable_classes()),
        k=k,
    )
