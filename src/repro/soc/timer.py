"""Virtual high-resolution timers with deterministic measurement noise.

The paper measures latency with the ARM generic timer (``cntvct_el0``) on
the host and CUDA events / Vulkan timestamp queries on the device, then
averages 30 repetitions to suppress noise (section 3.2).  Our virtual SoC
reproduces the *statistics* of that process: every measurement of a true
duration is perturbed by multiplicative lognormal noise drawn from a
deterministic, stream-keyed RNG, so experiments are reproducible bit-for-bit
while still exhibiting realistic run-to-run variation.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, List

import numpy as np

from repro.errors import PlatformError


def _stable_seed(*parts: object) -> int:
    """A 64-bit seed derived deterministically from arbitrary key parts.

    ``hash()`` is randomized per interpreter run, so we use blake2b.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"), digest_size=8
    )
    return int.from_bytes(digest.digest(), "little")


class MeasurementNoise:
    """Keyed multiplicative lognormal noise source.

    Args:
        sigma: Lognormal shape parameter; ~0.02 gives the few-percent
            run-to-run jitter typical of a quiesced Android device.
        seed: Root seed; all streams derive from it.
    """

    def __init__(self, sigma: float = 0.02, seed: int = 0):
        if sigma < 0:
            raise PlatformError("noise sigma must be non-negative")
        self.sigma = sigma
        self.seed = seed

    def rng(self, *key: object) -> np.random.Generator:
        """A fresh deterministic generator for a measurement stream."""
        return np.random.default_rng(_stable_seed(self.seed, *key))

    def perturb(self, true_seconds: float, rng: np.random.Generator) -> float:
        """One noisy observation of a true duration."""
        if true_seconds < 0:
            raise PlatformError("durations cannot be negative")
        if self.sigma == 0.0:
            return true_seconds
        # Mean-one lognormal so averaging many reps converges to truth.
        draw = rng.lognormal(mean=-0.5 * self.sigma**2, sigma=self.sigma)
        return true_seconds * draw


class VirtualTimer:
    """A monotonically increasing virtual clock (``cntvct_el0`` stand-in).

    The discrete-event simulator advances this clock; dispatcher code reads
    it exactly the way the paper's instrumentation reads the hardware
    counter.
    """

    #: Virtual counter frequency, matching ARM's common 19.2 MHz generic
    #: timer tick converted up to nanosecond bookkeeping.
    TICKS_PER_SECOND = 1_000_000_000

    def __init__(self) -> None:
        self._now_s = 0.0

    @property
    def now_s(self) -> float:
        return self._now_s

    @property
    def ticks(self) -> int:
        return int(round(self._now_s * self.TICKS_PER_SECOND))

    def advance(self, seconds: float) -> None:
        """Move the clock forward by a duration."""
        if seconds < 0:
            raise PlatformError("cannot advance a timer backwards")
        if not math.isfinite(seconds):
            raise PlatformError("cannot advance a timer by a non-finite amount")
        self._now_s += seconds

    def advance_to(self, timestamp_s: float) -> None:
        """Move the clock forward to an absolute timestamp."""
        if timestamp_s < self._now_s:
            raise PlatformError(
                f"cannot rewind timer from {self._now_s} to {timestamp_s}"
            )
        self._now_s = timestamp_s


def mean_of_measurements(samples: Iterable[float]) -> float:
    """Average repeated measurements (the paper uses 30 reps)."""
    values: List[float] = list(samples)
    if not values:
        raise PlatformError("cannot average zero measurements")
    return sum(values) / len(values)
