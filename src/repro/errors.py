"""Exception hierarchy for the BetterTogether reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary.  Subpackages raise the most specific
subclass that applies.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence


class ReproError(Exception):
    """Base class for every error raised by this library."""

    def payload(self) -> Dict[str, Any]:
        """Structured error envelope for CLI / JSON consumers.

        Every ``repro`` subcommand prints this one-line object to
        stderr and exits 2 on error, so drivers distinguish *tool
        failure* (2) from *findings under --strict* (1) without
        scraping tracebacks.
        """
        return {"error": type(self).__name__, "message": str(self)}


class SolverError(ReproError):
    """Base class for constraint-solver errors."""


class InfeasibleError(SolverError):
    """Raised when a constraint model has no satisfying assignment."""


class SolverTimeoutError(SolverError):
    """Raised when the solver exhausts its node or time budget."""


class ModellingError(SolverError):
    """Raised for ill-formed constraint models (e.g. unknown variables)."""


class PlatformError(ReproError):
    """Raised for invalid platform specifications or unknown platforms."""


class CampaignError(ReproError):
    """Raised when a checkpointed campaign session cannot proceed
    (mismatched manifest, incompatible resume parameters...)."""


class KernelError(ReproError):
    """Raised when a compute kernel is misused (bad shapes, backends...)."""


class SchedulingError(ReproError):
    """Raised when a schedule is malformed or cannot be constructed."""


class ScheduleValidationError(SchedulingError):
    """A schedule violates one of the model constraints (C1, C2, C3a,
    C3b) or references an unavailable PU class.

    ``constraint`` names the violated rule (``"C1"``, ``"C2"``,
    ``"C3a"``, ``"C3b"`` or ``"availability"``) so callers - and tests -
    can tell the failure modes apart without parsing the message.
    """

    def __init__(self, constraint: str, message: str):
        super().__init__(f"[{constraint}] {message}")
        self.constraint = constraint


class ProfilingError(ReproError):
    """Raised when profiling inputs are inconsistent."""


class ServeError(ReproError):
    """Raised by the online serving layer (:mod:`repro.serve`) for
    invalid tenant specs, placement invariant violations (cross-tenant
    PU oversubscription), and misuse of the server lifecycle."""


class FleetError(ReproError):
    """Raised by the fleet layer (:mod:`repro.fleet`) for invalid
    chaos schedules, shard lifecycle misuse, and fleet configuration
    errors."""


class TrafficError(ReproError):
    """Raised by the workload layer (:mod:`repro.traffic`) for invalid
    traffic specs, malformed traces, and open-loop driver misuse.

    ``flight_tail`` carries the observability flight recorder's last
    events at the moment of the failure (empty when the recorder is
    disabled), mirroring ``StallError``/``FaultReport`` so overload
    aborts keep their pre-crash context.
    """

    def __init__(self, message: str,
                 flight_tail: Sequence[Dict[str, Any]] = ()):
        super().__init__(message)
        self.flight_tail = tuple(dict(e) for e in flight_tail)

    def diagnostic(self) -> str:
        """Message plus the flight-recorder tail, one event per line."""
        lines = [str(self)]
        for entry in self.flight_tail:
            fields = " ".join(
                f"{k}={entry[k]}" for k in entry if k not in ("seq", "kind")
            )
            lines.append(f"  [{entry.get('seq')}] {entry.get('kind')}"
                         f" {fields}".rstrip())
        return "\n".join(lines)


class AnalysisError(ReproError):
    """Raised when the correctness tooling (``repro lint`` /
    ``repro race``) is misused: missing lint targets, unparseable
    sources, unknown rule ids."""


class PipelineError(ReproError):
    """Raised by the runtime when pipeline execution fails."""


class QueueClosedError(PipelineError):
    """Raised when pushing to / popping from a closed SPSC queue."""


class StallError(PipelineError):
    """A dispatch exceeded the watchdog's stall deadline and was
    cancelled.

    Deliberately *not* retryable: retrying a wedged kernel stalls
    again, so the runtime routes the task straight into quarantine
    (or unwinds when failure isolation is off).

    ``flight_tail`` carries the observability flight recorder's last
    events at the moment of cancellation (empty when the recorder is
    disabled), so a postmortem sees what led up to the stall.
    """

    def __init__(self, message: str,
                 flight_tail: Sequence[Dict[str, Any]] = ()):
        super().__init__(message)
        self.flight_tail = tuple(dict(e) for e in flight_tail)

    def diagnostic(self) -> str:
        """Message plus the flight-recorder tail, one event per line."""
        lines = [str(self)]
        for entry in self.flight_tail:
            fields = " ".join(
                f"{k}={entry[k]}" for k in entry if k not in ("seq", "kind")
            )
            lines.append(f"  [{entry.get('seq')}] {entry.get('kind')}"
                         f" {fields}".rstrip())
        return "\n".join(lines)


class TransientKernelFault(PipelineError):
    """A kernel dispatch failed in a way that may succeed on retry.

    Raised by the fault-injection layer (and usable by real kernels) to
    mark a failure as retryable; the runtime's retry policy only ever
    re-dispatches, never re-profiles.
    """


class PuFailureError(PipelineError):
    """A processing unit dropped out permanently mid-run.

    Not retryable: recovery means re-scheduling onto the surviving PUs
    (see :meth:`repro.runtime.adaptive.AdaptivePipeline.mark_pu_failed`).
    """

    def __init__(self, pu_class: str, message: str = ""):
        super().__init__(
            message or f"PU class {pu_class!r} failed permanently"
        )
        self.pu_class = pu_class
