"""Declarative constraint model, mirroring the slice of the z3 API the
paper's formulation needs (section 3.3).

Typical use::

    model = Model()
    x = {(i, c): model.new_bool(f"x_{i}_{c}") for i in stages for c in pus}
    for i in stages:
        model.add_exactly_one([x[i, c] for c in pus])
    ...
    solution = Solver(model).solve()

The model is purely declarative; solving lives in
:mod:`repro.solver.search`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import ModellingError
from repro.solver.constraints import (
    AtMostOne,
    Clause,
    Constraint,
    ExactlyOne,
    LinearGE,
    LinearLE,
    implication,
)
from repro.solver.literals import BoolVar, Literal, as_literal


class Solution:
    """A complete satisfying assignment.

    Supports lookup by :class:`BoolVar` or by variable name.
    """

    def __init__(self, values: Mapping[int, int], by_name: Mapping[str, int]):
        self._values = dict(values)
        self._by_name = dict(by_name)

    def value(self, var: "BoolVar | str") -> bool:
        """The boolean value assigned to ``var`` (a variable or its name)."""
        if isinstance(var, BoolVar):
            return bool(self._values[var.index])
        if isinstance(var, str):
            return bool(self._values[self._by_name[var]])
        raise TypeError(f"expected BoolVar or str, got {type(var).__name__}")

    def __getitem__(self, var: "BoolVar | str") -> bool:
        return self.value(var)

    def true_variables(self) -> List[str]:
        """Names of all variables assigned true, sorted."""
        return sorted(
            name for name, index in self._by_name.items() if self._values[index]
        )

    def as_dict(self) -> Dict[str, bool]:
        """Full name -> value mapping."""
        return {
            name: bool(self._values[index])
            for name, index in self._by_name.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Solution({self.true_variables()})"


class Model:
    """A set of boolean variables plus constraints over them."""

    def __init__(self) -> None:
        self._variables: List[BoolVar] = []
        self._by_name: Dict[str, int] = {}
        self._constraints: List[Constraint] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def new_bool(self, name: str) -> BoolVar:
        """Create a fresh boolean variable with a unique name."""
        if name in self._by_name:
            raise ModellingError(f"duplicate variable name: {name!r}")
        var = BoolVar(index=len(self._variables), name=name)
        self._variables.append(var)
        self._by_name[name] = var.index
        return var

    def variable(self, name: str) -> BoolVar:
        """Look up an existing variable by name."""
        try:
            return self._variables[self._by_name[name]]
        except KeyError:
            raise ModellingError(f"unknown variable: {name!r}") from None

    @property
    def variables(self) -> Sequence[BoolVar]:
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    def _check_owned(self, constraint: Constraint) -> None:
        for var in constraint.variables():
            if (
                var.index >= len(self._variables)
                or self._variables[var.index] is not var
            ):
                raise ModellingError(
                    f"variable {var.name!r} does not belong to this model"
                )

    def add(self, constraint: Constraint) -> Constraint:
        """Add an already-built constraint object."""
        self._check_owned(constraint)
        self._constraints.append(constraint)
        return constraint

    def add_clause(self, literals: Iterable["BoolVar | Literal"]) -> Constraint:
        """At least one of ``literals`` must hold."""
        return self.add(Clause(literals))

    def add_exactly_one(
        self, literals: Iterable["BoolVar | Literal"]
    ) -> Constraint:
        """Exactly one of ``literals`` must hold (constraint C1)."""
        return self.add(ExactlyOne(literals))

    def add_at_most_one(
        self, literals: Iterable["BoolVar | Literal"]
    ) -> Constraint:
        """At most one of ``literals`` may hold."""
        return self.add(AtMostOne(literals))

    def add_implication(
        self,
        antecedents: Iterable["BoolVar | Literal"],
        consequent: "BoolVar | Literal",
    ) -> Constraint:
        """``(a1 & a2 & ...) => c`` (constraint C2 shape)."""
        return self.add(implication(antecedents, consequent))

    def add_linear_le(
        self,
        terms: Iterable[Tuple["BoolVar | Literal", float]],
        bound: float,
    ) -> Constraint:
        """``sum(w_i * lit_i) <= bound`` (C3a / blocking clauses C5)."""
        return self.add(LinearLE(terms, bound))

    def add_linear_ge(
        self,
        terms: Iterable[Tuple["BoolVar | Literal", float]],
        bound: float,
    ) -> Constraint:
        """``sum(w_i * lit_i) >= bound`` (C3b shape)."""
        return self.add(LinearGE(terms, bound))

    def forbid_assignment(
        self, true_literals: Iterable["BoolVar | Literal"]
    ) -> Constraint:
        """Block a previously found solution (constraint C5-ell).

        Given the literals that were true in a solution, adds the clause
        requiring at least one of them to flip - exactly the paper's
        ``sum_i x_{i, sigma_i} <= |N| - 1`` encoding.
        """
        literals = [~as_literal(item) for item in true_literals]
        if not literals:
            raise ModellingError("cannot forbid the empty assignment")
        return self.add(Clause(literals))
