"""Shared plan cache: profiling tables + candidate sets for tenants.

Collecting a profiling table is the expensive step of the whole flow
(~6 minutes per device per application on real hardware, paper section
3.2), and the optimizer's K candidates are the reusable artifact that
makes cheap re-ranking possible (level 3, and the adaptive/serving
loops built on it).  A multi-tenant server admits many jobs of a few
application types onto one SoC; re-profiling per tenant would dwarf
the work being served.  :class:`PlanCache` builds each application's
artifacts once per platform and shares them across every tenant:

* both profiling tables - ``isolated`` and ``interference`` - because
  the admission controller and the drift detector need *both* ends of
  the contention spectrum to place a measurement between them;
* the optimizer's candidate set (from the interference-aware table,
  the paper's real flow), which the online rescheduler re-ranks when
  contention shifts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional

from repro.core.optimizer import (
    DEFAULT_GAP_SLACK,
    BTOptimizer,
    OptimizationResult,
    ScheduleCandidate,
)
from repro.core.profiler import BTProfiler, ProfilingTable
from repro.core.schedule import Schedule
from repro.core.stage import Application
from repro.errors import SchedulingError
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.soc.platform import Platform


def with_packing_candidates(
    optimization: OptimizationResult,
    application: Application,
    table: ProfilingTable,
    pu_classes: Iterable[str],
) -> OptimizationResult:
    """Append single-class *packing candidates* to an offline result.

    The optimizer's K candidates are latency-diverse but assume the
    whole SoC is theirs; a multi-tenant server also needs *narrow*
    schedules so several tenants can pack onto disjoint PU classes.
    Every single-class schedule is C2-trivial and zero-gapness, so it
    always exists; appended after the optimizer's picks (worse rank =
    only chosen when nothing wider fits or contention makes it win).
    """
    existing = {c.schedule.assignments for c in optimization.candidates}
    extended = list(optimization.candidates)
    singles = []
    for pu_class in sorted(set(pu_classes)):
        schedule = Schedule.homogeneous(application.num_stages, pu_class)
        if schedule.assignments in existing:
            continue
        singles.append(schedule)
    # Deterministic order: by predicted latency, then class name.
    singles.sort(key=lambda s: (s.predicted_latency(application, table),
                                s.assignments[0]))
    for schedule in singles:
        extended.append(
            ScheduleCandidate(
                rank=len(extended),
                schedule=schedule,
                predicted_latency_s=schedule.predicted_latency(
                    application, table
                ),
                gapness_s=schedule.gapness(application, table),
            )
        )
    return replace(optimization, candidates=extended)


@dataclass(frozen=True)
class CachedPlan:
    """One application's reusable planning artifacts on one platform."""

    application: Application
    isolated: ProfilingTable
    interference: ProfilingTable
    optimization: OptimizationResult

    def isolated_prediction(self, schedule: Schedule) -> float:
        """Model latency with nothing else on the SoC."""
        return schedule.predicted_latency(self.application, self.isolated)

    def interference_prediction(self, schedule: Schedule) -> float:
        """Model latency with every other PU saturated (the paper's
        interference-heavy profiling condition)."""
        return schedule.predicted_latency(
            self.application, self.interference
        )

    def contention_span(self, schedule: Schedule) -> float:
        """Predicted latency growth from idle to saturated co-runners
        (>= 1.0); the scale drift measurements are placed on."""
        isolated = self.isolated_prediction(schedule)
        if isolated <= 0:
            return 1.0
        return max(self.interference_prediction(schedule) / isolated, 1.0)


class PlanCache:
    """Per-platform cache of :class:`CachedPlan` keyed by application.

    Args:
        platform: The shared virtual SoC every tenant runs on.
        repetitions: Profiling repetitions per table entry.
        k: Optimizer candidate count (the rescheduler's search space).
        gap_slack: Utilization-threshold slack (level 1 filter).
        time_budget_s: Optional optimizer wall budget per application.
    """

    def __init__(
        self,
        platform: Platform,
        repetitions: int = 5,
        k: int = 8,
        gap_slack: float = DEFAULT_GAP_SLACK,
        time_budget_s: Optional[float] = None,
    ):
        if k < 1:
            raise SchedulingError("k must be >= 1")
        self.platform = platform
        self.profiler = BTProfiler(platform, repetitions=repetitions)
        self.k = k
        self.gap_slack = gap_slack
        self.time_budget_s = time_budget_s
        self._plans: Dict[str, CachedPlan] = {}
        self.hits = 0
        self.misses = 0

    def plan_for(self, application: Application) -> CachedPlan:
        """The application's cached plan, building it on first use.

        Applications are keyed by name: two tenants submitting the
        same application name share one profiling pass and one
        candidate set (the multi-tenant economics the cache exists
        for).
        """
        reg = metrics()
        cached = self._plans.get(application.name)
        if cached is not None:
            self.hits += 1
            if reg.enabled:
                reg.counter("plan_cache.hits")
            return cached
        self.misses += 1
        if reg.enabled:
            reg.counter("plan_cache.misses")
        # The build span parents the whole miss path, so a trace shows
        # exactly which tenant admission paid for profiling + solving.
        with tracer().span("plan_cache.build", "plan_cache",
                           application=application.name):
            isolated, interference = self.profiler.profile_both(
                application
            )
            schedulable = self.platform.schedulable_classes()
            optimizer = BTOptimizer(
                application,
                interference.restricted(schedulable),
                k=self.k,
                gap_slack=self.gap_slack,
                time_budget_s=self.time_budget_s,
            )
            plan = CachedPlan(
                application=application,
                isolated=isolated,
                interference=interference,
                optimization=with_packing_candidates(
                    optimizer.optimize(), application, interference,
                    schedulable,
                ),
            )
        self._plans[application.name] = plan
        return plan

    def stats(self) -> Dict[str, int]:
        """Cache effectiveness counters for the serving report."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._plans)}
