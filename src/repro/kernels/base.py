"""Common kernel machinery.

A *compute kernel* (paper section 3.1) is one backend implementation of a
stage.  Here each stage ships a ``*_cpu`` and a ``*_gpu`` function pair:

* the **cpu** variant is written the way the paper's OpenMP kernels are -
  straightforward (vectorized) loops over the data;
* the **gpu** variant mirrors how the CUDA/Vulkan shader is structured -
  grid-stride maps, multi-pass histogram sorts, up/down-sweep scans - so
  that the *algorithm* matches what actually runs on a device even though
  both produce bit-identical results on the host.

Both run on numpy arrays in a shared :class:`dict`-like task, the stand-in
for the paper's ``UsmBuffer`` zero-copy unified memory (section 3.1).

Each kernel module also exports a work-profile builder used by the virtual
SoC's cost model.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import KernelError

#: Backend identifiers, matching the paper's terminology.
CPU = "cpu"
GPU = "gpu"
BACKENDS = (CPU, GPU)

#: Simulated GPU grid geometry for grid-stride loops (the numbers shape the
#: chunking of the gpu variants, not their results).
GPU_BLOCK = 256
GPU_GRID = 64


def require_1d(name: str, array: np.ndarray) -> None:
    """Validate that an array is one-dimensional."""
    if array.ndim != 1:
        raise KernelError(f"{name} must be 1-D, got shape {array.shape}")


def require_same_length(a_name: str, a: np.ndarray, b_name: str, b: np.ndarray) -> None:
    """Validate that two arrays have matching lengths."""
    if len(a) != len(b):
        raise KernelError(
            f"{a_name} (len {len(a)}) and {b_name} (len {len(b)}) "
            "must have the same length"
        )


def grid_stride_chunks(n: int) -> Tuple[range, int]:
    """Chunk bounds for a simulated grid-stride loop over ``n`` items.

    Returns the range of chunk starts and the stride, mimicking
    ``for (i = idx; i < N; i += blockDim * gridDim)`` from the paper's
    Fig. 3 CUDA listing.
    """
    stride = GPU_BLOCK * GPU_GRID
    return range(0, max(n, 1), stride), stride


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    if b <= 0:
        raise KernelError("divisor must be positive")
    return -(-a // b)


def checked_log2(n: int) -> int:
    """log2 for exact powers of two (used by scan passes)."""
    if n <= 0 or n & (n - 1):
        raise KernelError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (>= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def dtype_bytes(dtype: "np.dtype | type") -> int:
    """Bytes per element of a numpy dtype."""
    return np.dtype(dtype).itemsize


def flops_nlogn(n: int, per_element: float = 1.0) -> float:
    """Work estimate for comparison-style n log n algorithms."""
    if n <= 1:
        return float(n)
    return per_element * n * math.log2(n)
