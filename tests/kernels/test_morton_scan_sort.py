"""Tests for Morton encoding, prefix sum, radix sort and unique kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels import (
    exclusive_scan_cpu,
    exclusive_scan_gpu,
    morton_encode,
    morton_encode_cpu,
    morton_encode_gpu,
    sort_codes_cpu,
    sort_codes_gpu,
    unique_cpu,
    unique_gpu,
)


def random_points(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3), dtype=np.float32)


class TestMorton:
    def test_matches_scalar_reference(self):
        points = random_points(64, seed=1)
        codes = np.zeros(64, dtype=np.uint32)
        morton_encode_cpu(points, codes)
        for i in range(64):
            assert codes[i] == morton_encode(points[i])

    def test_cpu_gpu_agree(self):
        points = random_points(5000, seed=2)
        cpu_codes = np.zeros(5000, dtype=np.uint32)
        gpu_codes = np.zeros(5000, dtype=np.uint32)
        morton_encode_cpu(points, cpu_codes)
        morton_encode_gpu(points, gpu_codes)
        np.testing.assert_array_equal(cpu_codes, gpu_codes)

    def test_codes_fit_in_30_bits(self):
        points = random_points(1000, seed=3)
        codes = np.zeros(1000, dtype=np.uint32)
        morton_encode_cpu(points, codes)
        assert np.all(codes < (1 << 30))

    def test_origin_maps_to_zero(self):
        points = np.zeros((1, 3), dtype=np.float32)
        codes = np.zeros(1, dtype=np.uint32)
        morton_encode_cpu(points, codes)
        assert codes[0] == 0

    def test_out_of_unit_cube_clipped(self):
        points = np.array([[2.0, -1.0, 0.5]], dtype=np.float32)
        codes = np.zeros(1, dtype=np.uint32)
        morton_encode_cpu(points, codes)
        clipped = np.array([[1.0, 0.0, 0.5]], dtype=np.float32)
        expected = np.zeros(1, dtype=np.uint32)
        morton_encode_cpu(clipped, expected)
        assert codes[0] == expected[0]

    def test_locality_nearby_points_share_prefix(self):
        a = np.array([[0.5, 0.5, 0.5]], dtype=np.float32)
        b = np.array([[0.5001, 0.5001, 0.5001]], dtype=np.float32)
        far = np.array([[0.95, 0.05, 0.95]], dtype=np.float32)
        ca, cb, cf = (np.zeros(1, dtype=np.uint32) for _ in range(3))
        morton_encode_cpu(a, ca)
        morton_encode_cpu(b, cb)
        morton_encode_cpu(far, cf)
        assert (int(ca[0]) ^ int(cb[0])).bit_length() < (
            int(ca[0]) ^ int(cf[0])
        ).bit_length()

    def test_rejects_bad_shape(self):
        with pytest.raises(KernelError):
            morton_encode_cpu(
                np.zeros((4, 2), dtype=np.float32),
                np.zeros(4, dtype=np.uint32),
            )


class TestScan:
    def test_cpu_exclusive_scan(self):
        values = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        out = np.zeros(5, dtype=np.int64)
        exclusive_scan_cpu(values, out)
        np.testing.assert_array_equal(out, [0, 3, 4, 8, 9])

    def test_gpu_matches_cpu_power_of_two(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 100, size=256).astype(np.int64)
        a = np.zeros(256, dtype=np.int64)
        b = np.zeros(256, dtype=np.int64)
        exclusive_scan_cpu(values, a)
        exclusive_scan_gpu(values, b)
        np.testing.assert_array_equal(a, b)

    def test_gpu_matches_cpu_non_power_of_two(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 100, size=317).astype(np.int64)
        a = np.zeros(317, dtype=np.int64)
        b = np.zeros(317, dtype=np.int64)
        exclusive_scan_cpu(values, a)
        exclusive_scan_gpu(values, b)
        np.testing.assert_array_equal(a, b)

    def test_empty_scan(self):
        out = np.zeros(0, dtype=np.int64)
        exclusive_scan_cpu(np.zeros(0, dtype=np.int64), out)
        exclusive_scan_gpu(np.zeros(0, dtype=np.int64), out)

    def test_single_element(self):
        out = np.zeros(1, dtype=np.int64)
        exclusive_scan_gpu(np.array([7], dtype=np.int64), out)
        assert out[0] == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(KernelError):
            exclusive_scan_cpu(
                np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64)
            )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
    def test_property_gpu_equals_numpy(self, values):
        arr = np.asarray(values, dtype=np.int64)
        out = np.zeros(len(arr), dtype=np.int64)
        exclusive_scan_gpu(arr, out)
        expected = np.concatenate([[0], np.cumsum(arr)[:-1]]) if len(arr) else arr
        np.testing.assert_array_equal(out, expected)


class TestSort:
    def test_cpu_sorts(self):
        rng = np.random.default_rng(6)
        codes = rng.integers(0, 1 << 30, size=1000).astype(np.uint32)
        out = np.zeros(1000, dtype=np.uint32)
        sort_codes_cpu(codes, out)
        np.testing.assert_array_equal(out, np.sort(codes))

    def test_gpu_matches_cpu(self):
        rng = np.random.default_rng(7)
        codes = rng.integers(0, 1 << 30, size=2048).astype(np.uint32)
        a = np.zeros(2048, dtype=np.uint32)
        b = np.zeros(2048, dtype=np.uint32)
        sort_codes_cpu(codes, a)
        sort_codes_gpu(codes, b)
        np.testing.assert_array_equal(a, b)

    def test_already_sorted_input(self):
        codes = np.arange(100, dtype=np.uint32)
        out = np.zeros(100, dtype=np.uint32)
        sort_codes_gpu(codes, out)
        np.testing.assert_array_equal(out, codes)

    def test_all_equal_input(self):
        codes = np.full(64, 42, dtype=np.uint32)
        out = np.zeros(64, dtype=np.uint32)
        sort_codes_gpu(codes, out)
        np.testing.assert_array_equal(out, codes)

    def test_mismatched_length_rejected(self):
        with pytest.raises(KernelError):
            sort_codes_cpu(
                np.zeros(3, dtype=np.uint32), np.zeros(2, dtype=np.uint32)
            )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 30) - 1), max_size=128
        )
    )
    def test_property_gpu_sort_is_sorted_permutation(self, values):
        codes = np.asarray(values, dtype=np.uint32)
        out = np.zeros(len(codes), dtype=np.uint32)
        sort_codes_gpu(codes, out)
        np.testing.assert_array_equal(out, np.sort(codes))


class TestUnique:
    def run_both(self, sorted_codes):
        n = len(sorted_codes)
        results = []
        for fn in (unique_cpu, unique_gpu):
            out = np.zeros(n, dtype=np.uint32)
            count = np.zeros(1, dtype=np.int64)
            fn(sorted_codes, out, count)
            results.append((out[: count[0]].copy(), int(count[0])))
        return results

    def test_removes_duplicates(self):
        codes = np.array([1, 1, 2, 3, 3, 3, 9], dtype=np.uint32)
        (cpu_vals, cpu_n), (gpu_vals, gpu_n) = self.run_both(codes)
        np.testing.assert_array_equal(cpu_vals, [1, 2, 3, 9])
        assert cpu_n == gpu_n == 4
        np.testing.assert_array_equal(cpu_vals, gpu_vals)

    def test_no_duplicates_is_identity(self):
        codes = np.array([5, 8, 13], dtype=np.uint32)
        (vals, n), _ = self.run_both(codes)
        assert n == 3
        np.testing.assert_array_equal(vals, codes)

    def test_all_same(self):
        codes = np.full(50, 7, dtype=np.uint32)
        (vals, n), (gvals, gn) = self.run_both(codes)
        assert n == gn == 1
        assert vals[0] == 7

    def test_empty(self):
        codes = np.zeros(0, dtype=np.uint32)
        out = np.zeros(0, dtype=np.uint32)
        count = np.zeros(1, dtype=np.int64)
        unique_cpu(codes, out, count)
        assert count[0] == 0
        unique_gpu(codes, out, count)
        assert count[0] == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), max_size=100)
    )
    def test_property_matches_numpy_unique(self, values):
        codes = np.sort(np.asarray(values, dtype=np.uint32))
        for result, n in self.run_both(codes):
            np.testing.assert_array_equal(result, np.unique(codes))
