"""The bounded time-series store and its MetricsRegistry integration."""

import pytest

import repro.obs as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore


class TestStore:
    def test_points_round_trip_in_order(self):
        store = TimeSeriesStore()
        for tick in range(5):
            store.point("a", tick, float(tick) * 2.0)
        assert store.series("a") == [(0, 0.0), (1, 2.0), (2, 4.0),
                                     (3, 6.0), (4, 8.0)]

    def test_capacity_bounds_each_series(self):
        store = TimeSeriesStore(capacity_per_series=3)
        for tick in range(10):
            store.point("a", tick, 1.0)
        assert len(store.series("a")) == 3
        assert store.series("a")[0][0] == 7

    def test_unknown_series_is_empty(self):
        assert TimeSeriesStore().series("ghost") == []

    def test_names_sorted(self):
        store = TimeSeriesStore()
        store.point("z", 0, 1.0)
        store.point("a", 0, 1.0)
        assert store.names() == ["a", "z"]

    def test_window_query_is_half_open(self):
        store = TimeSeriesStore()
        for tick in range(6):
            store.point("a", tick, float(tick))
        window = store.window("a", 2, 5)
        assert [t for t, _ in window] == [2, 3, 4]

    def test_snapshot_is_json_shaped_and_sorted(self):
        store = TimeSeriesStore()
        store.point("b", 0, 1.0)
        store.point("a", 0, 2.0)
        snap = store.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == [[0, 2.0]]

    def test_len_counts_series(self):
        store = TimeSeriesStore()
        store.point("a", 0, 1.0)
        store.point("a", 1, 1.0)
        store.point("b", 0, 1.0)
        assert len(store) == 2


class TestRegistryIntegration:
    def test_disabled_registry_drops_points(self):
        reg = MetricsRegistry(enabled=False)
        reg.series_point("x", 0, 1.0)
        assert reg.series is None

    def test_enabled_registry_collects_points(self):
        reg = MetricsRegistry(enabled=True)
        reg.series_point("x", 0, 1.0)
        reg.series_point("x", 1, 2.0)
        assert reg.series is not None
        assert reg.series.series("x") == [(0, 1.0), (1, 2.0)]

    def test_snapshot_series_key_is_conditional(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("hits")
        assert "series" not in reg.snapshot()
        reg.series_point("x", 0, 1.0)
        assert reg.snapshot()["series"] == {"x": [[0, 1.0]]}

    def test_counter_returns_running_total(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("hits") == 1.0
        assert reg.counter("hits", 2.0) == 3.0

    def test_disabled_counter_returns_none(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("hits") is None


class TestCaptureExport:
    def test_series_ride_in_the_chrome_trace(self):
        with obs.capture() as cap:
            reg = obs.metrics()
            reg.series_point("fleet.backlog_depth", 0, 3.0)
            reg.series_point("fleet.backlog_depth", 1, 1.0)
            snapshot = cap.metrics.snapshot()
        trace = obs.chrome_trace(cap.events, snapshot)
        metrics_blob = trace["otherData"]["metrics"]
        assert metrics_blob["series"]["fleet.backlog_depth"] == [
            [0, 3.0], [1, 1.0],
        ]
