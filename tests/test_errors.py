"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors
from repro.serialization import SerializationError


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.SolverError, errors.InfeasibleError,
        errors.SolverTimeoutError, errors.ModellingError,
        errors.PlatformError, errors.KernelError,
        errors.SchedulingError, errors.ProfilingError,
        errors.PipelineError, errors.QueueClosedError,
        errors.TransientKernelFault, errors.PuFailureError,
        SerializationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_solver_family(self):
        assert issubclass(errors.InfeasibleError, errors.SolverError)
        assert issubclass(errors.SolverTimeoutError, errors.SolverError)
        assert issubclass(errors.ModellingError, errors.SolverError)

    def test_queue_closed_is_pipeline_error(self):
        assert issubclass(errors.QueueClosedError, errors.PipelineError)

    def test_fault_family_is_pipeline_error(self):
        assert issubclass(errors.TransientKernelFault,
                          errors.PipelineError)
        assert issubclass(errors.PuFailureError, errors.PipelineError)

    def test_pu_failure_carries_pu_class(self):
        exc = errors.PuFailureError("gpu")
        assert exc.pu_class == "gpu"
        assert "gpu" in str(exc)

    def test_single_catch_at_api_boundary(self):
        """The documented usage pattern: one except clause suffices."""
        try:
            raise errors.KernelError("bad shapes")
        except errors.ReproError as exc:
            assert "bad shapes" in str(exc)
