"""Static invariant rules for ``python -m repro lint``.

Each rule machine-checks one convention the runtime's correctness
rests on (see the rule docstrings and the "Correctness tooling"
section of ``docs/architecture.md``):

* ``WALL-CLOCK`` - deadline/timeout arithmetic must use the monotonic
  clock, never ``time.time()``.
* ``GLOBAL-RNG`` - determinism-critical paths must draw randomness from
  seeded, coordinate-keyed generators, never module-level RNG state.
* ``RAW-ARTIFACT-WRITE`` - artifacts must go through the atomic,
  checksummed writers in :mod:`repro.serialization`.
* ``BROAD-EXCEPT`` - a broad ``except`` may not swallow: every path
  through the handler must re-raise or route into the fault-report /
  quarantine machinery.
* ``UNSUPERVISED-THREAD`` - threads are created only by the pipeline
  executor and the watchdog supervisor, never ad hoc.
* ``UNTAGGED-SPAN`` - trace spans are built only through the
  sanctioned factories in :mod:`repro.runtime.trace` /
  :mod:`repro.obs`, so every span carries consistent tags.

Violations are suppressed per line with ``# bt-lint: disable=RULE-ID``
(several ids comma-separated, ``ALL`` for everything) on the offending
line or the line directly above it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Registry of rule id -> rule instance, filled by :func:`_register`.
_REGISTRY: Dict[str, "Rule"] = {}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the finding."""
        return {
            "rule": self.rule_id, "path": self.path,
            "line": self.line, "col": self.col, "message": self.message,
        }

    def format(self) -> str:
        """``path:line:col: RULE-ID message`` (clickable in editors)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")


class Rule:
    """Base class: one invariant, one id, one AST check.

    Attributes:
        rule_id: Stable identifier used in reports and suppressions.
        summary: One-line description for the rule catalog.
        applies_to: Path substrings limiting where the rule runs
            (``None`` = everywhere).
        allowed_in: Path suffixes exempt from the rule (the module that
            legitimately owns the flagged construct).
    """

    rule_id: str = ""
    summary: str = ""
    applies_to: Optional[Tuple[str, ...]] = None
    allowed_in: Tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        """Whether this rule runs on the given file at all."""
        normalized = path.replace("\\", "/")
        if any(normalized.endswith(suffix) for suffix in self.allowed_in):
            return False
        if self.applies_to is None:
            return True
        return any(part in normalized for part in self.applies_to)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id, path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _register(cls):
    rule = cls()
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in id order."""
    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Optional[Rule]:
    """Look up one rule by id."""
    return _REGISTRY.get(rule_id)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` otherwise.

    Memoized on the node itself (purely syntactic, so safe to cache
    for the node's lifetime): the flow analysis resolves the same call
    targets once per fixpoint pass, which makes this the hottest
    helper in the tree.
    """
    cached = getattr(node, "_bt_dotted", None)
    if cached is not None:
        return cached
    root = node
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    name = ""
    if isinstance(node, ast.Name):
        parts.append(node.id)
        name = ".".join(reversed(parts))
    try:
        root._bt_dotted = name  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - slotted nodes
        pass
    return name


def _terminal_name(node: ast.AST) -> str:
    """The final attribute/name of a call target (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# ----------------------------------------------------------------------
# WALL-CLOCK
# ----------------------------------------------------------------------
@_register
class WallClockRule(Rule):
    """``time.time()`` is wall clock: NTP steps and suspend/resume move
    it arbitrarily, so any deadline or timeout computed from it can
    fire early, late, or never.  The SPSC queue timeouts and watchdog
    deadlines are all monotonic; this rule keeps it that way."""

    rule_id = "WALL-CLOCK"
    summary = ("time.time() in runtime code - deadlines/timeouts must "
               "use time.monotonic()")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and dotted_name(node.func) == "time.time"):
                yield self.finding(
                    path, node,
                    "wall-clock time.time() call; deadline/timeout "
                    "arithmetic must use time.monotonic()",
                )


# ----------------------------------------------------------------------
# GLOBAL-RNG
# ----------------------------------------------------------------------
#: np.random constructors that *are* the approved seeded pattern.
_SEEDED_RNG_OK = (
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "BitGenerator", "MT19937",
)
#: stdlib random attributes that construct isolated generators.
_STDLIB_RNG_OK = ("Random", "SystemRandom", "getstate")


@_register
class GlobalRngRule(Rule):
    """Module-level RNG state (``random.*``, ``np.random.*``) breaks
    byte-identical resume: a resumed campaign replays a *subset* of the
    draws, so any shared-stream consumer diverges from the
    uninterrupted run.  Determinism-critical paths must build
    coordinate-keyed generators (``np.random.default_rng(seed)``)."""

    rule_id = "GLOBAL-RNG"
    summary = ("module-level RNG use in a determinism-critical path - "
               "use a seeded np.random.default_rng(...)")
    # The paths whose randomness feeds checkpointed / resumable results.
    applies_to = ("profiler", "solver", "faults", "session",
                  "autotuner", "optimizer", "timer")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name.startswith("random."):
                attr = name.split(".", 1)[1]
                if attr not in _STDLIB_RNG_OK:
                    yield self.finding(
                        path, node,
                        f"global stdlib RNG call {name}(); seeded "
                        "resume needs a coordinate-keyed generator",
                    )
            elif (name.startswith("np.random.")
                  or name.startswith("numpy.random.")):
                attr = name.rsplit(".", 1)[1]
                if attr not in _SEEDED_RNG_OK:
                    yield self.finding(
                        path, node,
                        f"global numpy RNG call {name}(); use "
                        "np.random.default_rng(seed) keyed by the "
                        "work coordinate",
                    )


# ----------------------------------------------------------------------
# RAW-ARTIFACT-WRITE
# ----------------------------------------------------------------------
_WRITE_MODE_CHARS = set("wax+")


def _mode_argument(node: ast.Call, position: int) -> Optional[ast.expr]:
    if len(node.args) > position:
        return node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _is_write_mode(mode: Optional[ast.expr]) -> bool:
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return False  # dynamic mode: cannot tell statically


@_register
class RawArtifactWriteRule(Rule):
    """A raw ``open(..., "w")`` truncates in place: a crash mid-write
    leaves a corrupt artifact that the checkpoint/resume machinery
    would then trust.  All artifact writes go through the atomic
    (tmp + fsync + rename), checksummed writers in
    :mod:`repro.serialization` - the one module exempt here."""

    rule_id = "RAW-ARTIFACT-WRITE"
    summary = ("raw file write outside repro.serialization - use the "
               "atomic artifact writers")
    allowed_in = ("repro/serialization.py",)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("open", "io.open", "os.fdopen"):
                if _is_write_mode(_mode_argument(node, 1)):
                    yield self.finding(
                        path, node,
                        f"raw {name}(..., 'w') write; route artifacts "
                        "through repro.serialization's atomic writers",
                    )
            elif _terminal_name(node.func) in ("write_text",
                                               "write_bytes"):
                yield self.finding(
                    path, node,
                    "Path.write_text/write_bytes is not atomic; route "
                    "artifacts through repro.serialization",
                )


# ----------------------------------------------------------------------
# BROAD-EXCEPT
# ----------------------------------------------------------------------
#: A call whose terminal name contains one of these routes the failure
#: into the fault-report / quarantine machinery.
_ROUTING_MARKERS = ("quarantine", "record", "route", "report",
                    "classify")


def _is_routing_call(node: ast.Call) -> bool:
    terminal = _terminal_name(node.func).lower()
    return any(marker in terminal for marker in _ROUTING_MARKERS)


def _contains_routing(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Call) and _is_routing_call(sub)
               for sub in ast.walk(node))


def _scan_block(stmts: Sequence[ast.stmt], routed: bool,
                loop_depth: int) -> Tuple[bool, bool, bool]:
    """Path-check one statement list inside a broad handler.

    Returns ``(swallows, falls_through, routed_after)``: whether any
    execution path can leave the handler without re-raising or routing,
    whether control can reach the end of this block, and the weakest
    "already routed" state at that point.  Conservative on constructs
    it cannot model (loops, try) - they never *clear* the routed flag.
    """
    swallows = False
    for stmt in stmts:
        if isinstance(stmt, ast.Raise):
            return swallows, False, routed
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and _contains_routing(stmt.value):
                routed = True
            return swallows or not routed, False, routed
        if isinstance(stmt, (ast.Continue, ast.Break)):
            if loop_depth == 0:
                # Leaves the handler (the loop is outside the try).
                return swallows or not routed, False, routed
            continue  # local to a loop inside the handler
        if isinstance(stmt, ast.If):
            s1, f1, r1 = _scan_block(stmt.body, routed, loop_depth)
            s2, f2, r2 = _scan_block(stmt.orelse, routed, loop_depth)
            swallows = swallows or s1 or s2
            if not (f1 or f2):
                return swallows, False, routed
            falling = [r for fell, r in ((f1, r1), (f2, r2)) if fell]
            routed = all(falling)
        elif isinstance(stmt, (ast.While, ast.For)):
            s1, _, _ = _scan_block(stmt.body, routed, loop_depth + 1)
            s2, _, _ = _scan_block(stmt.orelse, routed, loop_depth)
            swallows = swallows or s1 or s2
            if _contains_routing(stmt):
                routed = True
        elif isinstance(stmt, ast.Try):
            sb, fb, rb = _scan_block(stmt.body, routed, loop_depth)
            so, fo, ro = _scan_block(stmt.orelse, rb, loop_depth)
            swallows = swallows or sb or so
            falls, routed_states = fb and fo, []
            if fb and fo:
                routed_states.append(ro)
            for handler in stmt.handlers:
                sh, fh, rh = _scan_block(handler.body, routed,
                                         loop_depth)
                swallows = swallows or sh
                if fh:
                    falls = True
                    routed_states.append(rh)
            if stmt.finalbody:
                sf, ff, rf = _scan_block(
                    stmt.finalbody,
                    all(routed_states) if routed_states else routed,
                    loop_depth,
                )
                swallows = swallows or sf
                if not ff:
                    return swallows, False, rf
                routed = rf if falls else routed
            else:
                if not falls:
                    return swallows, False, routed
                routed = all(routed_states)
        elif isinstance(stmt, ast.With):
            s1, f1, r1 = _scan_block(stmt.body, routed, loop_depth)
            swallows = swallows or s1
            if not f1:
                return swallows, False, routed
            routed = r1
        else:
            if _contains_routing(stmt):
                routed = True
    return swallows, True, routed


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    targets = (handler.type.elts if isinstance(handler.type, ast.Tuple)
               else [handler.type])
    for target in targets:
        if dotted_name(target).split(".")[-1] == "Exception":
            return True
    return False


@_register
class BroadExceptRule(Rule):
    """A broad ``except Exception`` that swallows turns a kernel crash
    into a silently wrong result.  Broad handlers are allowed only when
    *every* path through them re-raises or routes the failure into the
    fault-report/quarantine machinery (a call whose name mentions
    quarantine/record/route/report/classify)."""

    rule_id = "BROAD-EXCEPT"
    summary = ("broad except handler with a path that neither re-raises "
               "nor routes to the fault machinery")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_is_broad(node):
                continue
            swallows, falls, routed = _scan_block(node.body, False, 0)
            if swallows or (falls and not routed):
                yield self.finding(
                    path, node,
                    "broad except may swallow the exception: every "
                    "path must re-raise or route it into the fault-"
                    "report/quarantine machinery",
                )


# ----------------------------------------------------------------------
# UNSUPERVISED-THREAD
# ----------------------------------------------------------------------
@_register
class UnsupervisedThreadRule(Rule):
    """Threads created outside the pipeline executor / watchdog escape
    heartbeat supervision: nothing detects their stalls, cancels their
    dispatches, or joins them on unwind.  New concurrency must go
    through the supervised dispatcher machinery."""

    rule_id = "UNSUPERVISED-THREAD"
    summary = ("threading.Thread created outside the supervised "
               "pipeline/watchdog registry")
    allowed_in = ("repro/runtime/pipeline.py",
                  "repro/runtime/watchdog.py")

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and dotted_name(node.func) in ("threading.Thread",
                                                   "Thread")):
                yield self.finding(
                    path, node,
                    "unsupervised threading.Thread(); dispatcher "
                    "threads must run under the pipeline/watchdog "
                    "supervision registry",
                )
            elif isinstance(node, ast.ClassDef):
                for base in node.bases:
                    if dotted_name(base) in ("threading.Thread",
                                             "Thread"):
                        yield self.finding(
                            path, node,
                            f"class {node.name} subclasses "
                            "threading.Thread outside the supervision "
                            "registry",
                        )


# ----------------------------------------------------------------------
# UNTAGGED-SPAN
# ----------------------------------------------------------------------
@_register
class UntaggedSpanRule(Rule):
    """A ``Span(...)`` built by hand can silently omit the tenant/PU
    tags the Gantt renderer, the Perfetto exporter, and the per-tenant
    sectioning all key on, producing charts and traces that drop or
    misattribute work.  Spans are built only through the sanctioned
    factories (``repro.runtime.trace.record_span`` and the
    :mod:`repro.obs` exporters), which take every tag explicitly."""

    rule_id = "UNTAGGED-SPAN"
    summary = ("direct Span(...) construction outside the sanctioned "
               "repro.runtime.trace / repro.obs factories")
    allowed_in = ("repro/runtime/trace.py",)

    def applies(self, path: str) -> bool:
        # allowed_in is suffix-matched, which cannot express "anything
        # under the observability package" - exempt the directory here.
        if "repro/obs/" in path.replace("\\", "/"):
            return False
        return super().applies(path)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and _terminal_name(node.func) == "Span"):
                yield self.finding(
                    path, node,
                    "direct Span(...) construction; build spans via "
                    "repro.runtime.trace.record_span so they carry "
                    "the tags the exporters key on",
                )
