"""The acceptance soak: concurrent tenants, drift, determinism.

The issue's bar, verbatim:

* N >= 3 concurrent tenants with injected interference drift, where
  online rescheduling yields *strictly lower* p95 per-item latency for
  the drift-target tenant than the frozen offline schedule;
* admission *rejects* a tenant whose required PUs would violate the
  no-oversubscription invariant;
* the whole run is byte-deterministic for a fixed seed.
"""

import pytest

from repro.serialization import write_json_report
from repro.serve import (
    COMPLETED,
    REJECTED,
    SoakScenario,
    build_soak_server,
    run_soak,
)


SCENARIO = SoakScenario(seed=7, windows=30)


@pytest.fixture(scope="module")
def online():
    server, report = run_soak(SCENARIO, reschedule=True)
    return server, report


@pytest.fixture(scope="module")
def frozen():
    server, report = run_soak(SCENARIO, reschedule=False)
    return server, report


class TestConcurrency:
    def test_three_tenants_run_concurrently(self, online):
        _, report = online
        admits = [e for e in report.timeline if e["event"] == "admit"]
        assert len(admits) == 3
        assert all(e["tick"] == 0 for e in admits)
        for name in ("tenant-gpu", "tenant-drift", "tenant-bg"):
            assert report.tenants[name].status == COMPLETED
            assert (report.tenants[name].windows_served
                    == SCENARIO.windows)

    def test_partitions_were_disjoint_throughout(self, online):
        server, report = online
        # Every admit/reschedule event carries the granted partition;
        # replaying them must never show overlap at a single tick.
        held = {}
        for event in report.timeline:
            if event["event"] in ("admit", "reschedule"):
                held[event["tenant"]] = set(event["partition"])
                flattened = [c for part in held.values()
                             for c in part]
                assert len(flattened) == len(set(flattened))
            elif event["event"] in ("complete", "evict", "fail"):
                held.pop(event["tenant"], None)


class TestOversubscriptionRejection:
    def test_probe_is_rejected(self, online):
        _, report = online
        probe = report.tenants["tenant-probe"]
        assert probe.status == REJECTED
        reject = next(e for e in report.timeline
                      if e["event"] == "reject")
        assert reject["tenant"] == "tenant-probe"
        assert "no-oversubscription" in reject["reason"]


class TestOnlineVsFrozen:
    def test_drift_tenant_reschedules_online_only(
        self, online, frozen
    ):
        _, on_report = online
        _, off_report = frozen
        assert on_report.tenants["tenant-drift"].reschedules >= 1
        assert off_report.tenants["tenant-drift"].reschedules == 0

    def test_online_p95_strictly_beats_frozen(self, online, frozen):
        _, on_report = online
        _, off_report = frozen
        on_p95 = on_report.tenants["tenant-drift"].p95_latency_s
        off_p95 = off_report.tenants["tenant-drift"].p95_latency_s
        assert on_p95 > 0.0
        assert on_p95 < off_p95

    def test_drift_is_visible_in_the_frozen_run(self, frozen):
        server, _ = frozen
        history = server.records["tenant-drift"].history
        pre = [w.measured_latency_s for w in history[:2]]
        post = [w.measured_latency_s for w in history[-2:]]
        # Frozen on the drifted class, latency stays degraded.
        assert min(post) > max(pre)


class TestDeterminism:
    def test_reports_are_byte_identical(self, online, tmp_path):
        _, first_report = online
        _, second_report = run_soak(SCENARIO, reschedule=True)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        write_json_report(first, first_report.to_dict())
        write_json_report(second, second_report.to_dict())
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_differs(self, online, tmp_path):
        _, baseline = online
        other = SoakScenario(seed=8, windows=30)
        _, other_report = run_soak(other)
        assert (other_report.to_dict()["tenants"]
                != baseline.to_dict()["tenants"])


class TestScenarioValidation:
    def test_needs_enough_windows(self):
        with pytest.raises(Exception, match="8 windows"):
            SoakScenario(windows=4)

    def test_needs_a_baseline_window(self):
        with pytest.raises(Exception, match="baseline"):
            SoakScenario(drift_start_tick=1)

    def test_unknown_platform_class_is_caught(self):
        with pytest.raises(Exception, match="lacks it"):
            build_soak_server(
                SoakScenario(platform_name="raspberry_pi5")
            )
