"""Open-loop driver: submission, step-mode harvest, SLO tagging."""

import pytest

from repro.errors import TrafficError
from repro.obs import capture
from repro.traffic import (
    OpenLoopDriver,
    TrafficGenerator,
    materialize,
    run_overload_soak,
)
from repro.traffic.generator import ArrivalEvent


@pytest.fixture(scope="module")
def soak(small_scenario_module):
    return run_overload_soak(small_scenario_module, admission=True)


@pytest.fixture(scope="module")
def small_scenario_module():
    # Module-scoped twin of the function-scoped conftest fixture, so
    # the driver tests share one run.
    from repro.traffic import FleetOverloadScenario

    return FleetOverloadScenario(
        ticks=10,
        n_shards=1,
        saturation_arrivals_per_tick=0.8,
        load_multiplier=1.0,
        burst_start_tick=3,
        burst_end_tick=6,
        stage_count=2,
    )


class TestMaterialize:
    def test_builds_each_app_kind(self, small_spec):
        events = TrafficGenerator(small_spec, seed=5).events()
        kinds = set()
        for event in events:
            spec = materialize(event, stage_count=2)
            assert spec.name == event.name
            assert spec.priority == event.priority
            assert spec.windows == event.windows
            assert len(spec.application.stages) == 2
            kinds.add(event.app_kind)
        assert len(kinds) >= 2

    def test_unknown_kind_rejected(self):
        event = ArrivalEvent(
            tick=0, name="user-0", tier="gold", priority=2,
            windows=2, window_tasks=6, app_kind="quantum",
            app_seed=0,
        )
        with pytest.raises(TrafficError, match="unknown application"):
            materialize(event, stage_count=2)


class TestDriverRun:
    def test_tick_trajectory_covers_horizon(self, soak):
        result, _ = soak
        assert len(result.per_tick) == result.ticks
        for tick, entry in enumerate(result.per_tick):
            assert entry["tick"] == tick
            assert entry["backlog"] >= 0

    def test_samples_reference_recorded_arrivals(self, soak):
        result, _ = soak
        assert result.samples, "nothing served"
        for sample in result.samples:
            assert sample.tenant in result.arrivals
            assert sample.latency_s > 0.0
            assert sample.slowdown > 0.0
            assert 0 <= sample.tick < result.ticks

    def test_fleet_report_attached(self, soak):
        result, report = soak
        assert result.fleet_report is not None
        assert result.fleet_report.n_shards == report.n_shards == 1

    def test_served_never_exceeds_offered(self, soak):
        _, report = soak
        assert 0 < report.served_windows <= report.offered_windows
        assert report.goodput_windows <= report.served_windows

    def test_driver_validates_horizon(self, small_scenario):
        router = small_scenario.build_fleet()
        with pytest.raises(TrafficError, match="at least one tick"):
            OpenLoopDriver(router, [], ticks=0)

    def test_counters_balance(self, small_scenario):
        with capture() as cap:
            run_overload_soak(small_scenario, admission=True)
            counters = cap.metrics.snapshot()["counters"]
        assert counters["traffic.arrivals"] > 0
        assert (counters["traffic.served_windows"]
                <= counters["traffic.offered_windows"])


class TestOpenLoopIngress:
    def test_arrival_stream_blind_to_admission(self, small_scenario):
        """Draw-count invariance at the system level: the offered
        stream is identical whether the fleet admits or rejects."""
        on_result, _ = run_overload_soak(small_scenario,
                                         admission=True)
        off_result, _ = run_overload_soak(small_scenario,
                                          admission=False)
        assert on_result.arrivals == off_result.arrivals
