"""Unit tests for boolean variables and literals."""

import pytest

from repro.solver import BoolVar, Literal, as_literal


class TestLiteralAlgebra:
    def test_invert_variable_gives_negated_literal(self):
        var = BoolVar(index=0, name="a")
        literal = ~var
        assert isinstance(literal, Literal)
        assert literal.negated

    def test_double_negation(self):
        var = BoolVar(index=0, name="a")
        assert ~~var.literal() == var.literal()

    def test_value_under(self):
        var = BoolVar(index=0, name="a")
        assert var.literal().value_under(1)
        assert not var.literal().value_under(0)
        assert (~var).value_under(0)
        assert not (~var).value_under(1)

    def test_as_literal_coerces(self):
        var = BoolVar(index=0, name="a")
        assert as_literal(var) == var.literal()
        assert as_literal(var.literal()) == var.literal()

    def test_as_literal_rejects_junk(self):
        with pytest.raises(TypeError):
            as_literal("a")

    def test_variables_hashable_and_distinct(self):
        a = BoolVar(index=0, name="a")
        b = BoolVar(index=1, name="b")
        assert len({a, b, a}) == 2
