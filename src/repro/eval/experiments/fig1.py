"""Fig. 1: per-stage execution-time heterogeneity on the Google Pixel.

The paper's motivating figure: three Octree stages (Sort, Build Radix
Tree, Octree construction) timed on three Pixel PUs (big, medium, GPU)
show opposite affinities - the GPU is worst at sorting, best at the radix
tree, and comparable to the CPUs for octree construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.homogeneous import per_stage_baseline_times
from repro.eval.experiments.common import ExperimentScale
from repro.eval.metrics import format_table
from repro.soc import get_platform
from repro.soc.pu import BIG, GPU, MEDIUM

#: The subset of stages and PUs Fig. 1 plots.
FIG1_STAGES = ("sort", "radix-tree", "build-octree")
FIG1_PUS = (BIG, MEDIUM, GPU)


@dataclass
class Fig1Result:
    """Per-(stage, PU) isolated latency in seconds."""

    times_s: Dict[str, Dict[str, float]]

    def gpu_is_worst_at_sort(self) -> bool:
        row = self.times_s["sort"]
        return row[GPU] == max(row.values())

    def gpu_is_best_at_radix_tree(self) -> bool:
        row = self.times_s["radix-tree"]
        return row[GPU] == min(row.values())

    def octree_build_is_balanced(self, factor: float = 6.0) -> bool:
        """Big, medium and GPU within a modest factor of each other."""
        row = self.times_s["build-octree"]
        return max(row.values()) <= factor * min(row.values())


def run_fig1(scale: ExperimentScale = None) -> Fig1Result:
    scale = scale or ExperimentScale.paper()
    from repro.apps import build_octree_application

    platform = get_platform("pixel7a")
    application = build_octree_application(n_points=scale.n_points)
    full = per_stage_baseline_times(application, platform)
    times = {
        stage: {pu: full[stage][pu] for pu in FIG1_PUS}
        for stage in FIG1_STAGES
    }
    return Fig1Result(times_s=times)


def format_fig1(result: Fig1Result) -> str:
    rows: List[List[str]] = [["stage (ms)"] + list(FIG1_PUS)]
    for stage in FIG1_STAGES:
        rows.append(
            [stage]
            + [f"{result.times_s[stage][pu] * 1e3:.3f}" for pu in FIG1_PUS]
        )
    checks = [
        f"GPU worst at sort:        {result.gpu_is_worst_at_sort()}",
        f"GPU best at radix tree:   {result.gpu_is_best_at_radix_tree()}",
        f"octree build balanced:    {result.octree_build_is_balanced()}",
    ]
    return (
        "Fig. 1 - stage heterogeneity on Google Pixel 7a\n"
        + format_table(rows) + "\n" + "\n".join(checks)
    )
