"""Shard health classification and the per-shard admission breaker.

Health is judged on the fleet's logical tick clock, never wall time:
the :class:`HealthMonitor` compares each shard's heartbeat *count*
(:attr:`repro.runtime.watchdog.Heartbeat.beats`) across fleet ticks, so
a shard whose loop stops beating - crash or gray failure alike - is
detected identically on any machine at any speed.  SLO breach is
likewise relative, not absolute: each (shard, tenant) pair's first
window on that shard is its baseline, and a shard breaches when the
mean latency ratio of a tick's windows exceeds ``slo_factor`` for
``slo_breach_ticks`` consecutive ticks.

Shard lifecycle::

    healthy --(missed beats >= miss_degraded, or SLO streak)--> degraded
    degraded --(missed beats >= miss_dead, or crash)----------> dead
    dead --(beats resume / rejoin)----------------------------> recovering
    recovering --(breaker closes)-----------------------------> healthy

The :class:`CircuitBreaker` gates *placement* onto a shard::

    closed --(shard declared dead / SLO failover)--> open
    open --(cooldown elapsed AND beats seen)-------> half-open
    half-open --(probe_ticks consecutive healthy)--> closed
    half-open --(beats lost again)-----------------> open

Half-open placement is probabilistic by design - a recovering shard
takes a seeded *probe window* draw each tick, so the router trickles
tenants back instead of slamming the shard the instant it reappears.
The draw comes from the breaker's own seeded generator (one draw per
half-open tick), keeping the whole fleet run deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FleetError

# Shard lifecycle states.
HEALTHY = "healthy"
DEGRADED = "degraded"
DEAD = "dead"
RECOVERING = "recovering"

#: Numeric codes for the ``fleet.shard_state.<name>`` gauge.
SHARD_STATE_CODES = {HEALTHY: 0, DEGRADED: 1, RECOVERING: 2, DEAD: 3}

# Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for shard health classification (all in fleet ticks)."""

    miss_degraded: int = 2
    miss_dead: int = 4
    slo_factor: float = 2.0
    slo_breach_ticks: int = 3

    def __post_init__(self) -> None:
        if self.miss_degraded < 1:
            raise FleetError("miss_degraded must be >= 1")
        if self.miss_dead <= self.miss_degraded:
            raise FleetError("miss_dead must be > miss_degraded")
        if self.slo_factor <= 1.0:
            raise FleetError("slo_factor must be > 1.0")
        if self.slo_breach_ticks < 1:
            raise FleetError("slo_breach_ticks must be >= 1")


@dataclass
class ShardHealth:
    """The monitor's view of one shard."""

    state: str = HEALTHY
    last_beats: int = 0
    missed_ticks: int = 0
    beat_seen: bool = True
    breach_streak: int = 0
    #: tenant -> first-window latency on this shard (the SLO baseline).
    baselines: Dict[str, float] = field(default_factory=dict)
    #: Latency ratios observed since the last assessment.
    _ratios: List[float] = field(default_factory=list)


class HealthMonitor:
    """Classifies shards healthy/degraded/dead from beats and windows."""

    def __init__(self, config: Optional[HealthConfig] = None):
        self.config = config or HealthConfig()
        self._shards: Dict[str, ShardHealth] = {}

    def register(self, shard: str) -> None:
        if shard in self._shards:
            raise FleetError(f"shard {shard!r} already registered")
        self._shards[shard] = ShardHealth()

    def health(self, shard: str) -> ShardHealth:
        try:
            return self._shards[shard]
        except KeyError:
            raise FleetError(f"unknown shard {shard!r}")

    def state(self, shard: str) -> str:
        return self.health(shard).state

    def set_state(self, shard: str, state: str) -> None:
        """Externally-driven transition (rejoin -> recovering, breaker
        close -> healthy)."""
        if state not in SHARD_STATE_CODES:
            raise FleetError(f"unknown shard state {state!r}")
        self.health(shard).state = state

    # ------------------------------------------------------------------
    def note_window(self, shard: str, tenant: str,
                    latency_s: float) -> float:
        """Feed one served window; returns its ratio to the tenant's
        first-window baseline on this shard."""
        health = self.health(shard)
        baseline = health.baselines.get(tenant)
        if baseline is None:
            health.baselines[tenant] = latency_s
            ratio = 1.0
        else:
            ratio = latency_s / baseline if baseline > 0.0 else 1.0
        health._ratios.append(ratio)
        return ratio

    def forget_tenant(self, shard: str, tenant: str) -> None:
        """Drop a tenant's baseline when it leaves the shard."""
        self.health(shard).baselines.pop(tenant, None)

    def reset_slo(self, shard: str) -> None:
        """Clear the breach streak (after an SLO-breach failover drains
        the shard, there is nothing left to breach)."""
        health = self.health(shard)
        health.breach_streak = 0
        health._ratios.clear()

    def slo_breached(self, shard: str) -> bool:
        return (self.health(shard).breach_streak
                >= self.config.slo_breach_ticks)

    # ------------------------------------------------------------------
    def assess(self, shard: str, beats: int,
               crashed: bool) -> Optional[Tuple[str, str]]:
        """One per-tick assessment; returns ``(old, new)`` on a state
        change, ``None`` otherwise.

        ``beats`` is the shard heartbeat's current monotonic count;
        ``crashed`` short-circuits straight to dead (a crash is
        directly observable, unlike a gray failure).
        """
        health = self.health(shard)
        old = health.state

        health.beat_seen = beats > health.last_beats
        health.last_beats = beats
        if health.beat_seen:
            health.missed_ticks = 0
        else:
            health.missed_ticks += 1

        ratios = health._ratios
        if ratios:
            mean_ratio = sum(ratios) / len(ratios)
            if mean_ratio > self.config.slo_factor:
                health.breach_streak += 1
            else:
                health.breach_streak = 0
            health._ratios = []
        # No windows served: the streak holds (an SLO-breached shard
        # must not launder itself healthy by serving nothing).

        if crashed:
            new = DEAD
        elif health.missed_ticks >= self.config.miss_dead:
            new = DEAD
        elif old == DEAD:
            # Only an external transition (rejoin / beats resumption via
            # the breaker path) resurrects a dead shard.
            new = RECOVERING if health.beat_seen else DEAD
        elif old == RECOVERING:
            # Recovering holds until the breaker closes (set_state).
            new = RECOVERING
        elif health.missed_ticks >= self.config.miss_degraded:
            new = DEGRADED
        elif self.slo_breached(shard):
            new = DEGRADED
        else:
            new = HEALTHY

        health.state = new
        return (old, new) if new != old else None


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker timing (all in fleet ticks)."""

    cooldown_ticks: int = 3
    probe_probability: float = 0.5
    probe_ticks: int = 3

    def __post_init__(self) -> None:
        if self.cooldown_ticks < 1:
            raise FleetError("cooldown_ticks must be >= 1")
        if not 0.0 < self.probe_probability <= 1.0:
            raise FleetError("probe_probability must be in (0, 1]")
        if self.probe_ticks < 1:
            raise FleetError("probe_ticks must be >= 1")


class CircuitBreaker:
    """Per-shard admission gate: closed -> open -> half-open -> closed.

    One seeded uniform draw per half-open tick decides whether that
    tick is a probe window (placements allowed); the draw count is a
    pure function of the run, so reruns see identical probe windows.
    """

    def __init__(self, shard: str, config: Optional[BreakerConfig],
                 seed: int = 0):
        self.shard = shard
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self.transitions = 0
        self._rng = np.random.default_rng(seed)
        self._opened_at: Optional[int] = None
        self._probe_ok = 0
        self._probe_window = False

    def trip(self, tick: int) -> Optional[Tuple[str, str]]:
        """Force open (shard declared dead or SLO-breach failover)."""
        if self.state == OPEN:
            return None
        old = self.state
        self.state = OPEN
        self._opened_at = tick
        self._probe_ok = 0
        self._probe_window = False
        self.transitions += 1
        return (old, OPEN)

    def advance(self, tick: int,
                beating: bool) -> Optional[Tuple[str, str]]:
        """One per-tick state-machine step; returns a transition or
        ``None``.  ``beating`` = the shard is alive and produced a beat
        this tick."""
        if self.state == OPEN:
            assert self._opened_at is not None
            if (beating
                    and tick - self._opened_at
                    >= self.config.cooldown_ticks):
                self.state = HALF_OPEN
                self._probe_ok = 0
                self.transitions += 1
                self._draw_probe_window()
                return (OPEN, HALF_OPEN)
            return None
        if self.state == HALF_OPEN:
            if not beating:
                self.state = OPEN
                self._opened_at = tick
                self._probe_window = False
                self.transitions += 1
                return (HALF_OPEN, OPEN)
            self._probe_ok += 1
            if self._probe_ok >= self.config.probe_ticks:
                self.state = CLOSED
                self._probe_window = False
                self.transitions += 1
                return (HALF_OPEN, CLOSED)
            self._draw_probe_window()
            return None
        return None

    def _draw_probe_window(self) -> None:
        self._probe_window = bool(
            self._rng.random() < self.config.probe_probability
        )

    def allows_placement(self) -> bool:
        """May the router place a tenant on this shard right now?"""
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            return self._probe_window
        return False
