"""Dense neural-network kernels for the AlexNet workloads.

Layers operate on float32 CHW tensors (optionally batched as BCHW).  The
CPU variants are written the way the paper's OpenMP kernels are - an
im2col lowering followed by a matrix multiply; the GPU variants compute
the same lowering tile-by-tile over output channels, mirroring how a
compute shader partitions the GEMM across workgroups.  Both produce
identical results (float32 accumulation order is kept the same).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import KernelError
from repro.soc.workprofile import WorkProfile


@dataclass(frozen=True)
class ConvSpec:
    """Configuration of a convolution stage (stride 1, zero padding)."""

    in_channels: int
    out_channels: int
    kernel_size: int
    padding: int

    def out_hw(self, h: int, w: int) -> Tuple[int, int]:
        """Output spatial size for an (h, w) input."""
        k, p = self.kernel_size, self.padding
        return h + 2 * p - k + 1, w + 2 * p - k + 1

    def flops(self, h: int, w: int) -> float:
        """Multiply-accumulate flops for an (h, w) input."""
        oh, ow = self.out_hw(h, w)
        return (
            2.0
            * self.in_channels
            * self.out_channels
            * self.kernel_size**2
            * oh
            * ow
        )


def im2col(x: np.ndarray, kernel_size: int, padding: int) -> np.ndarray:
    """Lower a (C, H, W) tensor to the (C*k*k, OH*OW) patch matrix."""
    if x.ndim != 3:
        raise KernelError(f"im2col expects (C, H, W), got {x.shape}")
    c, h, w = x.shape
    k, p = kernel_size, padding
    oh, ow = h + 2 * p - k + 1, w + 2 * p - k + 1
    if oh <= 0 or ow <= 0:
        raise KernelError("kernel larger than padded input")
    padded = np.pad(x, ((0, 0), (p, p), (p, p)))
    columns = np.empty((c, k, k, oh, ow), dtype=x.dtype)
    for dy in range(k):
        for dx in range(k):
            columns[:, dy, dx] = padded[:, dy : dy + oh, dx : dx + ow]
    return columns.reshape(c * k * k, oh * ow)


def _check_conv(x: np.ndarray, weights: np.ndarray, bias: np.ndarray,
                out: np.ndarray, spec: ConvSpec) -> Tuple[int, int]:
    if x.shape[0] != spec.in_channels:
        raise KernelError(
            f"input has {x.shape[0]} channels, spec wants {spec.in_channels}"
        )
    expected_w = (
        spec.out_channels, spec.in_channels, spec.kernel_size, spec.kernel_size
    )
    if weights.shape != expected_w:
        raise KernelError(f"weights {weights.shape} != {expected_w}")
    if bias.shape != (spec.out_channels,):
        raise KernelError(f"bias {bias.shape} != ({spec.out_channels},)")
    oh, ow = spec.out_hw(x.shape[1], x.shape[2])
    if out.shape != (spec.out_channels, oh, ow):
        raise KernelError(
            f"output {out.shape} != {(spec.out_channels, oh, ow)}"
        )
    return oh, ow


def conv2d_relu_cpu(x: np.ndarray, weights: np.ndarray, bias: np.ndarray,
                    out: np.ndarray, spec: ConvSpec) -> None:
    """Host variant: full im2col + one GEMM + fused ReLU."""
    oh, ow = _check_conv(x, weights, bias, out, spec)
    patches = im2col(x, spec.kernel_size, spec.padding)
    flat_w = weights.reshape(spec.out_channels, -1)
    result = flat_w @ patches + bias[:, None]
    np.maximum(result, 0.0, out=result)
    np.copyto(out, result.reshape(spec.out_channels, oh, ow))


#: Output channels computed per simulated workgroup in the gpu variant.
GPU_CHANNEL_TILE = 16


def conv2d_relu_gpu(x: np.ndarray, weights: np.ndarray, bias: np.ndarray,
                    out: np.ndarray, spec: ConvSpec) -> None:
    """Device variant: workgroup-tiled GEMM over output channels."""
    oh, ow = _check_conv(x, weights, bias, out, spec)
    patches = im2col(x, spec.kernel_size, spec.padding)
    flat_w = weights.reshape(spec.out_channels, -1)
    for k0 in range(0, spec.out_channels, GPU_CHANNEL_TILE):
        k1 = min(k0 + GPU_CHANNEL_TILE, spec.out_channels)
        tile = flat_w[k0:k1] @ patches + bias[k0:k1, None]
        np.maximum(tile, 0.0, out=tile)
        out[k0:k1] = tile.reshape(k1 - k0, oh, ow)


def conv_work_profile(spec: ConvSpec, h: int, w: int,
                      batch: int = 1) -> WorkProfile:
    """Dense convolution: the GPU-dominant stage class.

    Huge regular parallelism; the CPU variant is a plain OpenMP loop nest
    (paper Fig. 3 style), far from a hand-tiled GEMM, hence the low CPU
    efficiency that makes mobile CPUs ~2 orders of magnitude slower than
    the GPU on dense CNNs (Table 3).
    """
    oh, ow = spec.out_hw(h, w)
    weight_bytes = 4.0 * spec.out_channels * spec.in_channels * spec.kernel_size**2
    io_bytes = 4.0 * (spec.in_channels * h * w + spec.out_channels * oh * ow)
    return WorkProfile(
        flops=spec.flops(h, w) * batch,
        bytes_moved=(io_bytes * batch + weight_bytes),
        parallelism=float(spec.out_channels * oh * ow * batch),
        parallel_fraction=1.0,
        divergence=0.03,
        irregularity=0.05,
        cpu_efficiency=0.06,
        gpu_efficiency=0.5,
        gpu_launches=1,
    )


def maxpool2x2_cpu(x: np.ndarray, out: np.ndarray) -> None:
    """Host variant: strided-view reduction."""
    c, h, w = x.shape
    if h % 2 or w % 2:
        raise KernelError(f"maxpool2x2 needs even H/W, got {x.shape}")
    if out.shape != (c, h // 2, w // 2):
        raise KernelError(f"output {out.shape} != {(c, h//2, w//2)}")
    view = x.reshape(c, h // 2, 2, w // 2, 2)
    np.copyto(out, view.max(axis=(2, 4)))


def maxpool2x2_gpu(x: np.ndarray, out: np.ndarray) -> None:
    """Device variant: explicit 4-way max per output texel."""
    c, h, w = x.shape
    if h % 2 or w % 2:
        raise KernelError(f"maxpool2x2 needs even H/W, got {x.shape}")
    if out.shape != (c, h // 2, w // 2):
        raise KernelError(f"output {out.shape} != {(c, h//2, w//2)}")
    a = np.maximum(x[:, 0::2, 0::2], x[:, 0::2, 1::2])
    b = np.maximum(x[:, 1::2, 0::2], x[:, 1::2, 1::2])
    np.copyto(out, np.maximum(a, b))


def maxpool_work_profile(channels: int, h: int, w: int,
                         batch: int = 1) -> WorkProfile:
    """Max pooling: the lightweight stage class.

    Three compares per output texel, streaming access - the paper's
    example of work suited to little cores (section 2.1).
    """
    elems = channels * h * w * batch
    return WorkProfile(
        flops=0.75 * elems,
        bytes_moved=4.0 * elems * 1.25,
        parallelism=float(max(elems // 4, 1)),
        parallel_fraction=1.0,
        divergence=0.02,
        irregularity=0.05,
        cpu_efficiency=0.4,
        gpu_efficiency=0.35,
        gpu_launches=1,
    )


def linear_cpu(x: np.ndarray, weights: np.ndarray, bias: np.ndarray,
               out: np.ndarray) -> None:
    """Host variant: flatten + GEMV."""
    flat = x.reshape(-1)
    if weights.shape != (len(out), len(flat)):
        raise KernelError(
            f"weights {weights.shape} != {(len(out), len(flat))}"
        )
    np.copyto(out, weights @ flat + bias)


def linear_gpu(x: np.ndarray, weights: np.ndarray, bias: np.ndarray,
               out: np.ndarray) -> None:
    """Device variant: one workgroup per output neuron (row-parallel)."""
    flat = x.reshape(-1)
    if weights.shape != (len(out), len(flat)):
        raise KernelError(
            f"weights {weights.shape} != {(len(out), len(flat))}"
        )
    for row in range(len(out)):
        out[row] = np.dot(weights[row], flat) + bias[row]


def linear_work_profile(in_features: int, out_features: int,
                        batch: int = 1) -> WorkProfile:
    """Fully-connected layer: small GEMV, weight-bandwidth bound."""
    return WorkProfile(
        flops=2.0 * in_features * out_features * batch,
        bytes_moved=4.0 * (in_features * out_features
                           + batch * (in_features + out_features)),
        parallelism=float(out_features * batch),
        parallel_fraction=1.0,
        divergence=0.02,
        irregularity=0.05,
        cpu_efficiency=0.35,
        gpu_efficiency=0.3,
        gpu_launches=1,
    )
