"""Tests for the roofline cost model: directional correctness.

These tests check *relationships* (more work -> more time; divergence
hurts GPUs more than big CPUs; etc.), not absolute values - mirroring the
"shape, not absolute numbers" reproduction contract.
"""

import pytest

from repro.soc import WorkProfile, cpu_cost, gpu_cost, pu_cost
from repro.soc.pu import BIG, LITTLE, CpuCluster, Gpu


@pytest.fixture
def big_cluster():
    return CpuCluster(
        pu_class=BIG, model="Cortex-X1", cores=2, freq_ghz=2.85,
        flops_per_cycle=16.0, irregularity_tolerance=0.85,
        dispatch_overhead_s=30e-6, stream_bw_gbps=14.0, core_ids=(6, 7),
    )


@pytest.fixture
def little_cluster():
    return CpuCluster(
        pu_class=LITTLE, model="Cortex-A55", cores=4, freq_ghz=1.8,
        flops_per_cycle=4.0, irregularity_tolerance=0.35,
        dispatch_overhead_s=45e-6, stream_bw_gbps=6.0,
        core_ids=(0, 1, 2, 3),
    )


@pytest.fixture
def gpu():
    return Gpu(
        model="Mali-G710", vendor="arm", api="vulkan",
        compute_units=7, lanes_per_unit=48, freq_ghz=0.85,
        flops_per_lane_cycle=2.0, divergence_penalty=6.0,
        irregularity_penalty=5.0, launch_overhead_s=130e-6,
        min_parallelism=8192.0, stream_bw_gbps=18.0,
    )


def work(**overrides):
    base = dict(
        flops=50e6, bytes_moved=5e6, parallelism=1e5, parallel_fraction=1.0
    )
    base.update(overrides)
    return WorkProfile(**base)


class TestCpuCost:
    def test_more_flops_more_time(self, big_cluster):
        t1 = cpu_cost(work(flops=10e6), big_cluster).total_s
        t2 = cpu_cost(work(flops=100e6), big_cluster).total_s
        assert t2 > t1

    def test_compute_scales_inverse_with_cores(self, big_cluster):
        one_core = CpuCluster(
            pu_class=BIG, model="X1", cores=1, freq_ghz=2.85,
            flops_per_cycle=16.0, irregularity_tolerance=0.85,
            dispatch_overhead_s=30e-6, stream_bw_gbps=14.0, core_ids=(0,),
        )
        t2 = cpu_cost(work(), big_cluster).compute_s
        t1 = cpu_cost(work(), one_core).compute_s
        assert t1 == pytest.approx(2 * t2)

    def test_serial_fraction_limits_speedup(self, big_cluster):
        fully_parallel = cpu_cost(
            work(parallel_fraction=1.0), big_cluster
        ).compute_s
        half_serial = cpu_cost(
            work(parallel_fraction=0.5), big_cluster
        ).compute_s
        assert half_serial > fully_parallel

    def test_limited_parallelism_caps_cores(self, big_cluster):
        # parallelism=1 means a single core does all the work.
        serial = cpu_cost(work(parallelism=1.0), big_cluster).compute_s
        parallel = cpu_cost(work(parallelism=1e5), big_cluster).compute_s
        assert serial == pytest.approx(big_cluster.cores * parallel)

    def test_irregularity_hurts_little_more_than_big(
        self, big_cluster, little_cluster
    ):
        regular, irregular = work(irregularity=0.0), work(irregularity=0.9)
        big_ratio = (
            cpu_cost(irregular, big_cluster).compute_s
            / cpu_cost(regular, big_cluster).compute_s
        )
        little_ratio = (
            cpu_cost(irregular, little_cluster).compute_s
            / cpu_cost(regular, little_cluster).compute_s
        )
        assert little_ratio > big_ratio > 1.0

    def test_memory_bound_kernel_limited_by_bandwidth(self, big_cluster):
        streaming = work(flops=1e3, bytes_moved=140e6)
        breakdown = cpu_cost(streaming, big_cluster)
        assert breakdown.memory_s > breakdown.compute_s
        # 140 MB over 14 GB/s = 10 ms
        assert breakdown.memory_s == pytest.approx(0.010, rel=1e-6)

    def test_overhead_included_in_total(self, big_cluster):
        breakdown = cpu_cost(work(), big_cluster)
        assert breakdown.total_s == pytest.approx(
            max(breakdown.compute_s, breakdown.memory_s)
            + big_cluster.dispatch_overhead_s
        )


class TestGpuCost:
    def test_divergence_penalty(self, gpu):
        uniform = gpu_cost(work(divergence=0.0), gpu).compute_s
        divergent = gpu_cost(work(divergence=1.0), gpu).compute_s
        assert divergent == pytest.approx(
            uniform * (1 + gpu.divergence_penalty)
        )

    def test_low_parallelism_underutilizes(self, gpu):
        wide = gpu_cost(work(parallelism=1e6), gpu).compute_s
        narrow = gpu_cost(work(parallelism=1024.0), gpu).compute_s
        assert narrow > wide

    def test_launch_overhead_multiplies(self, gpu):
        single = gpu_cost(work(gpu_launches=1), gpu)
        multi = gpu_cost(work(gpu_launches=8), gpu)
        assert multi.overhead_s == pytest.approx(8 * single.overhead_s)

    def test_serial_work_is_catastrophic(self, gpu):
        parallel = gpu_cost(work(parallel_fraction=1.0), gpu).compute_s
        serial = gpu_cost(work(parallel_fraction=0.0), gpu).compute_s
        # A single SIMT lane vs. the whole machine.
        assert serial > 100 * parallel

    def test_irregular_access_derates_bandwidth(self, gpu):
        coalesced = gpu_cost(
            work(flops=1e3, bytes_moved=100e6, irregularity=0.0), gpu
        ).memory_s
        scattered = gpu_cost(
            work(flops=1e3, bytes_moved=100e6, irregularity=1.0), gpu
        ).memory_s
        assert scattered > 2 * coalesced


class TestCrossPu:
    def test_dense_parallel_work_prefers_gpu(self, big_cluster, gpu):
        dense = work(flops=500e6, bytes_moved=10e6, parallelism=1e6)
        assert gpu_cost(dense, gpu).total_s < cpu_cost(dense, big_cluster).total_s

    def test_irregular_traversal_prefers_big_cpu(self, big_cluster, gpu):
        traversal = work(
            flops=5e6, bytes_moved=8e6, divergence=0.8, irregularity=0.9,
            parallelism=5e4,
        )
        assert (
            cpu_cost(traversal, big_cluster).total_s
            < gpu_cost(traversal, gpu).total_s
        )

    def test_pu_cost_dispatches(self, big_cluster, gpu):
        w = work()
        assert pu_cost(w, big_cluster).total_s == cpu_cost(w, big_cluster).total_s
        assert pu_cost(w, gpu).total_s == gpu_cost(w, gpu).total_s

    def test_pu_cost_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            pu_cost(work(), object())


class TestBreakdownProperties:
    def test_memory_boundedness_range(self, big_cluster):
        breakdown = cpu_cost(work(), big_cluster)
        assert 0.0 <= breakdown.memory_boundedness <= 1.0

    def test_memory_boundedness_extremes(self, big_cluster):
        compute_heavy = cpu_cost(
            work(flops=1e9, bytes_moved=1e3), big_cluster
        )
        memory_heavy = cpu_cost(
            work(flops=1e3, bytes_moved=1e9), big_cluster
        )
        assert compute_heavy.memory_boundedness < 0.1
        assert memory_heavy.memory_boundedness > 0.9

    def test_demand_bw_consistent(self, big_cluster):
        w = work(bytes_moved=14e6)
        breakdown = cpu_cost(w, big_cluster)
        demand = breakdown.demand_bw_gbps(w.bytes_moved)
        assert demand == pytest.approx(
            w.bytes_moved / breakdown.total_s / 1e9
        )
        assert demand <= big_cluster.stream_bw_gbps * 1.01
