"""Seeded serving scenarios: the soak workload behind CLI, CI, tests.

One scenario definition drives three consumers - ``repro serve``'s
demo mode, the CI smoke job, and the acceptance soak test - so they
all exercise the same code path and the determinism guarantee is
tested on exactly what ships.

The soak scenario packs three concurrent tenants onto disjoint PU
partitions of one SoC (partition cap 1, so pixel7a's four clusters
hold all three with one to spare), pins the drift victim to a known
class so interference can be injected *on* that class mid-run, and
adds a fourth submission whose required class is already taken - the
admission controller must reject it (no-oversubscription with the
backpressure queue disabled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.apps.synthetic import build_synthetic_application
from repro.core.stage import Application, Stage
from repro.errors import ServeError
from repro.kernels.base import CPU, GPU
from repro.serve.server import DriftSpec, PipelineServer, ServerConfig
from repro.serve.tenant import TenantSpec
from repro.soc.platforms import get_platform
from repro.soc.workprofile import WorkProfile

#: The class the drift victim is pinned to (and drift injected on).
DRIFT_CLASS = "big"
#: The class the high-priority tenant and the doomed probe both need.
CONTESTED_CLASS = "gpu"


def _memory_bound_application(seed: int, stage_count: int) -> Application:
    """The drift victim's workload: a bandwidth-limited streaming app.

    Memory-bound stages are nearly core-class-insensitive (every CPU
    cluster is limited by the same DRAM), which is what makes fleeing
    a contended cluster *profitable*: the weaker core costs little,
    the time-sharing penalty on the contended one costs a lot.  A
    compute-bound app would rather sit out the drift on the big cores.
    """

    def kernel(task):
        task["payload"] += np.float32(1.0)

    rng = np.random.default_rng(600_000 + seed)
    stages = []
    for index in range(stage_count):
        flops = 18e6 * float(rng.uniform(0.85, 1.15))
        stages.append(Stage(
            name=f"stream-{index}",
            work=WorkProfile(
                flops=flops,
                bytes_moved=flops / 2.0,  # 2 flop/byte: DRAM-limited
                parallelism=2e5,
                parallel_fraction=0.98,
                divergence=0.05,
                irregularity=0.10,
                cpu_efficiency=0.45,
                gpu_efficiency=0.30,
            ),
            kernels={CPU: kernel, GPU: kernel},
        ))

    def make_task(task_seed: int) -> Dict[str, np.ndarray]:
        task_rng = np.random.default_rng(700_000 + task_seed)
        return {"payload": task_rng.random(256).astype(np.float32)}

    return Application(
        name=f"serve-membound-{seed}",
        stages=stages,
        make_task=make_task,
        description="Bandwidth-limited streaming pipeline (soak drift "
                    "victim)",
        input_kind="Synthetic",
    )


@dataclass(frozen=True)
class SoakScenario:
    """Parameters of one deterministic soak run."""

    platform_name: str = "pixel7a"
    seed: int = 7
    windows: int = 30
    window_tasks: int = 10
    stage_count: int = 3
    drift_start_tick: int = 4
    drift_fraction: float = 0.8
    drift_demand_gbps: float = 4.0
    max_ticks: int = 48

    def __post_init__(self) -> None:
        if self.windows < 8:
            raise ServeError(
                "soak needs >= 8 windows for a meaningful p95"
            )
        if not 0.0 < self.drift_fraction <= 1.0:
            raise ServeError("drift_fraction must be in (0, 1]")
        if self.drift_start_tick < 2:
            raise ServeError(
                "drift must start after the baseline window (tick >= 2)"
            )


def build_soak_server(
    scenario: SoakScenario, reschedule: bool = True
) -> PipelineServer:
    """A fully-loaded server, ready to :meth:`~PipelineServer.run`.

    Tenants (admitted in submission order on tick 0):

    * ``tenant-gpu``   - needs the GPU (hard), priority 0;
    * ``tenant-drift`` - *prefers* the drift class (soft, so the
      rescheduler may flee it later), priority 1;
    * ``tenant-bg``    - prefers the little cores, priority 0; leaves
      the medium cluster free as the drift victim's escape hatch;
    * ``tenant-probe`` - needs the GPU *after* ``tenant-gpu`` holds it;
      with the queue disabled, admission must reject it.
    """
    platform = get_platform(scenario.platform_name,
                            seed=scenario.seed)
    for needed in (DRIFT_CLASS, CONTESTED_CLASS, "little"):
        if needed not in platform.schedulable_classes():
            raise ServeError(
                f"soak scenario needs PU class {needed!r}; platform "
                f"{platform.name!r} lacks it"
            )
    server = PipelineServer(
        platform,
        seed=scenario.seed,
        config=ServerConfig(
            max_ticks=scenario.max_ticks,
            queue_capacity=0,
            max_partition_classes=1,
            candidates_k=8,
            reschedule=reschedule,
        ),
    )

    def app(offset: int):
        return build_synthetic_application(
            seed=scenario.seed + offset,
            stage_count=scenario.stage_count,
        )

    common = dict(windows=scenario.windows,
                  window_tasks=scenario.window_tasks)
    server.submit(TenantSpec(
        name="tenant-gpu", application=app(1), priority=0,
        required_classes=frozenset({CONTESTED_CLASS}), **common,
    ))
    server.submit(TenantSpec(
        name="tenant-drift",
        application=_memory_bound_application(
            scenario.seed + 2, scenario.stage_count
        ),
        priority=1,
        preferred_classes=frozenset({DRIFT_CLASS}), **common,
    ))
    server.submit(TenantSpec(
        name="tenant-bg", application=app(3), priority=0,
        preferred_classes=frozenset({"little"}), **common,
    ))
    # Same application as tenant-gpu: exercises the plan cache *and*
    # guarantees its required class is already held.
    server.submit(TenantSpec(
        name="tenant-probe", application=app(1), priority=2,
        required_classes=frozenset({CONTESTED_CLASS}), **common,
    ))
    server.inject_drift(DriftSpec(
        start_tick=scenario.drift_start_tick,
        busy={DRIFT_CLASS: scenario.drift_fraction},
        demand_gbps=scenario.drift_demand_gbps,
    ))
    return server


def run_soak(
    scenario: SoakScenario,
    reschedule: bool = True,
    timeout_s: float = 300.0,
) -> Tuple[PipelineServer, "object"]:
    """Build, run, and drain one soak; returns (server, report)."""
    server = build_soak_server(scenario, reschedule=reschedule)
    report = server.run(timeout_s=timeout_s)
    return server, report
