"""The BetterTogether end-to-end driver (paper Fig. 2, steps 3-5).

Wires the three components into the fully automated flow:

1. **BT-Profiler** collects the interference-aware profiling table.
2. **BT-Optimizer** solves for K diverse low-gapness, low-latency
   candidates.
3. **Autotuning** executes the top candidates on the device and selects
   the measured best.

``BetterTogether.run()`` returns a :class:`DeploymentPlan` holding the
selected schedule, the full candidate log, and enough provenance to
regenerate every evaluation artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.autotuner import Autotuner, AutotuneResult
from repro.core.optimizer import (
    DEFAULT_GAP_SLACK,
    DEFAULT_K,
    BTOptimizer,
    OptimizationResult,
)
from repro.core.profiler import INTERFERENCE, BTProfiler, ProfilingTable
from repro.core.schedule import Schedule, validate_schedule
from repro.core.stage import Application
from repro.runtime.simulator import (
    SimulatedPipelineExecutor,
    SimulatedRunResult,
)
from repro.soc.platform import Platform


@dataclass
class DeploymentPlan:
    """Everything BetterTogether produced for one (app, platform) pair."""

    application: Application
    platform: Platform
    table: ProfilingTable
    optimization: OptimizationResult
    autotune: AutotuneResult

    @property
    def schedule(self) -> Schedule:
        """The deployed schedule: autotuning's measured best."""
        return self.autotune.measured_best.candidate.schedule

    @property
    def predicted_latency_s(self) -> float:
        return self.autotune.measured_best.predicted_latency_s

    @property
    def measured_latency_s(self) -> float:
        return self.autotune.measured_best.measured_latency_s

    def execute(self, n_tasks: int = 30,
                fault_injector=None) -> SimulatedRunResult:
        """Deploy: stream tasks through the selected pipeline.

        Args:
            n_tasks: Tasks to stream.
            fault_injector: Optional
                :class:`~repro.runtime.faults.FaultInjector` perturbing
                the run (resilience studies).
        """
        validate_schedule(
            self.schedule, self.application,
            available_pus=self.platform.schedulable_classes(),
        )
        executor = SimulatedPipelineExecutor(
            self.application, self.schedule.chunks(), self.platform,
            fault_injector=fault_injector,
        )
        return executor.run(n_tasks)

    def summary(self) -> str:
        """Human-readable multi-line plan description."""
        lines = [
            f"BetterTogether plan: {self.application.name} on "
            f"{self.platform.display_name}",
            f"  schedule: {self.schedule.describe(self.application)}",
            f"  predicted {self.predicted_latency_s * 1e3:.3f} ms, "
            f"measured {self.measured_latency_s * 1e3:.3f} ms per task",
            f"  candidates evaluated: {len(self.autotune.entries)} "
            f"(of {len(self.optimization.candidates)} generated)",
            f"  autotuning gain over predicted-best: "
            f"{self.autotune.autotuning_gain:.2f}x",
        ]
        return "\n".join(lines)


class BetterTogether:
    """The flexible scheduling framework, end to end.

    Args:
        platform: Target system specification (Fig. 2 input 2).
        repetitions: Profiling repetitions per table entry.
        k: Optimizer candidate count (level 2).
        gap_slack: Utilization-threshold slack (level 1 filter).
        autotune_top: How many candidates level 3 actually executes
            (default: all K, like the paper's 20-candidate campaign).
        eval_tasks: Tasks streamed per autotuning measurement.
        time_budget_s: Optional wall-clock budget for the optimizer's
            solver phase; expiry degrades to the greedy best-PU
            schedule instead of raising.
    """

    def __init__(
        self,
        platform: Platform,
        repetitions: int = 30,
        k: int = DEFAULT_K,
        gap_slack: float = DEFAULT_GAP_SLACK,
        autotune_top: Optional[int] = None,
        eval_tasks: int = 30,
        time_budget_s: Optional[float] = None,
    ):
        self.platform = platform
        self.profiler = BTProfiler(platform, repetitions=repetitions)
        self.k = k
        self.gap_slack = gap_slack
        self.autotune_top = autotune_top
        self.eval_tasks = eval_tasks
        self.time_budget_s = time_budget_s

    def profile(self, application: Application,
                mode: str = INTERFERENCE) -> ProfilingTable:
        """Step 3: collect the profiling table."""
        return self.profiler.profile(application, mode=mode)

    def optimize(self, application: Application,
                 table: ProfilingTable) -> OptimizationResult:
        """Step 4: generate candidate schedules (levels 1 + 2)."""
        optimizer = BTOptimizer(
            application,
            table.restricted(self.platform.schedulable_classes()),
            k=self.k,
            gap_slack=self.gap_slack,
            time_budget_s=self.time_budget_s,
        )
        return optimizer.optimize()

    def autotune(self, application: Application,
                 optimization: OptimizationResult) -> AutotuneResult:
        """Step 5 (selection): measure top candidates on the device."""
        tuner = Autotuner(
            application, self.platform, eval_tasks=self.eval_tasks
        )
        return tuner.tune(optimization, top=self.autotune_top)

    def run(self, application: Application) -> DeploymentPlan:
        """The fully automated end-to-end flow."""
        table = self.profile(application)
        optimization = self.optimize(application, table)
        autotune = self.autotune(application, optimization)
        return DeploymentPlan(
            application=application,
            platform=self.platform,
            table=table,
            optimization=optimization,
            autotune=autotune,
        )

    def deploy_adaptive(self, plan: DeploymentPlan,
                        drift_threshold: float = 0.25,
                        window_tasks: int = 20):
        """Wrap a plan in an adaptive, fault-recovering deployment.

        The returned
        :class:`~repro.runtime.adaptive.AdaptivePipeline` executes the
        plan in windows, re-ranks the cached candidates on latency
        drift, and - fed a fault injector - survives permanent PU
        dropout by falling back to the best cached candidate avoiding
        the dead PU.  This is the production serving loop the static
        plan alone lacks.
        """
        # Imported lazily: repro.runtime.adaptive pulls in the
        # autotuner, which imports this package.
        from repro.runtime.adaptive import AdaptivePipeline

        return AdaptivePipeline(
            application=plan.application,
            platform=self.platform,
            candidates=plan.optimization.candidates,
            drift_threshold=drift_threshold,
            window_tasks=window_tasks,
            eval_tasks=self.eval_tasks,
        )

    def migrate(self, plan: DeploymentPlan) -> DeploymentPlan:
        """Re-deploy an existing plan onto *this* framework's platform.

        Extension beyond the paper, motivated by its own portability
        observation (section 1: schedules are device-specific) and by
        real deployments that flip power modes at run time: when the
        target changes, the cheap move is to re-run only level 3 -
        re-measure the cached candidates on the new platform and pick a
        new winner - skipping the ~6-minute profiling pass.  When the
        old candidates reference PU classes the new platform cannot
        schedule (e.g. migrating off a Pixel's medium cores to a
        Jetson), the full flow runs instead.

        Returns a new plan; the input plan is untouched.
        """
        schedulable = set(self.platform.schedulable_classes())
        usable = [
            candidate
            for candidate in plan.optimization.candidates
            if set(candidate.schedule.pu_classes_used) <= schedulable
        ]
        if not usable:
            return self.run(plan.application)
        autotune = Autotuner(
            plan.application, self.platform, eval_tasks=self.eval_tasks
        ).tune(usable, top=self.autotune_top)
        return DeploymentPlan(
            application=plan.application,
            platform=self.platform,
            table=plan.table,
            optimization=plan.optimization,
            autotune=autotune,
        )
