"""Lint fixture (never imported): UNTAGGED-SPAN violations."""

from repro.runtime import trace


def handmade(chunk, pu, task):
    # Direct construction bypasses the tagging factory.
    return trace.Span(chunk, pu, task, 0.0, 1.0)


def handmade_bare(Span):
    return Span(chunk_index=0, pu_class="big", task_id=0,
                start_s=0.0, end_s=1.0)
