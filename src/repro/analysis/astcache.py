"""Shared parsed-AST cache for the static analyses.

``repro lint`` and ``repro flow`` both start from the same parsed
modules; parsing dominates a lint run, so running both tools naively
would pay it twice.  This module owns one process-wide cache of
:class:`ParsedModule` entries - source text, AST, and per-tool
suppression tables - validated against the file's (mtime, size) so
editors and test fixtures that rewrite files are picked up.

The cache also centralises suppression-comment parsing.  Both tools
use the same grammar::

    # bt-lint: disable=RULE-ID[,RULE-ID...]
    # bt-flow: disable=RULE-ID[,RULE-ID...] -- justification text

``ALL`` disables every rule on that line.  The optional ``--`` suffix
carries a human justification; ``repro flow`` *requires* it (an
unjustified ``bt-flow`` suppression is itself a finding), ``repro
lint`` ignores it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Suppression:
    """One suppression comment: the rule ids and their justification."""

    rule_ids: Tuple[str, ...]
    justification: Optional[str]

    def covers(self, rule_id: str) -> bool:
        return "ALL" in self.rule_ids or rule_id in self.rule_ids


@dataclass
class ParsedModule:
    """One parsed source file plus derived, memoised artifacts."""

    path: str
    source: str
    tree: ast.Module
    stat_key: Tuple[int, int]  # (mtime_ns, size) at parse time
    _suppressions: Dict[str, Dict[int, Suppression]] = field(
        default_factory=dict
    )

    def suppressions(self, tool: str) -> Dict[int, Suppression]:
        """Line (1-based) -> :class:`Suppression` for one tool tag."""
        table = self._suppressions.get(tool)
        if table is None:
            table = parse_suppressions(self.source, tool)
            self._suppressions[tool] = table
        return table


def _suppress_re(tool: str) -> re.Pattern:
    return re.compile(
        rf"#\s*{re.escape(tool)}:\s*disable="
        rf"([A-Za-z0-9_\-, ]+?)(?:\s*--\s*(.*\S))?\s*$"
    )


def parse_suppressions(source: str, tool: str) -> Dict[int, Suppression]:
    """Parse one tool's suppression comments out of a module source."""
    tag = tool + ":"
    if tag not in source:  # C-level gate; almost every file is clean
        return {}
    pattern = _suppress_re(tool)
    table: Dict[int, Suppression] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if tag not in line:
            continue
        match = pattern.search(line)
        if match is None:
            continue
        ids = tuple(sorted({
            part.strip().upper()
            for part in match.group(1).split(",") if part.strip()
        }))
        table[lineno] = Suppression(rule_ids=ids,
                                    justification=match.group(2))
    return table


def suppressed_at(rule_id: str, line: int,
                  table: Dict[int, Suppression]) -> Optional[Suppression]:
    """The suppression covering ``rule_id`` on ``line`` (or the line
    directly above it), if any."""
    for lineno in (line, line - 1):
        suppression = table.get(lineno)
        if suppression is not None and suppression.covers(rule_id):
            return suppression
    return None


class AstCache:
    """Process-wide (path -> :class:`ParsedModule`) cache.

    Entries are revalidated against the file's ``(mtime_ns, size)`` on
    every :meth:`get`, so stale trees are never served; ``hits`` /
    ``misses`` expose the sharing the analysis-performance benchmark
    asserts on.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, ParsedModule] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _stat_key(path: Path) -> Tuple[int, int]:
        stat = path.stat()
        return (stat.st_mtime_ns, stat.st_size)

    def get(self, path: Path) -> ParsedModule:
        """The parsed module for ``path``, parsing at most once.

        Raises:
            AnalysisError: The file cannot be read or does not parse.
        """
        path = Path(path)
        key = str(path)
        try:
            stat_key = self._stat_key(path)
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        cached = self._entries.get(key)
        if cached is not None and cached.stat_key == stat_key:
            self.hits += 1
            return cached
        self.misses += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        module = parse_module(source, key, stat_key=stat_key)
        self._entries[key] = module
        return module


def parse_module(source: str, path: str,
                 stat_key: Tuple[int, int] = (0, 0)) -> ParsedModule:
    """Parse in-memory source into an (uncached) :class:`ParsedModule`.

    Raises:
        AnalysisError: The source does not parse.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    return ParsedModule(path=path, source=source, tree=tree,
                        stat_key=stat_key)


_GLOBAL_CACHE = AstCache()


def ast_cache() -> AstCache:
    """The process-global cache shared by ``lint`` and ``flow``."""
    return _GLOBAL_CACHE


def legacy_suppression_lines(
    table: Dict[int, Suppression],
) -> Dict[int, Set[str]]:
    """Adapter to the linter's historic ``{line: {rule ids}}`` shape."""
    return {line: set(s.rule_ids) for line, s in table.items()}
