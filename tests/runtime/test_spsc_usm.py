"""Tests for the SPSC queue, UsmBuffer and TaskObject."""

import threading
import time

import numpy as np
import pytest

from repro.errors import PipelineError, QueueClosedError
from repro.runtime import SpscQueue, TaskObject, UsmBuffer


class TestSpscQueue:
    def test_fifo_order(self):
        q = SpscQueue(capacity=4)
        for i in range(4):
            q.push(i)
        assert [q.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_len_tracks_occupancy(self):
        q = SpscQueue(capacity=3)
        assert len(q) == 0
        q.push("a")
        q.push("b")
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_try_push_full(self):
        q = SpscQueue(capacity=1)
        assert q.try_push(1)
        assert not q.try_push(2)

    def test_try_pop_empty(self):
        q = SpscQueue(capacity=1)
        with pytest.raises(IndexError):
            q.try_pop()

    def test_push_timeout(self):
        q = SpscQueue(capacity=1)
        q.push(1)
        with pytest.raises(TimeoutError):
            q.push(2, timeout=0.05)

    def test_pop_timeout(self):
        q = SpscQueue(capacity=1)
        with pytest.raises(TimeoutError):
            q.pop(timeout=0.05)

    def test_closed_push_raises(self):
        q = SpscQueue(capacity=1)
        q.close()
        with pytest.raises(QueueClosedError):
            q.push(1)

    def test_closed_queue_drains_then_raises(self):
        q = SpscQueue(capacity=2)
        q.push("x")
        q.close()
        assert q.pop() == "x"
        with pytest.raises(QueueClosedError):
            q.pop()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpscQueue(capacity=0)

    def test_threaded_producer_consumer(self):
        q = SpscQueue(capacity=8)
        n = 2000
        received = []

        def producer():
            for i in range(n):
                q.push(i)

        def consumer():
            for _ in range(n):
                received.append(q.pop())

        threads = [threading.Thread(target=producer),
                   threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert received == list(range(n))

    def test_blocked_consumer_wakes_on_close(self):
        q = SpscQueue(capacity=1)
        outcome = []

        def consumer():
            try:
                q.pop(timeout=5)
            except QueueClosedError:
                outcome.append("closed")

        t = threading.Thread(target=consumer)
        t.start()
        q.close()
        t.join(timeout=5)
        assert outcome == ["closed"]

    def test_blocked_producer_wakes_on_close(self):
        # The producer thread does *all* the pushing (including the
        # fill) so the queue keeps its single-producer discipline under
        # the concurrency checker; close() may come from any thread.
        q = SpscQueue(capacity=1)
        outcome = []
        filled = threading.Event()

        def producer():
            q.push("fill")
            filled.set()
            try:
                q.push("blocked", timeout=5)
            except QueueClosedError:
                outcome.append("closed")

        t = threading.Thread(target=producer)
        t.start()
        filled.wait(timeout=5)
        time.sleep(0.05)  # let the producer actually block while full
        q.close()
        t.join(timeout=5)
        assert outcome == ["closed"]

    def test_ring_wraparound_interleaved(self):
        """Head/tail must wrap cleanly when pushes and pops interleave
        at partial occupancy (many times around a small ring)."""
        q = SpscQueue(capacity=3)
        popped = []
        pushed = iter(range(100))
        q.push(next(pushed))
        q.push(next(pushed))
        for _ in range(49):
            popped.append(q.pop())
            q.push(next(pushed))
            popped.append(q.pop())
            q.push(next(pushed))
        while len(q):
            popped.append(q.pop())
        assert popped == list(range(100))

    def test_pop_timeout_is_deadline_not_per_wakeup(self):
        """A slow-but-live peer must not extend the bound: wakeups that
        find the queue still empty wait only for the remainder.  (The
        old per-``wait`` timeout restarted the clock on every notify.)"""
        q = SpscQueue(capacity=1)
        stop = threading.Event()

        def waker():  # spurious notifies, faster than the timeout
            for _ in range(100):  # bounded so a regression can't hang
                if stop.is_set():
                    break
                with q._lock:
                    q._not_empty.notify_all()
                time.sleep(0.02)

        t = threading.Thread(target=waker)
        t.start()
        start = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                q.pop(timeout=0.15)
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            t.join(timeout=5)
        assert elapsed < 2.0

    def test_push_timeout_is_deadline_not_per_wakeup(self):
        q = SpscQueue(capacity=1)
        q.push("fill")
        stop = threading.Event()

        def waker():
            for _ in range(100):  # bounded so a regression can't hang
                if stop.is_set():
                    break
                with q._lock:
                    q._not_full.notify_all()
                time.sleep(0.02)

        t = threading.Thread(target=waker)
        t.start()
        start = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                q.push("blocked", timeout=0.15)
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            t.join(timeout=5)
        assert elapsed < 2.0


class TestUsmBuffer:
    def test_host_and_device_share_storage(self):
        buf = UsmBuffer("b", (4,), np.float32)
        buf.host_view()[0] = 7.0
        assert buf.device_view()[0] == 7.0

    def test_device_only_scope(self):
        buf = UsmBuffer("scratch", (4,), np.int32, scope="device")
        buf.device_view()
        with pytest.raises(PipelineError):
            buf.host_view()

    def test_host_only_scope(self):
        buf = UsmBuffer("host", (4,), np.int32, scope="host")
        buf.host_view()
        with pytest.raises(PipelineError):
            buf.device_view()

    def test_bad_scope(self):
        with pytest.raises(PipelineError):
            UsmBuffer("b", (1,), np.int32, scope="vram")

    def test_attach_log(self):
        buf = UsmBuffer("b", (1,), np.int32)
        buf.attach_async("gpu")
        buf.attach_async("big")
        assert buf.attach_log == ("gpu", "big")

    def test_view_for_pu(self):
        buf = UsmBuffer("b", (2,), np.float32)
        assert buf.view_for("gpu") is buf.device_view()
        assert buf.view_for("big") is buf.host_view()

    def test_fill_and_zero(self):
        buf = UsmBuffer("b", (3,), np.float32)
        buf.fill(2.5)
        assert np.all(buf.host_view() == 2.5)
        buf.zero()
        assert np.all(buf.host_view() == 0.0)

    def test_nbytes(self):
        assert UsmBuffer("b", (4,), np.float64).nbytes == 32


class TestTaskObject:
    def test_allocate_and_index(self):
        task = TaskObject(0)
        task.allocate("codes", (8,), np.uint32)
        task["codes"][:] = 3
        assert np.all(task["codes"] == 3)

    def test_duplicate_allocation_rejected(self):
        task = TaskObject(0)
        task.allocate("x", (1,), np.int64)
        with pytest.raises(PipelineError):
            task.allocate("x", (1,), np.int64)

    def test_setitem_copies_into_existing_buffer(self):
        task = TaskObject(0)
        task.allocate("x", (3,), np.float32)
        original = task.buffer("x").host_view()
        task["x"] = np.array([1, 2, 3], dtype=np.float32)
        assert task.buffer("x").host_view() is original
        assert np.all(original == [1, 2, 3])

    def test_setitem_adopts_new_buffer(self):
        task = TaskObject(0)
        task["fresh"] = np.arange(4)
        assert "fresh" in task
        assert len(task) == 1

    def test_constants(self):
        task = TaskObject(0)
        task.set_constant("n", 128)
        assert task.constant("n") == 128
        with pytest.raises(PipelineError):
            task.constant("missing")

    def test_synchronize_records_attach_hints(self):
        task = TaskObject(0)
        task.allocate("a", (1,), np.int64)
        task.allocate("b", (1,), np.int64)
        task.synchronize_for("gpu")
        assert task.buffer("a").attach_log == ("gpu",)
        assert task.buffer("b").attach_log == ("gpu",)

    def test_recycle_bumps_generation(self):
        task = TaskObject(3)
        assert task.sequence == 3
        task.recycle(7)
        assert task.sequence == 7
        assert task.generation == 1

    def test_total_bytes(self):
        task = TaskObject(0)
        task.allocate("a", (4,), np.float32)
        task.allocate("b", (2,), np.float64)
        assert task.total_bytes() == 32

    def test_mapping_protocol(self):
        task = TaskObject(0)
        task.allocate("a", (1,), np.int64)
        assert list(iter(task)) == ["a"]
        del task["a"]
        assert len(task) == 0
