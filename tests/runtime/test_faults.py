"""Tests for fault injection and the recovery machinery it exercises."""

import numpy as np
import pytest

from repro.apps import build_octree_application
from repro.core import Application, Chunk, Stage
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.errors import (
    PipelineError,
    PuFailureError,
    SchedulingError,
    TransientKernelFault,
)
from repro.runtime import (
    AdaptivePipeline,
    FaultInjector,
    FaultPlan,
    KernelFaultSpec,
    PuDropoutSpec,
    RetryPolicy,
    SimulatedPipelineExecutor,
    SlowdownSpec,
    ThreadedPipelineExecutor,
)
from repro.runtime.faults import (
    clear_quarantine,
    quarantine_task,
    task_failure,
    TaskFailure,
)
from repro.runtime.task_object import TaskObject
from repro.soc import WorkProfile, get_platform


def work():
    return WorkProfile(flops=1e3, bytes_moved=1e3, parallelism=4.0)


def make_counting_app(n_stages=3):
    """Each stage increments a counter; output proves order + coverage."""

    def stage_kernel(index):
        def kernel(task):
            trace = task["trace"]
            trace[index] = trace[index - 1] + 1 if index > 0 else 1
        return kernel

    stages = [
        Stage(f"s{i}", work(),
              {"cpu": stage_kernel(i), "gpu": stage_kernel(i)})
        for i in range(n_stages)
    ]

    def make_task(seed):
        return {"trace": np.zeros(n_stages, dtype=np.int64),
                "seed": np.array([seed], dtype=np.int64)}

    def validate(task):
        expected = np.arange(1, n_stages + 1)
        if not np.array_equal(np.asarray(task["trace"]), expected):
            raise ValueError(f"bad trace {task['trace']}")

    return Application("counting", stages, make_task=make_task,
                       validate_task=validate)


class TestFaultPlan:
    def test_random_is_deterministic_per_seed(self):
        kwargs = dict(n_tasks=10, n_stages=4, kernel_fault_rate=0.4,
                      slowdown_rate=0.3)
        a = FaultPlan.random(seed=7, **kwargs)
        b = FaultPlan.random(seed=7, **kwargs)
        c = FaultPlan.random(seed=8, **kwargs)
        assert a.kernel_faults == b.kernel_faults
        assert a.slowdowns == b.slowdowns
        assert (a.kernel_faults, a.slowdowns) != (c.kernel_faults,
                                                 c.slowdowns)

    def test_rates_validated(self):
        with pytest.raises(PipelineError):
            FaultPlan.random(seed=0, n_tasks=2, n_stages=2,
                             kernel_fault_rate=1.5)
        with pytest.raises(PipelineError):
            FaultPlan.random(seed=0, n_tasks=2, n_stages=2,
                             slowdown_rate=-0.1)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(dropouts=[PuDropoutSpec("gpu")])

    def test_spec_validation(self):
        with pytest.raises(PipelineError):
            SlowdownSpec(task_id=0, stage_index=0, factor=0.5)
        with pytest.raises(PipelineError):
            SlowdownSpec(task_id=0, stage_index=0, delay_s=-1.0)
        with pytest.raises(PipelineError):
            PuDropoutSpec("gpu", after_task=-1)


class TestRetryPolicy:
    def test_exponential_backoff_with_ceiling(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.01,
                             multiplier=2.0, max_backoff_s=0.03)
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(2) == pytest.approx(0.02)
        assert policy.backoff_s(3) == pytest.approx(0.03)  # capped
        assert policy.backoff_s(4) is None  # budget exhausted

    def test_validation(self):
        with pytest.raises(PipelineError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PipelineError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(PipelineError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(PipelineError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(PipelineError):
            RetryPolicy(jitter=1.0)

    def test_jitter_is_opt_in(self):
        # Without a draw the backoff is the undithered exponential -
        # the exact values the test above asserts stay valid even for
        # a jittered policy.
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.01,
                             jitter=0.5)
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(1, u=None) == pytest.approx(0.01)

    def test_jitter_dithers_symmetrically(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.01,
                             jitter=0.5)
        # b * (1 + jitter * (2u - 1)): u=0 is the low edge, u=0.5 the
        # undithered center, u->1 approaches the high edge.
        assert policy.backoff_s(1, u=0.0) == pytest.approx(0.005)
        assert policy.backoff_s(1, u=0.5) == pytest.approx(0.01)
        assert policy.backoff_s(1, u=0.75) == pytest.approx(0.0125)

    def test_jitter_draw_bounds_validated(self):
        policy = RetryPolicy(jitter=0.5)
        with pytest.raises(PipelineError):
            policy.backoff_s(1, u=1.0)
        with pytest.raises(PipelineError):
            policy.backoff_s(1, u=-0.01)

    def test_zero_jitter_ignores_the_draw(self):
        policy = RetryPolicy(base_backoff_s=0.01)
        assert policy.backoff_s(1, u=0.0) == pytest.approx(0.01)

    def test_backoff_draws_are_seeded(self):
        a = FaultInjector(FaultPlan(), seed=9)
        b = FaultInjector(FaultPlan(), seed=9)
        other = FaultInjector(FaultPlan(), seed=10)
        draws_a = [a.backoff_draw() for _ in range(8)]
        draws_b = [b.backoff_draw() for _ in range(8)]
        assert draws_a == draws_b
        assert all(0.0 <= u < 1.0 for u in draws_a)
        assert draws_a != [other.backoff_draw() for _ in range(8)]


class TestQuarantineHelpers:
    def test_roundtrip_and_clear(self):
        task = TaskObject(0)
        assert task_failure(task) is None
        failure = TaskFailure(1, 0, 2, "big", "boom")
        quarantine_task(task, failure)
        assert task_failure(task) == failure
        clear_quarantine(task)
        assert task_failure(task) is None


class TestThreadedRecovery:
    def run_app(self, app, n_tasks, **kwargs):
        outputs = {}
        result = ThreadedPipelineExecutor(
            app, [Chunk(0, 2, "big"), Chunk(2, 4, "gpu")], **kwargs
        ).run(
            n_tasks, validate=True,
            on_complete=lambda task, i: outputs.__setitem__(
                i, np.asarray(task["trace"]).copy()),
        )
        return result, outputs

    def test_transient_fault_retried_to_identical_outputs(self):
        """The acceptance path: retry recovers, outputs are bit-equal."""
        app = make_counting_app(4)
        _, clean = self.run_app(app, 5)
        injector = FaultInjector(FaultPlan(kernel_faults=[
            KernelFaultSpec(task_id=2, stage_index=1, fail_attempts=2),
            KernelFaultSpec(task_id=4, stage_index=3, fail_attempts=1),
        ]))
        result, faulty = self.run_app(
            app, 5, fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=1e-5),
        )
        assert result.completed == 5
        assert result.failures == []
        for i in range(5):
            np.testing.assert_array_equal(faulty[i], clean[i])
        report = injector.report()
        assert report.count("kernel-fault") == 3  # 2 + 1 attempts failed
        assert report.count("retry") == 3
        assert report.count("recovery") == 2  # one per faulted stage
        assert result.fault_events == report.events

    def test_retries_exhausted_unwinds_without_isolation(self):
        app = make_counting_app(4)
        injector = FaultInjector(FaultPlan(kernel_faults=[
            KernelFaultSpec(task_id=1, stage_index=2, fail_attempts=None),
        ]))
        with pytest.raises(PipelineError) as info:
            self.run_app(
                app, 4, fault_injector=injector,
                retry_policy=RetryPolicy(max_attempts=2,
                                         base_backoff_s=1e-5),
            )
        assert isinstance(info.value.__cause__, TransientKernelFault)

    def test_isolation_quarantines_poisoned_task(self):
        app = make_counting_app(4)
        injector = FaultInjector(FaultPlan(kernel_faults=[
            KernelFaultSpec(task_id=1, stage_index=1, fail_attempts=None),
        ]))
        result, outputs = self.run_app(
            app, 6, fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=1e-5),
            isolate_failures=True,
        )
        assert result.completed == 6
        assert result.succeeded == 5
        assert result.failed_task_ids == [1]
        failure = result.failures[0]
        assert failure.stage_index == 1 and failure.pu_class == "big"
        # The poisoned task never reached on_complete; the rest did,
        # including later tasks recycled through the same TaskObject.
        assert sorted(outputs) == [0, 2, 3, 4, 5]
        assert injector.report(result.failures).count("quarantine") == 1

    def test_isolation_without_retry_policy(self):
        app = make_counting_app(4)
        injector = FaultInjector(FaultPlan(kernel_faults=[
            KernelFaultSpec(task_id=0, stage_index=3, fail_attempts=1),
        ]))
        result, _ = self.run_app(
            app, 3, fault_injector=injector, isolate_failures=True,
        )
        assert result.failed_task_ids == [0]

    def test_slowdown_delay_logged_and_completes(self):
        app = make_counting_app(4)
        injector = FaultInjector(FaultPlan(slowdowns=[
            SlowdownSpec(task_id=0, stage_index=0, delay_s=0.02),
        ]))
        result, _ = self.run_app(app, 3, fault_injector=injector)
        assert result.completed == 3
        assert injector.report().count("slowdown") == 1

    def test_pu_dropout_unwinds_pipeline(self):
        app = make_counting_app(4)
        injector = FaultInjector(FaultPlan(dropouts=[
            PuDropoutSpec("gpu", after_task=1),
        ]))
        with pytest.raises(PipelineError) as info:
            self.run_app(
                app, 4, fault_injector=injector,
                retry_policy=RetryPolicy(max_attempts=5,
                                         base_backoff_s=1e-5),
                isolate_failures=True,
            )
        # Dropout is permanent: neither retries nor quarantine apply.
        assert isinstance(info.value.__cause__, PuFailureError)
        assert info.value.__cause__.pu_class == "gpu"

    def test_octree_outputs_survive_faults(self):
        """Real kernels: a retried transient fault must not corrupt the
        octree (injection fires before dispatch, so state stays clean)."""
        app = build_octree_application(n_points=400)
        chunks = [Chunk(0, 3, "little"), Chunk(3, 7, "gpu")]

        def run(**kwargs):
            cells = []
            ThreadedPipelineExecutor(app, chunks, **kwargs).run(
                2, validate=True,
                on_complete=lambda task, i: cells.append(
                    int(np.asarray(task["oc_num_cells"])[0])),
            )
            return cells

        clean = run()
        injector = FaultInjector(FaultPlan(kernel_faults=[
            KernelFaultSpec(task_id=1, stage_index=4, fail_attempts=1),
        ]))
        faulty = run(
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=1e-5),
        )
        assert faulty == clean
        assert injector.report().count("recovery") == 1


class TestSimulatedFaults:
    @pytest.fixture(scope="class")
    def app(self):
        return make_counting_app(4)

    def executor(self, app, injector=None):
        return SimulatedPipelineExecutor(
            app, [Chunk(0, 2, "big"), Chunk(2, 4, "gpu")],
            get_platform("jetson_orin_nano"), fault_injector=injector,
        )

    def test_noise_memoization_keeps_runs_identical(self, app):
        fresh = self.executor(app).run(10)
        twice = self.executor(app)
        first = twice.run(10)
        second = twice.run(10)  # served from the noise cache
        assert twice._noise_cache  # the memo actually populated
        assert first.completion_times_s == fresh.completion_times_s
        assert second.completion_times_s == first.completion_times_s

    def test_slowdown_stretches_completion(self, app):
        baseline = self.executor(app).run(6).total_s
        injector = FaultInjector(FaultPlan(slowdowns=[
            SlowdownSpec(task_id=t, stage_index=1, factor=8.0)
            for t in range(6)
        ]))
        slowed = self.executor(app, injector).run(6).total_s
        assert slowed > baseline
        assert injector.report().count("slowdown") == 6

    def test_transient_fault_costs_reexecution(self, app):
        baseline = self.executor(app).run(6).total_s
        injector = FaultInjector(FaultPlan(kernel_faults=[
            KernelFaultSpec(task_id=3, stage_index=2, fail_attempts=2),
        ]))
        faulted = self.executor(app, injector).run(6).total_s
        assert faulted > baseline

    def test_persistent_kernel_fault_raises(self, app):
        injector = FaultInjector(FaultPlan(kernel_faults=[
            KernelFaultSpec(task_id=0, stage_index=0,
                            fail_attempts=None),
        ]))
        with pytest.raises(TransientKernelFault):
            self.executor(app, injector).run(4)

    def test_dropout_raises_pu_failure(self, app):
        injector = FaultInjector(FaultPlan(dropouts=[
            PuDropoutSpec("gpu", after_task=2),
        ]))
        with pytest.raises(PuFailureError) as info:
            self.executor(app, injector).run(6)
        assert info.value.pu_class == "gpu"
        assert "gpu" in injector.dead_pus


class TestAdaptiveFallback:
    @pytest.fixture(scope="class")
    def app(self):
        return build_octree_application(n_points=20_000)

    @pytest.fixture(scope="class")
    def candidates(self, app):
        platform = get_platform("jetson_orin_nano")
        table = BTProfiler(platform, repetitions=3).profile(app)
        return BTOptimizer(
            app, table.restricted(platform.schedulable_classes()), k=6
        ).optimize().candidates

    def make_pipeline(self, app, candidates):
        return AdaptivePipeline(
            application=app,
            platform=get_platform("jetson_orin_nano"),
            candidates=candidates,
            eval_tasks=8,
            window_tasks=10,
        )

    def test_dropout_falls_back_and_keeps_streaming(self, app,
                                                    candidates):
        """The acceptance path: kill a deployed PU mid-window; the
        pipeline re-ranks the cached candidates avoiding it and keeps
        serving, with the report recording dropout and fallback."""
        pipeline = self.make_pipeline(app, candidates)
        victim = pipeline.schedule.pu_classes_used[0]
        assert any(victim not in c.schedule.pu_classes_used
                   for c in candidates)  # a fallback exists
        injector = FaultInjector(FaultPlan(dropouts=[
            PuDropoutSpec(victim, after_task=1),
        ]))
        hit = pipeline.run_window(fault_injector=injector)
        assert hit.fallback
        assert victim not in hit.schedule.pu_classes_used
        assert victim in pipeline.failed_pus
        steady = pipeline.run_window(fault_injector=injector)
        assert steady.measured_latency_s > 0
        assert not steady.fallback
        report = injector.report()
        assert report.count("pu-dropout") == 1
        assert report.count("fallback") == 1

    def test_mark_pu_failed_without_fallback_raises(self, app,
                                                    candidates):
        victim = "gpu"
        only_victim = [
            c for c in candidates
            if victim in c.schedule.pu_classes_used
        ]
        assert only_victim  # precondition
        pipeline = AdaptivePipeline(
            application=app,
            platform=get_platform("jetson_orin_nano"),
            candidates=only_victim,
            eval_tasks=8,
            window_tasks=10,
        )
        with pytest.raises(SchedulingError):
            pipeline.mark_pu_failed(victim)

    def test_mark_unused_pu_does_not_retune(self, app, candidates):
        pipeline = self.make_pipeline(app, candidates)
        used = set(pipeline.schedule.pu_classes_used)
        unused = [
            pu for pu in ("little", "medium", "big", "gpu")
            if pu not in used
            and any(pu not in c.schedule.pu_classes_used
                    for c in candidates)
        ]
        if not unused:
            pytest.skip("deployed schedule uses every fallback-safe PU")
        before = pipeline.schedule
        assert pipeline.mark_pu_failed(unused[0]) is False
        assert pipeline.schedule is before


class TestFailureClassification:
    def test_classify_failure(self):
        from repro.runtime import (
            FAILURE_FATAL,
            FAILURE_TRANSIENT,
            classify_failure,
        )

        assert classify_failure(
            TransientKernelFault("x")) == FAILURE_TRANSIENT
        assert classify_failure(
            PipelineError("bad chunk cover")) == FAILURE_FATAL
        assert classify_failure(
            SchedulingError("bad schedule")) == FAILURE_FATAL
        assert classify_failure(
            ValueError("numerical blow-up")) == FAILURE_TRANSIENT

    def test_fatal_kernel_error_unwinds_instead_of_retrying(self):
        """A ReproError from dispatch is a contract bug: it must not
        burn the retry budget or be quarantined away."""
        calls = {"n": 0}

        def fatal_kernel(task):
            calls["n"] += 1
            raise PipelineError("contract bug")

        stages = [Stage("s0", work(),
                        {"cpu": fatal_kernel, "gpu": fatal_kernel})]
        app = Application(
            "fatal", stages,
            make_task=lambda seed: {"x": np.zeros(1)},
        )
        executor = ThreadedPipelineExecutor(
            app, [Chunk(0, 1, "big")],
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=1e-4),
            isolate_failures=True,
        )
        with pytest.raises(PipelineError):
            executor.run(2)
        assert calls["n"] == 1  # no retry, no quarantine

    def test_generic_kernel_error_still_recovers(self):
        """Non-Repro exceptions from a kernel stay retryable."""
        attempts = {"n": 0}

        def flaky_kernel(task):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise ValueError("transient glitch")

        stages = [Stage("s0", work(),
                        {"cpu": flaky_kernel, "gpu": flaky_kernel})]
        app = Application(
            "flaky", stages,
            make_task=lambda seed: {"x": np.zeros(1)},
        )
        injector = FaultInjector(FaultPlan())
        result = ThreadedPipelineExecutor(
            app, [Chunk(0, 1, "big")],
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=1e-4),
        ).run(2)
        assert result.completed == 2
        assert not result.failures
        kinds = [event.kind for event in injector.events]
        assert "retry" in kinds
        assert "recovery" in kinds
