"""Tests for execution traces and Gantt rendering."""

import pytest

from repro.apps import build_octree_application
from repro.core import Chunk
from repro.runtime import (
    SimulatedPipelineExecutor,
    Span,
    format_gantt,
    pipeline_bubbles,
)
from repro.soc import get_platform
from repro.soc.pu import BIG, GPU, MEDIUM


@pytest.fixture(scope="module")
def traced_run():
    platform = get_platform("pixel7a")
    app = build_octree_application(n_points=20_000)
    executor = SimulatedPipelineExecutor(
        app,
        [Chunk(0, 3, BIG), Chunk(3, 4, GPU), Chunk(4, 7, MEDIUM)],
        platform,
    )
    return executor.run(6, record_trace=True)


class TestSpanRecording:
    def test_one_span_per_chunk_task(self, traced_run):
        assert len(traced_run.spans) == 3 * 6

    def test_spans_ordered_within_chunk(self, traced_run):
        for chunk in range(3):
            spans = sorted(
                (s for s in traced_run.spans if s.chunk_index == chunk),
                key=lambda s: s.task_id,
            )
            for a, b in zip(spans, spans[1:]):
                assert a.end_s <= b.start_s + 1e-12

    def test_task_flows_downstream_in_order(self, traced_run):
        by_key = {
            (s.chunk_index, s.task_id): s for s in traced_run.spans
        }
        for task in range(6):
            for chunk in range(2):
                assert (
                    by_key[(chunk, task)].end_s
                    <= by_key[(chunk + 1, task)].start_s + 1e-12
                )

    def test_durations_positive(self, traced_run):
        assert all(s.duration_s > 0 for s in traced_run.spans)

    def test_tracing_off_by_default(self):
        platform = get_platform("pixel7a")
        app = build_octree_application(n_points=20_000)
        result = SimulatedPipelineExecutor(
            app, [Chunk(0, 7, BIG)], platform
        ).run(3)
        assert result.spans == []

    def test_tracing_does_not_change_timing(self):
        platform = get_platform("pixel7a")
        app = build_octree_application(n_points=20_000)
        chunks = [Chunk(0, 4, BIG), Chunk(4, 7, GPU)]
        plain = SimulatedPipelineExecutor(app, chunks, platform).run(8)
        traced = SimulatedPipelineExecutor(app, chunks, platform).run(
            8, record_trace=True
        )
        assert plain.completion_times_s == traced.completion_times_s


class TestGantt:
    def test_renders_all_chunks(self, traced_run):
        text = format_gantt(traced_run.spans)
        assert "chunk 0 big" in text
        assert "chunk 1 gpu" in text
        assert "chunk 2 medium" in text
        assert "ms" in text

    def test_empty_trace(self):
        assert "empty" in format_gantt([])

    def test_respects_width(self, traced_run):
        text = format_gantt(traced_run.spans, width=40)
        rows = [line for line in text.splitlines() if "|" in line]
        assert all(len(row) <= 60 for row in rows)

    def test_handmade_spans(self):
        spans = [
            Span(0, "big", 0, 0.0, 1.0),
            Span(0, "big", 1, 1.0, 2.0),
            Span(1, "gpu", 0, 1.0, 2.0),
        ]
        text = format_gantt(spans, width=20)
        assert text.count("|") == 4


class TestGanttClipping:
    """Regression tests: span clipping at pathological scale factors.

    The renderer used to multiply by a precomputed ``width / t_end``
    scale, so ``t_end * (width / t_end)`` could round *down* a hair
    below ``width`` and draw right-edge spans into the last real
    column, overwriting whichever task legitimately ended there.
    """

    def test_zero_duration_span_at_right_edge_does_not_overwrite(self):
        # task 1 is a zero-duration span exactly at t_end: it must not
        # stomp the final column of task 0's full-width bar.
        spans = [
            Span(0, "big", 0, 0.0, 1e-9),
            Span(0, "big", 1, 1e-9, 1e-9),
        ]
        text = format_gantt(spans, width=8)
        row = next(l for l in text.splitlines() if "|" in l)
        assert row.split("|")[1] == "0" * 8

    @pytest.mark.parametrize("t_end", [1e-9, 1e-6, 1.0, 3.0, 1e6])
    def test_full_width_span_fills_exactly_width_cells(self, t_end):
        # x / x * width must land on exactly `width` for any scale.
        text = format_gantt([Span(0, "big", 0, 0.0, t_end)], width=10)
        row = next(l for l in text.splitlines() if "|" in l)
        assert row.split("|")[1] == "0" * 10

    def test_sub_column_span_still_visible(self):
        # A span much narrower than one column widens to one cell
        # instead of vanishing.
        spans = [
            Span(0, "big", 0, 0.0, 1.0),
            Span(1, "gpu", 0, 0.25, 0.2500001),
        ]
        text = format_gantt(spans, width=16)
        gpu_row = next(l for l in text.splitlines() if "gpu" in l)
        assert "0" in gpu_row

    def test_sub_column_span_at_right_edge_clamped(self):
        # Widening a right-edge sliver must not write past the chart.
        spans = [
            Span(0, "big", 0, 0.0, 1.0),
            Span(1, "gpu", 0, 1.0 - 1e-12, 1.0),
        ]
        text = format_gantt(spans, width=12)
        gpu_row = next(l for l in text.splitlines() if "gpu" in l)
        cells = gpu_row.split("|")[1]
        assert len(cells) == 12
        assert cells[-1] == "0"

    def test_negative_start_clamps_without_wraparound(self):
        spans = [
            Span(0, "big", 0, -0.5, 0.25),
            Span(0, "big", 1, 0.25, 1.0),
        ]
        text = format_gantt(spans, width=8)
        row = next(l for l in text.splitlines() if "|" in l)
        cells = row.split("|")[1]
        assert len(cells) == 8
        assert cells[0] == "0"  # clamped to column 0, not width-1

    def test_narrow_width_axis_label_does_not_crash(self):
        # Axis padding used to go negative for width < len(label).
        text = format_gantt([Span(0, "big", 0, 0.0, 1.0)], width=4)
        assert "ms" in text


class TestMultiTenantGantt:
    """Tenant-tagged spans must render one section per tenant."""

    def interleaved_spans(self):
        # Two tenants' windows genuinely interleave in virtual time.
        return [
            Span(0, "big", 0, 0.0, 1.0, tenant="tenant-a"),
            Span(0, "gpu", 0, 0.5, 1.5, tenant="tenant-b"),
            Span(0, "big", 1, 1.0, 2.0, tenant="tenant-a"),
            Span(0, "gpu", 1, 1.5, 2.5, tenant="tenant-b"),
            Span(1, "little", 0, 1.0, 2.0, tenant="tenant-a"),
        ]

    def test_one_section_per_tenant(self):
        text = format_gantt(self.interleaved_spans(), width=30)
        assert text.count("tenant tenant-a:") == 1
        assert text.count("tenant tenant-b:") == 1
        # tenant-a has two chunk rows, tenant-b one.
        a_section = text.split("tenant tenant-b:")[0]
        assert a_section.count("|") == 4

    def test_sections_sorted_by_tenant(self):
        text = format_gantt(self.interleaved_spans(), width=30)
        assert (text.index("tenant tenant-a:")
                < text.index("tenant tenant-b:"))

    def test_sections_share_the_time_axis(self):
        spans = self.interleaved_spans()
        text = format_gantt(spans, width=40)
        # One trailing axis line, scaled to the global end time.
        assert text.count("ms") == 1
        assert "2500.00 ms" in text

    def test_untagged_spans_render_last(self):
        spans = self.interleaved_spans() + [
            Span(0, "medium", 7, 0.0, 0.5)
        ]
        text = format_gantt(spans, width=30)
        assert "(untagged)" in text
        assert (text.index("tenant tenant-b:")
                < text.index("(untagged)"))

    def test_untagged_only_trace_has_no_sections(self, traced_run):
        assert "tenant" not in format_gantt(traced_run.spans)


class TestBubbles:
    def test_back_to_back_has_no_bubble(self):
        spans = [
            Span(0, "big", 0, 0.0, 1.0),
            Span(0, "big", 1, 1.0, 2.0),
        ]
        assert pipeline_bubbles(spans)[0] == pytest.approx(0.0)

    def test_gap_creates_bubble(self):
        spans = [
            Span(0, "big", 0, 0.0, 1.0),
            Span(0, "big", 1, 3.0, 4.0),
        ]
        assert pipeline_bubbles(spans)[0] == pytest.approx(0.5)

    def test_bottleneck_chunk_has_smallest_bubble(self, traced_run):
        bubbles = pipeline_bubbles(traced_run.spans)
        busiest = max(
            traced_run.chunk_busy_s,
            key=lambda i: traced_run.chunk_busy_s[i],
        )
        assert bubbles[busiest] <= min(bubbles.values()) + 0.15
