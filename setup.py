"""Legacy setuptools shim.

``pip install -e .`` needs the ``wheel`` package for PEP 517 editable
builds; fully-offline environments without it can fall back to::

    python setup.py develop --user

(or simply add ``<repo>/src`` to ``PYTHONPATH`` - the repository's
``conftest.py`` does this automatically for pytest runs).
"""

from setuptools import setup

setup()
