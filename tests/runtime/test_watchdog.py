"""Tests for watchdog supervision: stall detection, cancellation, recovery.

The acceptance property: a deliberately blocked dispatch (an injected
stall orders of magnitude longer than the run) is detected within the
stall timeout, cancelled, and routed through quarantine so the run
completes - with the stall visible in the FaultReport.
"""

import time

import numpy as np
import pytest

from repro.core import Application, Chunk, Stage
from repro.errors import PipelineError, StallError
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    Heartbeat,
    RetryPolicy,
    SlowdownSpec,
    ThreadedPipelineExecutor,
    Watchdog,
    WatchdogConfig,
)
from repro.runtime.faults import DEADLINE_OVERRUN, STALL, KernelFaultSpec
from repro.soc import WorkProfile


def make_app(n_stages=3):
    def stage_kernel(index):
        def kernel(task):
            trace = task["trace"]
            trace[index] = trace[index - 1] + 1 if index > 0 else 1
        return kernel

    work = WorkProfile(flops=1e3, bytes_moved=1e3, parallelism=4.0)
    stages = [
        Stage(f"s{i}", work,
              {"cpu": stage_kernel(i), "gpu": stage_kernel(i)})
        for i in range(n_stages)
    ]

    def make_task(seed):
        return {"trace": np.zeros(n_stages, dtype=np.int64)}

    def validate(task):
        expected = np.arange(1, n_stages + 1)
        if not np.array_equal(np.asarray(task["trace"]), expected):
            raise ValueError(f"bad trace {task['trace']}")

    return Application("counting", stages, make_task=make_task,
                       validate_task=validate)


CHUNKS = [Chunk(0, 1, "cpu"), Chunk(1, 3, "gpu")]


class TestWatchdogConfig:
    def test_thresholds_validated(self):
        with pytest.raises(PipelineError):
            WatchdogConfig(stall_timeout_s=0.0)
        with pytest.raises(PipelineError):
            WatchdogConfig(stall_timeout_s=1.0, chunk_deadline_s=-1.0)
        with pytest.raises(PipelineError):
            WatchdogConfig(stall_timeout_s=1.0, poll_interval_s=0.0)

    def test_deadline_must_not_exceed_stall_timeout(self):
        with pytest.raises(PipelineError, match="not exceed"):
            WatchdogConfig(stall_timeout_s=1.0, chunk_deadline_s=2.0)

    def test_default_poll_tracks_tightest_threshold(self):
        assert WatchdogConfig(stall_timeout_s=0.2).poll_interval_s \
            == pytest.approx(0.05)
        assert WatchdogConfig(stall_timeout_s=10.0).poll_interval_s \
            == 0.1  # clamped
        assert WatchdogConfig(
            stall_timeout_s=1.0, chunk_deadline_s=0.2
        ).poll_interval_s == pytest.approx(0.05)


class TestHeartbeat:
    def test_cancellable_sleep_raises_on_cancel(self):
        heartbeat = Heartbeat(0, "gpu")
        heartbeat.start_task(5)
        assert heartbeat.cancel_if(5)
        with pytest.raises(StallError):
            heartbeat.sleep(10.0)

    def test_sleep_without_cancel_just_sleeps(self):
        heartbeat = Heartbeat(0, "gpu")
        start = time.perf_counter()
        heartbeat.sleep(0.01)
        assert time.perf_counter() - start >= 0.01

    def test_cancel_if_misses_completed_task(self):
        """The completion race: a task finishing between snapshot and
        cancel must not poison its successor."""
        heartbeat = Heartbeat(0, "gpu")
        heartbeat.start_task(5)
        heartbeat.idle()  # task 5 completed
        assert not heartbeat.cancel_if(5)
        heartbeat.start_task(6)
        assert not heartbeat.cancel_if(5)  # a different task now
        heartbeat.check_cancelled()  # no stale cancellation

    def test_start_task_clears_stale_cancel(self):
        heartbeat = Heartbeat(0, "gpu")
        heartbeat.start_task(5)
        heartbeat.cancel_if(5)
        heartbeat.start_task(6)
        heartbeat.check_cancelled()  # does not raise


class TestScan:
    """Detection logic driven directly (no threads, no sleeping)."""

    def make(self, **kwargs):
        heartbeat = Heartbeat(0, "gpu")
        watchdog = Watchdog([heartbeat], WatchdogConfig(**kwargs))
        return heartbeat, watchdog

    def test_idle_chunk_never_flagged(self):
        heartbeat, watchdog = self.make(stall_timeout_s=0.1)
        watchdog._scan(time.monotonic() + 999.0)
        assert watchdog.events == []

    def test_stall_detected_and_cancelled_once(self):
        heartbeat, watchdog = self.make(stall_timeout_s=0.1)
        heartbeat.start_task(3)
        now = time.monotonic()
        watchdog._scan(now + 0.2)
        watchdog._scan(now + 0.3)  # same stall: not re-reported
        assert [e.kind for e in watchdog.events] == [STALL]
        assert watchdog.events[0].task_id == 3
        assert heartbeat.cancel.is_set()
        assert watchdog.stall_count == 1

    def test_overrun_logged_without_cancelling(self):
        heartbeat, watchdog = self.make(stall_timeout_s=10.0,
                                        chunk_deadline_s=0.1)
        heartbeat.start_task(3)
        watchdog._scan(time.monotonic() + 0.2)
        assert [e.kind for e in watchdog.events] == [DEADLINE_OVERRUN]
        assert not heartbeat.cancel.is_set()

    def test_events_mirrored_into_injector(self):
        heartbeat = Heartbeat(0, "gpu")
        injector = FaultInjector(FaultPlan())
        watchdog = Watchdog([heartbeat],
                            WatchdogConfig(stall_timeout_s=0.1),
                            injector=injector)
        heartbeat.start_task(3)
        watchdog._scan(time.monotonic() + 0.2)
        assert injector.report().count(STALL) == 1


class TestStalledRunRecovery:
    """End-to-end: a blocked dispatch must not hang the pipeline."""

    BLOCK_S = 60.0  # far beyond any sane test runtime

    def blocked_plan(self):
        return FaultPlan(slowdowns=[SlowdownSpec(
            task_id=1, stage_index=1, delay_s=self.BLOCK_S,
            pu_class="gpu",
        )])

    def test_stall_quarantined_and_run_completes(self):
        app = make_app()
        injector = FaultInjector(self.blocked_plan())
        executor = ThreadedPipelineExecutor(
            app, CHUNKS, fault_injector=injector, isolate_failures=True,
            watchdog=WatchdogConfig(stall_timeout_s=0.2,
                                    chunk_deadline_s=0.1),
        )
        start = time.perf_counter()
        result = executor.run(4, validate=True)
        wall = time.perf_counter() - start
        assert wall < self.BLOCK_S / 10  # detected, not waited out
        assert result.completed == 4
        assert result.failed_task_ids == [1]
        kinds = [e.kind for e in result.watchdog_events]
        assert STALL in kinds and DEADLINE_OVERRUN in kinds

        report = injector.report(result.failures)
        assert report.count(STALL) == 1
        assert report.count("quarantine") == 1
        assert "stall" in report.format()

    def test_stall_unwinds_without_isolation(self):
        app = make_app()
        executor = ThreadedPipelineExecutor(
            app, CHUNKS, fault_injector=FaultInjector(self.blocked_plan()),
            isolate_failures=False,
            watchdog=WatchdogConfig(stall_timeout_s=0.2),
        )
        with pytest.raises(PipelineError) as excinfo:
            executor.run(4)
        assert isinstance(excinfo.value.__cause__, StallError)

    def test_stall_during_retry_backoff_is_caught(self):
        """A persistent fault's long backoff is also supervised."""
        app = make_app()
        plan = FaultPlan(kernel_faults=[KernelFaultSpec(
            task_id=1, stage_index=1, fail_attempts=None,
        )])
        injector = FaultInjector(plan)
        executor = ThreadedPipelineExecutor(
            app, CHUNKS, fault_injector=injector, isolate_failures=True,
            retry_policy=RetryPolicy(max_attempts=100,
                                     base_backoff_s=self.BLOCK_S,
                                     max_backoff_s=self.BLOCK_S),
            watchdog=WatchdogConfig(stall_timeout_s=0.2),
        )
        start = time.perf_counter()
        result = executor.run(3)
        assert time.perf_counter() - start < self.BLOCK_S / 10
        assert result.failed_task_ids == [1]
        assert injector.report().count(STALL) == 1

    def test_unsupervised_run_has_no_watchdog_events(self):
        app = make_app()
        result = ThreadedPipelineExecutor(app, CHUNKS).run(3,
                                                           validate=True)
        assert result.watchdog_events == ()

    def test_clean_run_under_supervision(self):
        """A healthy pipeline is untouched by the watchdog."""
        app = make_app()
        executor = ThreadedPipelineExecutor(
            app, CHUNKS,
            watchdog=WatchdogConfig(stall_timeout_s=5.0),
        )
        result = executor.run(6, validate=True)
        assert result.completed == 6
        assert result.failures == []
        assert result.watchdog_events == ()
