"""Sparse (CSR) kernels for the AlexNet-sparse workload.

The paper prunes AlexNet's convolutions with Condensa and stores the
weights in Compressed Sparse Row format (section 4.1), turning the dense
GEMM into an irregular sparse-matrix x dense-matrix product.  We provide:

* :func:`prune_to_csr` - magnitude pruning of a dense weight tensor into a
  deterministic CSR matrix (the Condensa stand-in);
* CSR conv variants: the CPU one iterates rows with gathered columns (how
  an OpenMP SpMM is written), the GPU one assigns a "warp" of rows per
  launch tile - same numerics, device-style partitioning.

Sparse stages process a *batch* of images per task (128 in the paper)
because the per-image cost collapses after pruning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.kernels.nn import ConvSpec, im2col
from repro.soc.workprofile import WorkProfile


@dataclass(frozen=True)
class CsrMatrix:
    """A read-only CSR matrix (values, column indices, row pointers)."""

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: tuple

    def __post_init__(self) -> None:
        rows, _ = self.shape
        if len(self.indptr) != rows + 1:
            raise KernelError(
                f"indptr length {len(self.indptr)} != rows+1 ({rows + 1})"
            )
        if len(self.data) != len(self.indices):
            raise KernelError("data and indices must align")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise KernelError("indptr must start at 0 and end at nnz")

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        """Materialize the dense matrix (test/debug helper)."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols), dtype=self.data.dtype)
        for row in range(rows):
            start, stop = self.indptr[row], self.indptr[row + 1]
            dense[row, self.indices[start:stop]] = self.data[start:stop]
        return dense


def prune_to_csr(weights: np.ndarray, sparsity: float) -> CsrMatrix:
    """Magnitude-prune a (K, C, R, S) weight tensor to CSR.

    Keeps the ``1 - sparsity`` largest-magnitude weights (global
    threshold, deterministic ties by index), then flattens each output
    channel to a CSR row over ``C*R*S`` columns - the layout the sparse
    conv kernels consume.
    """
    if not 0.0 <= sparsity < 1.0:
        raise KernelError(f"sparsity must be in [0, 1), got {sparsity}")
    k = weights.shape[0]
    flat = weights.reshape(k, -1).astype(np.float32)
    keep = max(1, int(round(flat.size * (1.0 - sparsity))))
    magnitudes = np.abs(flat).ravel()
    # Stable selection of the keep largest magnitudes.
    order = np.argsort(-magnitudes, kind="stable")[:keep]
    mask = np.zeros(flat.size, dtype=bool)
    mask[order] = True
    mask = mask.reshape(flat.shape)

    data, indices, indptr = [], [], [0]
    for row in range(k):
        cols = np.nonzero(mask[row])[0]
        data.append(flat[row, cols])
        indices.append(cols)
        indptr.append(indptr[-1] + len(cols))
    return CsrMatrix(
        data=np.concatenate(data) if data else np.empty(0, np.float32),
        indices=(
            np.concatenate(indices).astype(np.int64)
            if indices else np.empty(0, np.int64)
        ),
        indptr=np.asarray(indptr, dtype=np.int64),
        shape=(k, flat.shape[1]),
    )


def _check_sparse_conv(x: np.ndarray, csr: CsrMatrix, bias: np.ndarray,
                       out: np.ndarray, spec: ConvSpec) -> tuple:
    if csr.shape != (spec.out_channels,
                     spec.in_channels * spec.kernel_size**2):
        raise KernelError(
            f"CSR shape {csr.shape} does not match conv spec {spec}"
        )
    oh, ow = spec.out_hw(x.shape[1], x.shape[2])
    if out.shape != (spec.out_channels, oh, ow):
        raise KernelError(
            f"output {out.shape} != {(spec.out_channels, oh, ow)}"
        )
    if bias.shape != (spec.out_channels,):
        raise KernelError("bias shape mismatch")
    return oh, ow


def sparse_conv2d_relu_cpu(x: np.ndarray, csr: CsrMatrix, bias: np.ndarray,
                           out: np.ndarray, spec: ConvSpec) -> None:
    """Host variant: row loop, gathered patch rows, fused ReLU."""
    oh, ow = _check_sparse_conv(x, csr, bias, out, spec)
    patches = im2col(x, spec.kernel_size, spec.padding)
    for row in range(spec.out_channels):
        start, stop = csr.indptr[row], csr.indptr[row + 1]
        if start == stop:
            acc = np.full(oh * ow, bias[row], dtype=np.float32)
        else:
            gathered = patches[csr.indices[start:stop]]
            acc = csr.data[start:stop] @ gathered + bias[row]
        np.maximum(acc, 0.0, out=acc)
        out[row] = acc.reshape(oh, ow)


#: Rows per simulated warp in the gpu variant.
GPU_ROW_TILE = 32


def sparse_conv2d_relu_gpu(x: np.ndarray, csr: CsrMatrix, bias: np.ndarray,
                           out: np.ndarray, spec: ConvSpec) -> None:
    """Device variant: warp-per-row tiles (CSR-vector SpMM style)."""
    oh, ow = _check_sparse_conv(x, csr, bias, out, spec)
    patches = im2col(x, spec.kernel_size, spec.padding)
    for row0 in range(0, spec.out_channels, GPU_ROW_TILE):
        for row in range(row0, min(row0 + GPU_ROW_TILE, spec.out_channels)):
            start, stop = csr.indptr[row], csr.indptr[row + 1]
            if start == stop:
                acc = np.full(oh * ow, bias[row], dtype=np.float32)
            else:
                gathered = patches[csr.indices[start:stop]]
                acc = csr.data[start:stop] @ gathered + bias[row]
            np.maximum(acc, 0.0, out=acc)
            out[row] = acc.reshape(oh, ow)


def sparse_conv_work_profile(spec: ConvSpec, h: int, w: int, nnz: int,
                             batch: int = 1) -> WorkProfile:
    """Pruned convolution: the irregular stage class.

    Flops shrink to ``2 * nnz * OH * OW`` but every access gathers through
    the column-index array: high irregularity and (on SIMT machines)
    divergence from the uneven row lengths.  CPUs tolerate this far better
    - the reason AlexNet-sparse is near CPU/GPU parity on the Pixel
    (Table 3) and the platform where isolated performance models go most
    wrong (Fig. 6).
    """
    oh, ow = spec.out_hw(h, w)
    io_bytes = 4.0 * (spec.in_channels * h * w + spec.out_channels * oh * ow)
    csr_bytes = nnz * (4.0 + 8.0)
    # Each nonzero's gathered patch row is oh*ow wide.
    gather_bytes = 4.0 * nnz * oh * ow * 0.1  # partial cache reuse
    return WorkProfile(
        flops=2.0 * nnz * oh * ow * batch,
        bytes_moved=(io_bytes * batch + csr_bytes + gather_bytes * batch),
        parallelism=float(spec.out_channels * oh * ow * batch / 4.0),
        parallel_fraction=1.0,
        divergence=0.35,
        irregularity=0.35,
        cpu_efficiency=0.5,
        gpu_efficiency=0.5,
        gpu_launches=1,
    )
