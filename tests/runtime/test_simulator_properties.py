"""Property-based invariants of the discrete-event pipeline simulator.

For arbitrary valid chunkings of the octree pipeline over the Pixel's
PUs, structural invariants of pipelined execution must hold: tasks
complete in order, each task visits chunks downstream-monotonically,
busy time never exceeds wall time, and throughput never beats the
bottleneck chunk's best case.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_octree_application
from repro.core import Chunk
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import get_platform

PLATFORM = get_platform("pixel7a")
APP = build_octree_application(n_points=5_000)
PUS = list(PLATFORM.schedulable_classes())


@st.composite
def chunkings(draw):
    """A random contiguous cover of the 7 stages with distinct PUs."""
    n = APP.num_stages
    k = draw(st.integers(min_value=1, max_value=min(4, len(PUS))))
    # k-1 split points among the n-1 boundaries.
    splits = sorted(draw(st.lists(
        st.integers(min_value=1, max_value=n - 1),
        min_size=k - 1, max_size=k - 1, unique=True,
    )))
    bounds = [0] + splits + [n]
    order = draw(st.permutations(PUS))
    return [
        Chunk(bounds[i], bounds[i + 1], order[i]) for i in range(k)
    ]


class TestSimulatorInvariants:
    @settings(max_examples=25, deadline=None)
    @given(chunkings(), st.integers(min_value=1, max_value=10))
    def test_completions_strictly_increase(self, chunks, n_tasks):
        result = SimulatedPipelineExecutor(APP, chunks, PLATFORM).run(
            n_tasks
        )
        times = result.completion_times_s
        assert len(times) == n_tasks
        assert all(a < b for a, b in zip(times, times[1:]))

    @settings(max_examples=25, deadline=None)
    @given(chunkings())
    def test_task_flow_is_downstream_monotone(self, chunks):
        result = SimulatedPipelineExecutor(APP, chunks, PLATFORM).run(
            5, record_trace=True
        )
        by_key = {(s.chunk_index, s.task_id): s for s in result.spans}
        for task in range(5):
            for index in range(len(chunks) - 1):
                upstream = by_key[(index, task)]
                downstream = by_key[(index + 1, task)]
                assert upstream.end_s <= downstream.start_s + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(chunkings())
    def test_busy_time_bounded_by_wall_time(self, chunks):
        result = SimulatedPipelineExecutor(APP, chunks, PLATFORM).run(8)
        for index in range(len(chunks)):
            assert result.chunk_busy_s[index] <= result.total_s + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(chunkings())
    def test_steady_interval_at_least_best_case_bottleneck(self, chunks):
        """No schedule can run faster than its bottleneck chunk under
        the *most favourable* interference conditions."""
        result = SimulatedPipelineExecutor(APP, chunks, PLATFORM).run(12)
        best_case = 0.0
        for chunk in chunks:
            chunk_isolated = sum(
                PLATFORM.isolated_time(APP.stages[i].work, chunk.pu_class)
                for i in chunk.stage_indices
            )
            # Most favourable multiplier: full DVFS boost, no contention.
            best_speed = max(
                PLATFORM.interference.compute_speed(chunk.pu_class, load)
                for load in (0.0, 1.0)
            )
            best_case = max(best_case, chunk_isolated / best_speed)
        assert result.steady_interval_s >= best_case * 0.9

    @settings(max_examples=20, deadline=None)
    @given(chunkings())
    def test_single_task_latency_at_least_sum_of_chunks(self, chunks):
        """The first task sees no overlap: its completion time is at
        least the sum of best-case (fully boosted, zero-contention)
        chunk times."""
        result = SimulatedPipelineExecutor(APP, chunks, PLATFORM).run(1)
        floor = 0.0
        for chunk in chunks:
            isolated = sum(
                PLATFORM.isolated_time(APP.stages[i].work, chunk.pu_class)
                for i in chunk.stage_indices
            )
            best_speed = max(
                PLATFORM.interference.compute_speed(chunk.pu_class, load)
                for load in (0.0, 1.0)
            )
            floor += isolated / best_speed
        assert result.completion_times_s[0] >= floor * 0.9
