"""Ablation: exact constraint solving vs metaheuristic search.

The paper chose an SMT formulation over the metaheuristic schedulers in
its related work (MOSCOA, [2]).  This ablation compares the two on the
paper-scale AlexNet-sparse case: solution quality, wall time, and
whether the metaheuristic's best would survive the gapness filter.
"""

import math
import time

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_alexnet_sparse
from repro.baselines import MetaheuristicOptimizer
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.soc import get_platform


def test_exact_vs_metaheuristic(benchmark):
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    table = BTProfiler(platform, repetitions=10).profile(
        application
    ).restricted(platform.schedulable_classes())

    def compare():
        start = time.perf_counter()
        exact = BTOptimizer(application, table, k=1,
                            gap_slack=math.inf).optimize()
        exact_wall = time.perf_counter() - start

        start = time.perf_counter()
        meta_optimizer = MetaheuristicOptimizer(
            application, table, restarts=10, moves_per_restart=300,
            seed=0,
        )
        meta = meta_optimizer.optimize(k=1)
        meta_wall = time.perf_counter() - start
        return (exact.best.predicted_latency_s, exact_wall,
                meta.best.predicted_latency_s, meta_wall,
                meta_optimizer.log.evaluations)

    exact_lat, exact_wall, meta_lat, meta_wall, evals = run_once(
        benchmark, compare
    )
    print(f"\nexact:  {exact_lat * 1e3:.3f} ms in {exact_wall * 1e3:.0f} ms")
    print(f"meta:   {meta_lat * 1e3:.3f} ms in {meta_wall * 1e3:.0f} ms "
          f"({evals} evaluations)")
    print(f"optimality gap: {meta_lat / exact_lat - 1:+.1%}")

    # Exactness: the solver's optimum is never beaten and the
    # metaheuristic lands within a modest gap on this space.
    assert meta_lat >= exact_lat - 1e-12
    assert meta_lat <= exact_lat * 1.3
