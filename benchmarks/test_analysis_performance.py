"""Benchmark for the shared parsed-AST cache behind lint + flow.

``repro lint`` and ``repro flow`` both walk every ``.py`` file in the
package; the :class:`~repro.analysis.astcache.AstCache` exists so the
second tool never re-parses what the first already did.  This module
times the three configurations over the real ``src/repro`` tree and
gates the contract: running *both* tools through the shared cache must
cost at most 1.5x a lint-only run - i.e. the flow pass rides on the
linter's parses instead of doubling the I/O + parse bill.

Results land in ``BENCH_analysis.json`` at the repo root alongside the
other perf-trajectory artifacts.
"""

import os
import time

from repro.analysis.astcache import AstCache
from repro.analysis.flow import analyze_paths
from repro.analysis.linter import default_lint_target, lint_paths
from repro.serialization import write_json_report

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_analysis.json",
)

RESULTS = {}


def _best_of_interleaved(cases, rounds=5):
    """case name -> list of wall seconds, one per round.

    One round times every case back to back, so slow stretches of a
    shared/noisy machine hit all cases alike instead of biasing
    whichever block ran last; per-round *ratios* between cases then
    come from comparable conditions even when absolute times drift.
    """
    times = {name: [] for name, _ in cases}
    for _ in range(rounds):
        for name, fn in cases:
            start = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - start)
    return times


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _record(case, min_s, median_s, **extra):
    entry = {"min_s": round(min_s, 6), "median_s": round(median_s, 6)}
    entry.update(extra)
    RESULTS[case] = entry


def test_lint_plus_flow_rides_the_shared_cache(capsys):
    target = default_lint_target()

    def lint_only():
        cache = AstCache()
        lint_paths([target], cache=cache)
        return cache

    def flow_only():
        cache = AstCache()
        analyze_paths([target], cache=cache)
        return cache

    def both_shared():
        cache = AstCache()
        lint_paths([target], cache=cache)
        analyze_paths([target], cache=cache)
        return cache

    times = _best_of_interleaved([
        ("lint_only", lint_only),
        ("flow_only", flow_only),
        ("both_shared", both_shared),
    ])
    lint_ts = times["lint_only"]
    flow_ts = times["flow_only"]
    both_ts = times["both_shared"]

    cache = both_shared()
    assert cache.hits == cache.misses, (
        "flow should re-use exactly the parses lint produced"
    )

    # Ratios are paired per round: each round's both/lint numbers were
    # measured seconds apart under the same machine conditions, so the
    # ratio is meaningful even when absolute times drift 2x between
    # rounds on a shared box.  The median round is the estimator.
    ratios = [b / l for b, l in zip(both_ts, lint_ts)]
    ratio = _median(ratios)

    _record("lint_only", min(lint_ts), _median(lint_ts))
    _record("flow_only", min(flow_ts), _median(flow_ts))
    _record("lint_plus_flow_shared", min(both_ts), _median(both_ts),
            ratio_vs_lint=round(ratio, 3),
            round_ratios=[round(r, 3) for r in ratios])
    write_json_report(BENCH_PATH, RESULTS)

    with capsys.disabled():
        print(f"\nlint only:        {min(lint_ts):.3f}s")
        print(f"flow only:        {min(flow_ts):.3f}s")
        print(f"lint+flow shared: {min(both_ts):.3f}s "
              f"(median {ratio:.2f}x lint alone; rounds "
              f"{', '.join(f'{r:.2f}x' for r in ratios)})")

    # The PR contract: adding flow to a lint run costs at most 50%
    # extra, because parsing is shared and only rule evaluation differs.
    assert ratio <= 1.5, (
        f"lint+flow through the shared cache took {ratio:.2f}x a "
        f"lint-only run (budget 1.5x): the AST cache is not being "
        f"shared"
    )
