"""Tests for the static invariant linter (``python -m repro lint``)."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.linter import (
    collect_files,
    default_lint_target,
    lint_paths,
    lint_source,
)
from repro.analysis.report import render_lint_json, render_lint_text
from repro.analysis.rules import all_rules, get_rule
from repro.cli import main
from repro.errors import AnalysisError

FIXTURES = Path(__file__).resolve().parent.parent / "lint_fixtures"

EXPECTED_RULE_IDS = {
    "BROAD-EXCEPT",
    "GLOBAL-RNG",
    "RAW-ARTIFACT-WRITE",
    "UNSUPERVISED-THREAD",
    "UNTAGGED-SPAN",
    "WALL-CLOCK",
}


def lint_snippet(source, path="x/module.py"):
    findings, suppressed = lint_source(textwrap.dedent(source), path)
    return findings, suppressed


class TestRegistry:
    def test_all_rules_registered(self):
        assert {rule.rule_id for rule in all_rules()} == EXPECTED_RULE_IDS

    def test_get_rule(self):
        assert get_rule("WALL-CLOCK").rule_id == "WALL-CLOCK"
        assert get_rule("NO-SUCH-RULE") is None


class TestFixtures:
    @pytest.mark.parametrize("fixture, rule_id, count", [
        ("bad_wall_clock.py", "WALL-CLOCK", 1),
        ("bad_profiler_rng.py", "GLOBAL-RNG", 2),
        ("bad_artifact_write.py", "RAW-ARTIFACT-WRITE", 2),
        ("bad_broad_except.py", "BROAD-EXCEPT", 2),
        ("bad_thread.py", "UNSUPERVISED-THREAD", 1),
        ("bad_untagged_span.py", "UNTAGGED-SPAN", 2),
    ])
    def test_bad_fixture_caught(self, fixture, rule_id, count):
        report = lint_paths([FIXTURES / fixture])
        assert report.counts == {rule_id: count}

    def test_good_fixture_clean(self):
        report = lint_paths([FIXTURES / "good_profiler.py"])
        assert report.clean

    def test_suppression_comment_counted(self):
        report = lint_paths([FIXTURES / "suppressed_wall_clock.py"])
        assert report.clean
        assert report.suppressed == 1

    def test_directory_aggregates_every_rule(self):
        report = lint_paths([FIXTURES])
        assert set(report.counts) == EXPECTED_RULE_IDS


class TestSuppression:
    def test_suppress_on_line_above(self):
        findings, suppressed = lint_snippet("""
            import time

            def stamp():
                # bt-lint: disable=WALL-CLOCK
                return time.time()
        """)
        assert not findings
        assert suppressed == 1

    def test_suppress_all(self):
        findings, _ = lint_snippet("""
            import time

            def stamp():
                return time.time()  # bt-lint: disable=ALL
        """)
        assert not findings

    def test_unrelated_suppression_does_not_hide(self):
        findings, suppressed = lint_snippet("""
            import time

            def stamp():
                return time.time()  # bt-lint: disable=GLOBAL-RNG
        """)
        assert [f.rule_id for f in findings] == ["WALL-CLOCK"]
        assert suppressed == 0


class TestBroadExcept:
    def test_all_paths_raise_is_clean(self):
        findings, _ = lint_snippet("""
            def f(kernel):
                try:
                    kernel()
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
        """)
        assert not findings

    def test_route_then_fall_through_is_clean(self):
        findings, _ = lint_snippet("""
            def f(kernel, injector):
                try:
                    kernel()
                except Exception as exc:
                    injector.record(exc)
        """)
        assert not findings

    def test_bare_except_swallow_flagged(self):
        findings, _ = lint_snippet("""
            def f(kernel):
                try:
                    kernel()
                except:
                    pass
        """)
        assert [f.rule_id for f in findings] == ["BROAD-EXCEPT"]

    def test_retry_continue_with_routing_is_clean(self):
        # The dispatcher's retry shape: route unconditionally, then
        # continue the retry loop.
        findings, _ = lint_snippet("""
            def f(items, injector):
                for item in items:
                    while True:
                        try:
                            item()
                        except Exception as exc:
                            injector.record(exc)
                            continue
                        break
        """)
        assert not findings

    def test_retry_continue_without_routing_flagged(self):
        findings, _ = lint_snippet("""
            def f(items):
                for item in items:
                    while True:
                        try:
                            item()
                        except Exception:
                            continue
                        break
        """)
        assert [f.rule_id for f in findings] == ["BROAD-EXCEPT"]

    def test_conditionally_routed_branch_flagged(self):
        findings, _ = lint_snippet("""
            def f(kernel, injector):
                try:
                    kernel()
                except Exception as exc:
                    if injector is not None:
                        injector.record(exc)
        """)
        assert [f.rule_id for f in findings] == ["BROAD-EXCEPT"]

    def test_narrow_except_not_flagged(self):
        findings, _ = lint_snippet("""
            def f(kernel):
                try:
                    kernel()
                except ValueError:
                    pass
        """)
        assert not findings


class TestPathScoping:
    def test_global_rng_only_in_configured_paths(self):
        source = """
            import random

            def draw():
                return random.random()
        """
        findings, _ = lint_snippet(source, path="x/helpers.py")
        assert not findings
        findings, _ = lint_snippet(source, path="x/profiler.py")
        assert [f.rule_id for f in findings] == ["GLOBAL-RNG"]

    def test_serialization_exempt_from_raw_write(self):
        source = """
            import os

            def write(fd, text):
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
        """
        findings, _ = lint_snippet(source, path="repro/serialization.py")
        assert not findings
        findings, _ = lint_snippet(source, path="repro/other.py")
        assert [f.rule_id for f in findings] == ["RAW-ARTIFACT-WRITE"]

    def test_pipeline_exempt_from_thread_rule(self):
        source = """
            import threading

            class Worker(threading.Thread):
                pass
        """
        findings, _ = lint_snippet(source,
                                   path="repro/runtime/pipeline.py")
        assert not findings
        findings, _ = lint_snippet(source, path="repro/core/session.py")
        assert [f.rule_id for f in findings] == ["UNSUPERVISED-THREAD"]

    def test_span_factories_exempt_from_untagged_span(self):
        source = """
            def build(Span):
                return Span(chunk_index=0, pu_class="big", task_id=0,
                            start_s=0.0, end_s=1.0)
        """
        for exempt in ("repro/runtime/trace.py",
                       "repro/obs/export.py",
                       "repro/obs/tracer.py"):
            findings, _ = lint_snippet(source, path=exempt)
            assert not findings, exempt
        findings, _ = lint_snippet(source,
                                   path="repro/runtime/simulator.py")
        assert [f.rule_id for f in findings] == ["UNTAGGED-SPAN"]

    def test_untagged_span_suppressible(self):
        findings, suppressed = lint_snippet("""
            def build(Span):
                # bt-lint: disable=UNTAGGED-SPAN
                return Span(0, "big", 0, 0.0, 1.0)
        """)
        assert not findings
        assert suppressed == 1

    def test_read_mode_open_is_fine(self):
        findings, _ = lint_snippet("""
            def load(path):
                with open(path) as handle:
                    return handle.read()
        """)
        assert not findings


class TestDriver:
    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            lint_source("def broken(:", "bad.py")

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            collect_files([Path("/no/such/lint/target")])

    def test_repo_baseline_is_clean(self):
        # The acceptance bar: the shipped package has zero findings.
        report = lint_paths([default_lint_target()])
        assert report.clean, render_lint_text(report)
        assert report.files_checked > 30

    def test_json_report_shape(self):
        report = lint_paths([FIXTURES / "bad_wall_clock.py"])
        data = render_lint_json(report)
        assert data["tool"] == "repro-lint"
        assert data["counts"] == {"WALL-CLOCK": 1}
        assert {entry["rule"] for entry in data["rules"]} \
            == EXPECTED_RULE_IDS
        json.dumps(data)  # must be serialisable as-is


class TestCli:
    def test_lint_strict_clean_on_repo(self):
        assert main(["lint", "--strict"]) == 0

    def test_lint_strict_fails_on_fixtures(self, capsys):
        assert main(["lint", str(FIXTURES), "--strict",
                     "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert set(data["counts"]) == EXPECTED_RULE_IDS

    def test_lint_non_strict_exits_zero(self):
        assert main(["lint", str(FIXTURES)]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULE_IDS:
            assert rule_id in out

    def test_lint_out_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "lint.json"
        assert main(["lint", str(FIXTURES / "bad_thread.py"),
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        data = json.loads(out_file.read_text())
        assert data["counts"] == {"UNSUPERVISED-THREAD": 1}

    def test_lint_missing_target_is_structured_error(self, capsys):
        # 2 = tool failure; 1 is reserved for findings under --strict.
        assert main(["lint", "/no/such/lint/target"]) == 2
        err = json.loads(capsys.readouterr().err)
        assert err["error"] == "AnalysisError"
