"""Adaptive deployment: react to run-time condition changes (extension).

The paper generates *static* schedules and notes that prior static cost
models have limited applicability "in dynamic, resource-constrained
environments like mobile SoCs" (section 6).  This module closes the loop
at deployment time without abandoning the static machinery:

* an :class:`AdaptivePipeline` executes the deployed schedule in windows
  and watches measured steady latency;
* when the measurement drifts beyond a threshold from the window
  baseline (a power-mode flip, thermal throttling, a co-located app),
  it re-runs *level 3 only* - re-measuring the cached candidate set on
  the current conditions and switching to the measured best - exactly
  the cheap step the paper's architecture makes possible (the profiling
  table and solver candidates remain valid artifacts; only the final
  ranking is refreshed).

Condition changes are modelled as platform swaps (e.g. Jetson normal ->
7 W), which is both how the virtual SoC expresses "the world changed"
and a real event on Jetson-class deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.core.optimizer import ScheduleCandidate
from repro.core.schedule import Schedule
from repro.core.stage import Application
from repro.errors import PipelineError, PuFailureError, SchedulingError
from repro.runtime.faults import FALLBACK, FaultInjector
from repro.runtime.simulator import SimulatedPipelineExecutor
from repro.soc.platform import Platform


@dataclass
class WindowRecord:
    """One execution window's outcome."""

    window_index: int
    schedule: Schedule
    platform: str
    measured_latency_s: float
    retuned: bool
    fallback: bool = False


@dataclass
class AdaptivePipeline:
    """Windowed execution with drift-triggered re-autotuning.

    Args:
        application: The deployed pipeline.
        platform: Current execution conditions (swap via
            :meth:`set_platform` to model a mode change).
        candidates: The optimizer's cached candidate set (level-2
            output); re-tuning re-ranks these, never re-profiles.
        drift_threshold: Relative latency change that triggers
            re-tuning (0.25 = 25% away from the reference).
        window_tasks: Tasks per execution window.
    """

    application: Application
    platform: Platform
    candidates: Sequence[ScheduleCandidate]
    drift_threshold: float = 0.25
    window_tasks: int = 20
    eval_tasks: int = 15

    _schedule: Optional[Schedule] = field(default=None, init=False)
    _reference_latency_s: Optional[float] = field(default=None, init=False)
    history: List[WindowRecord] = field(default_factory=list, init=False)
    failed_pus: Set[str] = field(default_factory=set, init=False)
    _executor: Optional[SimulatedPipelineExecutor] = field(
        default=None, init=False,
    )
    _executor_key: Optional[tuple] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.candidates:
            raise SchedulingError("adaptive pipeline needs candidates")
        if not 0.0 < self.drift_threshold:
            raise SchedulingError("drift_threshold must be positive")
        if self.window_tasks < 2:
            raise PipelineError("window_tasks must be >= 2")
        self._retune(initial=True)

    # ------------------------------------------------------------------
    @property
    def schedule(self) -> Schedule:
        """The currently deployed schedule."""
        return self._schedule

    def set_platform(self, platform: Platform) -> None:
        """Conditions changed (power mode flip, thermal state...).

        The controller does not react immediately - the next window's
        drift check does, keeping the reaction measurement-driven (a
        real deployment has no oracle for 'the platform object
        changed')."""
        usable = [
            c for c in self.candidates
            if set(c.schedule.pu_classes_used)
            <= set(platform.schedulable_classes()) - self.failed_pus
        ]
        if not usable:
            raise SchedulingError(
                "no cached candidate is schedulable on the new platform; "
                "a full re-run (profiling included) is required"
            )
        self.platform = platform

    def mark_pu_failed(self, pu_class: str) -> bool:
        """A PU dropped out permanently: degrade gracefully.

        Removes the PU from the usable set and, when the deployed
        schedule relied on it, falls back to the best cached candidate
        avoiding it (level-3 re-ranking only - no re-profiling, exactly
        the cheap recovery the candidate cache enables).

        Returns True when the deployed schedule changed.

        Raises:
            SchedulingError: No cached candidate avoids the failed PUs;
                a full re-run (profiling included) is required.
        """
        if pu_class in self.failed_pus:
            return False
        self.failed_pus.add(pu_class)
        if not self._usable_candidates():
            raise SchedulingError(
                f"no cached candidate avoids failed PU {pu_class!r}; "
                "a full re-run (profiling included) is required"
            )
        if pu_class in set(self._schedule.pu_classes_used):
            self._retune()
            return True
        return False

    # ------------------------------------------------------------------
    def _usable_candidates(self) -> List[ScheduleCandidate]:
        schedulable = (
            set(self.platform.schedulable_classes()) - self.failed_pus
        )
        return [
            c for c in self.candidates
            if set(c.schedule.pu_classes_used) <= schedulable
        ]

    def _retune(self, initial: bool = False) -> None:
        # Imported lazily: repro.core.autotuner itself imports the
        # runtime package, so a module-level import would be circular.
        from repro.core.autotuner import Autotuner

        tuner = Autotuner(
            self.application, self.platform, eval_tasks=self.eval_tasks
        )
        result = tuner.tune(self._usable_candidates())
        self._schedule = result.measured_best.candidate.schedule
        self._reference_latency_s = result.measured_best.measured_latency_s
        del initial

    # ------------------------------------------------------------------
    def run_window(
        self, fault_injector: Optional[FaultInjector] = None,
    ) -> WindowRecord:
        """Execute one window; re-tune first if the last window drifted.

        With a :class:`~repro.runtime.faults.FaultInjector` attached,
        the window executes under injected faults; a mid-window PU
        dropout triggers immediate fallback (:meth:`mark_pu_failed`)
        and the window re-executes on the degraded schedule, so the
        pipeline keeps streaming.

        Returns the window's record (also appended to :attr:`history`).
        """
        dead = set(self._schedule.pu_classes_used) & self.failed_pus
        if dead:
            # mark_pu_failed already reported candidate exhaustion for
            # these PUs; executing anyway would silently dispatch onto
            # dead hardware.
            raise SchedulingError(
                f"deployed schedule still uses failed PUs "
                f"{sorted(dead)} and no cached candidate avoids them; "
                "a full re-run (profiling included) is required"
            )
        retuned = False
        fallback = False
        if self.history:
            last = self.history[-1]
            drift = abs(
                last.measured_latency_s - self._reference_latency_s
            ) / self._reference_latency_s
            if drift > self.drift_threshold:
                self._retune()
                retuned = True
        while True:
            executor = self._executor_for(fault_injector)
            try:
                measured = executor.measure_per_task_latency(
                    self.window_tasks
                )
                break
            except PuFailureError as exc:
                # Each pass retires one PU class, so this terminates:
                # either a surviving schedule completes the window or
                # mark_pu_failed runs out of candidates and raises.
                self.mark_pu_failed(exc.pu_class)
                fallback = True
                if fault_injector is not None:
                    fault_injector.record(
                        FALLBACK, exc.pu_class, -1, -1,
                        detail="fell back to "
                        + self._schedule.describe(self.application),
                    )
        record = WindowRecord(
            window_index=len(self.history),
            schedule=self._schedule,
            platform=self.platform.name,
            measured_latency_s=measured,
            retuned=retuned,
            fallback=fallback,
        )
        self.history.append(record)
        return record

    def _executor_for(
        self, fault_injector: Optional[FaultInjector],
    ) -> SimulatedPipelineExecutor:
        """The window executor, rebuilt only when its inputs change.

        Windows on an unchanged (schedule, platform, injector) triple
        reuse one executor, keeping its engine state and noise cache
        warm; noise is a pure function of (platform, schedule, task,
        stage), so a reused executor measures the same latencies a
        fresh one would.
        """
        key = (self._schedule, self.platform, fault_injector)
        if self._executor is None or any(
            a is not b for a, b in zip(key, self._executor_key)
        ):
            self._executor = SimulatedPipelineExecutor(
                self.application, self._schedule.chunks(),
                self.platform, fault_injector=fault_injector,
            )
            self._executor_key = key
        return self._executor

    def run_windows(self, count: int) -> List[WindowRecord]:
        """Execute several windows back to back."""
        return [self.run_window() for _ in range(count)]
