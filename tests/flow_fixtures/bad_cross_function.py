"""Seeded interprocedural flow violations.

Nondeterminism enters in one function and only reaches a sink two
call-hops later - a per-function linter cannot see these; the
summary-based flow analysis must.
"""

import os
import time


def read_clock():
    # Source: the wall-clock value itself, not a deadline.
    return time.perf_counter()


def wrap_measurement():
    # One hop: taint flows through a return value.
    return {"elapsed": read_clock()}


def persist(path):
    # Sink, two hops from the source: FLOW-WALL-CLOCK.
    write_json_report(path, wrap_measurement())


def engine_choice():
    return os.getenv("REPRO_ENGINE", "des")


def record_trace(sink):
    # Constructor sink one hop from an env read: FLOW-ENV-READ.
    sink.append(TraceEvent(name=engine_choice(), ts=0))
