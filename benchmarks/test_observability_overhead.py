"""Benchmark guard: observability must be free when disabled.

The instrumentation contract (see ``docs/architecture.md``,
"Observability") is that every hot path guards on ``tracer().enabled``
/ ``metrics().enabled`` **once per run**, never per task or per event.
These tests enforce both halves of that contract on the DES hot path:

* the number of guard evaluations per simulated run is a small
  constant, independent of the task count (a counting sentinel stands
  in for the disabled instruments);
* the measured cost of those evaluations is under 2% of the run's own
  wall time - by a huge margin, since a handful of attribute reads
  cannot compete with a 300-task simulation.
"""

import time

import pytest

from repro.apps import build_alexnet_sparse
from repro.core import Chunk
from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import get_platform

N_TASKS = 300


class CountingFlag:
    """Falsy sentinel that counts how often the guard consults it."""

    def __init__(self):
        self.checks = 0

    def __bool__(self):
        self.checks += 1
        return False


def make_executor():
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    chunks = [Chunk(0, 5, "big"),
              Chunk(5, application.num_stages, "gpu")]
    return SimulatedPipelineExecutor(application, chunks, platform)


def counted_run(n_tasks):
    """Run the DES with counting sentinels installed; return checks."""
    trc, reg = Tracer(enabled=False), MetricsRegistry(enabled=False)
    trc.enabled = CountingFlag()
    reg.enabled = CountingFlag()
    prev_tracer, prev_metrics = set_tracer(trc), set_metrics(reg)
    try:
        make_executor().run(n_tasks)
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
    return trc.enabled.checks + reg.enabled.checks


def test_guard_checks_constant_per_run():
    small = counted_run(30)
    large = counted_run(N_TASKS)
    # Per-run, not per-task: 10x the tasks, identical guard count.
    assert large == small
    assert large <= 8


def test_disabled_overhead_under_two_percent():
    executor = make_executor()
    executor.run(N_TASKS)  # warm the noise cache first
    start = time.perf_counter()
    executor.run(N_TASKS)
    run_s = time.perf_counter() - start

    checks = counted_run(N_TASKS)
    # Cost of one guard evaluation: a global read + attribute read +
    # truthiness test, measured directly.
    trc = Tracer(enabled=False)
    reps = 100_000
    start = time.perf_counter()
    for _ in range(reps):
        if trc.enabled:
            pass  # pragma: no cover
    per_check_s = (time.perf_counter() - start) / reps

    overhead_s = checks * per_check_s
    fraction = overhead_s / run_s
    print(f"\n{checks} guard checks x {per_check_s * 1e9:.0f} ns "
          f"= {overhead_s * 1e6:.2f} us over a {run_s * 1e3:.1f} ms run "
          f"({fraction * 100:.4f}%)")
    assert fraction < 0.02


def test_disabled_run_wall_time(benchmark):
    """Absolute ceiling with the (disabled) instrumentation in place -
    the same bar the uninstrumented simulator benchmark holds."""
    executor = make_executor()
    result = benchmark(executor.run, N_TASKS)
    assert result.n_tasks == N_TASKS
    assert benchmark.stats["mean"] < 0.25
