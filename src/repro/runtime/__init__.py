"""BT-Implementer runtime (paper section 3.4).

Two interchangeable back-ends execute pipeline schedules:

* :class:`ThreadedPipelineExecutor` - real dispatcher threads, SPSC
  queues, and compute kernels; validates functional correctness.
* :class:`SimulatedPipelineExecutor` - rate-based discrete-event
  simulation on the virtual SoC; produces all performance measurements,
  with interference emerging from the instantaneous co-run state.

Shared infrastructure: unified-memory buffers (:class:`UsmBuffer`),
recyclable :class:`TaskObject` containers, and the :class:`SpscQueue`
dispatchers communicate through.
"""

from repro.runtime.adaptive import AdaptivePipeline, WindowRecord
from repro.runtime.memory import (
    MemoryReport,
    estimate_pipeline_memory,
    max_depth_within,
)
from repro.runtime.pipeline import ThreadedPipelineExecutor, ThreadedRunResult
from repro.runtime.simulator import (
    SimulatedPipelineExecutor,
    SimulatedRunResult,
)
from repro.runtime.spsc import SpscQueue
from repro.runtime.trace import Span, format_gantt, pipeline_bubbles
from repro.runtime.task_object import TaskObject
from repro.runtime.usm import UsmBuffer

__all__ = [
    "AdaptivePipeline",
    "MemoryReport",
    "SimulatedPipelineExecutor",
    "SimulatedRunResult",
    "Span",
    "SpscQueue",
    "TaskObject",
    "ThreadedPipelineExecutor",
    "ThreadedRunResult",
    "UsmBuffer",
    "WindowRecord",
    "estimate_pipeline_memory",
    "format_gantt",
    "max_depth_within",
    "pipeline_bubbles",
]
