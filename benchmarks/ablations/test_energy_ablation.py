"""Ablation (extension): the energy/latency frontier of the candidates.

The paper motivates edge processing with energy but only optimizes
latency.  With the energy model (repro.soc.energy) we can ask what that
leaves on the table: across the K candidates, how different are the
latency-best and energy-best schedules, and what does the Jetson's 7 W
mode actually buy per task?
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_octree_application
from repro.core.framework import BetterTogether
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import estimate_energy, get_platform


def candidate_energy_frontier(application, platform, optimization,
                              n_tasks=20):
    """(latency, energy/task) for every candidate schedule."""
    points = []
    for candidate in optimization.candidates:
        executor = SimulatedPipelineExecutor(
            application, candidate.schedule.chunks(), platform
        )
        result = executor.run(n_tasks)
        report = estimate_energy(result, platform)
        points.append(
            (candidate, result.steady_interval_s, report.per_task_j)
        )
    return points


def test_energy_latency_frontier(benchmark):
    platform = get_platform("pixel7a")
    application = build_octree_application()
    framework = BetterTogether(platform, repetitions=10, k=15,
                               eval_tasks=15)
    table = framework.profile(application)
    optimization = framework.optimize(application, table)

    points = run_once(
        benchmark, candidate_energy_frontier,
        application, platform, optimization,
    )
    latency_best = min(points, key=lambda p: p[1])
    energy_best = min(points, key=lambda p: p[2])
    print("\nlatency-best:", latency_best[0].schedule,
          f"{latency_best[1] * 1e3:.3f} ms, {latency_best[2] * 1e3:.2f} mJ/task")
    print("energy-best: ", energy_best[0].schedule,
          f"{energy_best[1] * 1e3:.3f} ms, {energy_best[2] * 1e3:.2f} mJ/task")

    # The frontier is non-trivial: optimizing latency alone is not
    # optimizing energy.
    assert energy_best[2] <= latency_best[2]
    # But within the gapness-filtered candidates, the energy-best stays
    # within a modest latency factor - balanced schedules waste little.
    assert energy_best[1] < 3.0 * latency_best[1]


def test_lp_mode_saves_energy_per_task(benchmark):
    application = build_octree_application()

    def measure():
        outcomes = {}
        for name in ("jetson_orin_nano", "jetson_orin_nano_lp"):
            platform = get_platform(name)
            plan = BetterTogether(platform, repetitions=10, k=8,
                                  eval_tasks=15).run(application)
            result = plan.execute(n_tasks=20)
            report = estimate_energy(result, platform)
            outcomes[name] = (result.steady_interval_s,
                              report.per_task_j)
        return outcomes

    outcomes = run_once(benchmark, measure)
    normal_latency, normal_energy = outcomes["jetson_orin_nano"]
    lp_latency, lp_energy = outcomes["jetson_orin_nano_lp"]
    print(f"\nnormal: {normal_latency * 1e3:.3f} ms/task, "
          f"{normal_energy * 1e3:.2f} mJ/task")
    print(f"7W:     {lp_latency * 1e3:.3f} ms/task, "
          f"{lp_energy * 1e3:.2f} mJ/task")
    # The power mode's purpose: pay latency, save energy per task.
    assert lp_latency > normal_latency
    assert lp_energy < normal_energy
