"""Hierarchical, deterministic tracer for every layer of the stack.

The paper frames BT-Implementer as "a rigorous empirical tool for
exploring and evaluating pipeline schedules"; diagnosing *why* a window
was slow or a candidate was evicted needs one correlated timeline across
the profiler, solver, autotuner, DES runtime and serving layers - not
four disjoint reports.  This module provides that spine: a tracer that
records spans (with parent/child links) and instant events into a single
in-memory list, ready for the exporters in :mod:`repro.obs.export`.

Two clock domains keep traces byte-deterministic without wall time:

``control``
    A logical event counter.  Every span open/close and every instant
    advances it by one tick, so control-plane work (profiling cells,
    solver rounds, admission decisions) nests correctly and totally
    orders identically on every seeded run.

``virtual``
    DES virtual time.  The simulator retro-emits its recorded spans at
    the end of a run; a per-tracer *virtual cursor* lays successive runs
    out back-to-back so two serve windows never overlap on the exported
    timeline.

The global tracer is **disabled by default** and every instrumentation
site is guarded by ``tracer().enabled``, so uninstrumented runs pay one
attribute read per *run* (not per event) and allocate nothing - the
benchmark in ``benchmarks/test_observability_overhead.py`` holds the
line at <2% DES overhead.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Control-plane clock domain (logical event counter).
CONTROL = "control"
#: DES virtual-time clock domain (seconds, laid out by the cursor).
VIRTUAL = "virtual"

#: Parent id used for root events (no enclosing span).
ROOT = 0


@dataclass(frozen=True)
class TraceEvent:
    """One node of the span tree (or an instant leaf).

    ``ts``/``dur`` are logical ticks in the ``control`` domain and
    seconds in the ``virtual`` domain; exporters scale per domain.
    ``attrs`` is a sorted tuple of (key, value) pairs so events stay
    hashable and serialize identically on every run.
    """

    event_id: int
    parent_id: int
    name: str
    category: str
    kind: str  # "span" | "instant"
    domain: str  # CONTROL | VIRTUAL
    ts: float
    dur: float
    track: str
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default


def _freeze_attrs(attrs: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(attrs.items()))


class Tracer:
    """Collects :class:`TraceEvent` s; disabled instances do nothing.

    All mutation happens under one lock so the threaded back-end's
    dispatchers can emit concurrently; on the deterministic paths
    (DES, serving loop thread) a single thread emits, so event order -
    and therefore the exported bytes - is a pure function of the seed.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []
        self._tick = 0
        self._next_id = 1
        self._virtual_cursor = 0.0
        self._tls = threading.local()

    # -- clock / id plumbing ------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_span_id(self) -> int:
        """Id of the innermost open span on this thread (ROOT if none)."""
        stack = self._stack()
        return stack[-1] if stack else ROOT

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    # -- control-domain emission --------------------------------------
    @contextmanager
    def span(self, name: str, category: str,
             **attrs: Any) -> Iterator[int]:
        """Open a control-domain span; yields its event id.

        Nested ``span()`` calls on the same thread become children.
        The span is appended on close (Chrome's format does not require
        open-order), with ``dur`` equal to the number of logical ticks
        that elapsed inside it - children therefore nest strictly.
        """
        if not self.enabled:
            yield ROOT
            return
        stack = self._stack()
        parent = stack[-1] if stack else ROOT
        with self._lock:
            event_id = self._next_id
            self._next_id += 1
            start = self._tick
            self._tick += 1
        stack.append(event_id)
        try:
            yield event_id
        finally:
            stack.pop()
            with self._lock:
                end = self._tick
                self._tick += 1
                self._events.append(TraceEvent(
                    event_id=event_id, parent_id=parent, name=name,
                    category=category, kind="span", domain=CONTROL,
                    ts=float(start), dur=float(end - start),
                    track=category, attrs=_freeze_attrs(attrs),
                ))

    def instant(self, name: str, category: str,
                track: Optional[str] = None, **attrs: Any) -> int:
        """Record a zero-duration control-domain event; returns its id."""
        if not self.enabled:
            return ROOT
        parent = self.current_span_id()
        with self._lock:
            event_id = self._next_id
            self._next_id += 1
            ts = self._tick
            self._tick += 1
            self._events.append(TraceEvent(
                event_id=event_id, parent_id=parent, name=name,
                category=category, kind="instant", domain=CONTROL,
                ts=float(ts), dur=0.0,
                track=track if track is not None else category,
                attrs=_freeze_attrs(attrs),
            ))
        return event_id

    # -- virtual-domain emission --------------------------------------
    def emit_virtual_spans(self, spans: Sequence[Any], total_s: float,
                           parent_id: int = ROOT,
                           category: str = "runtime") -> None:
        """Retro-emit recorded DES spans at the current virtual cursor.

        ``spans`` are :class:`repro.runtime.trace.Span`-shaped objects.
        The cursor advances by ``total_s`` afterwards, so successive
        runs (e.g. serve windows) occupy disjoint timeline intervals.
        One track per (tenant, PU class) keeps interleaved tenants
        separable, matching the Gantt sections.
        """
        if not self.enabled:
            return
        with self._lock:
            base = self._virtual_cursor
            self._virtual_cursor = base + max(total_s, 0.0)
            for span in spans:
                event_id = self._next_id
                self._next_id += 1
                tenant = span.tenant if span.tenant is not None else "run"
                self._events.append(TraceEvent(
                    event_id=event_id, parent_id=parent_id,
                    name=f"chunk{span.chunk_index}/task{span.task_id}",
                    category=category, kind="span", domain=VIRTUAL,
                    ts=base + span.start_s, dur=span.duration_s,
                    track=f"{tenant}/{span.pu_class}",
                    attrs=_freeze_attrs({
                        "chunk": span.chunk_index,
                        "task": span.task_id,
                        "pu": span.pu_class,
                        "tenant": span.tenant,
                    }),
                ))


# ----------------------------------------------------------------------
# Global tracer (off by default) and capture scope
# ----------------------------------------------------------------------
_GLOBAL = Tracer(enabled=False)


def tracer() -> Tracer:
    """The process-global tracer; disabled unless inside a capture."""
    return _GLOBAL


def set_tracer(instance: Tracer) -> Tracer:
    """Install ``instance`` as the global tracer; returns the old one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = instance
    return previous


@dataclass
class Capture:
    """Handle yielded by :func:`capture` - the live obs instruments."""

    tracer: Tracer
    metrics: Any
    recorder: Any

    @property
    def events(self) -> List[TraceEvent]:
        return self.tracer.events


@contextmanager
def capture(flight_capacity: int = 256) -> Iterator[Capture]:
    """Enable observability for a scope with fresh instruments.

    Installs a fresh enabled tracer, metrics registry and flight
    recorder, and restores the previous (normally disabled) instruments
    on exit - so tests and CLI commands opt in without perturbing the
    byte-identity of uninstrumented runs.
    """
    from repro.obs.metrics import MetricsRegistry, set_metrics
    from repro.obs.recorder import FlightRecorder, set_recorder

    trc = Tracer(enabled=True)
    reg = MetricsRegistry(enabled=True)
    rec = FlightRecorder(capacity=flight_capacity, enabled=True)
    prev_tracer = set_tracer(trc)
    prev_metrics = set_metrics(reg)
    prev_recorder = set_recorder(rec)
    try:
        yield Capture(tracer=trc, metrics=reg, recorder=rec)
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
        set_recorder(prev_recorder)
