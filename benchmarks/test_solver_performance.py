"""Benchmark for the solver's per-invocation cost (paper section 3.3:
each z3 invocation on the Pixel/AlexNet case completes in < 50 ms)."""

import pytest

from repro.apps import build_alexnet_sparse
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.soc import get_platform


@pytest.fixture(scope="module")
def paper_case():
    """The paper's sizing example: N=9 stages, M=4 PU classes."""
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    table = BTProfiler(platform, repetitions=5).profile(application)
    return application, table.restricted(platform.schedulable_classes())


def test_solver_single_invocation_under_paper_budget(benchmark, paper_case):
    application, table = paper_case

    def solve_level1():
        return BTOptimizer(application, table).optimize_utilization()

    result = benchmark(solve_level1)
    assert result.gapness_s >= 0.0
    # Paper: < 50 ms per invocation on a commodity laptop.  Allow head
    # room for slow CI machines.
    assert benchmark.stats["mean"] < 0.25


def test_full_k20_campaign(benchmark, paper_case):
    application, table = paper_case

    def solve_all():
        return BTOptimizer(application, table, k=20).optimize()

    result = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    assert len(result.candidates) == 20
    mean_invocation = result.solver_wall_s / result.solver_invocations
    print(f"\nmean solver invocation: {mean_invocation * 1e3:.1f} ms "
          f"over {result.solver_invocations} invocations")
    assert mean_invocation < 0.25
