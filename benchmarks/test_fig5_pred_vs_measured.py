"""Benchmark + shape check for Fig. 5 (three modeling flows compared)."""

from benchmarks.conftest import run_once
from repro.eval.experiments import format_fig5, run_fig5


def test_fig5_model_flows(benchmark, paper_scale):
    result = run_once(benchmark, run_fig5, paper_scale)
    print("\n" + format_fig5(result))

    bt = result.series["bettertogether"]
    latency_only = result.series["latency-only"]
    isolated = result.series["isolated"]

    # (a) correlates strongly; (b) and (c) visibly worse; (c) worst or
    # tied-worst (the paper's Fig. 5 ordering).
    assert bt.correlation > 0.9
    assert bt.correlation > latency_only.correlation + 0.1
    assert bt.correlation > isolated.correlation + 0.1

    # The motivating observation (section 1): the isolated flow's
    # predictions diverge from reality - its best prediction is
    # optimistic (predicted < measured).
    assert isolated.predicted_s[0] < isolated.measured_s[0]
