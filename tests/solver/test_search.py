"""Tests for the DPLL search engine: solve, enumerate, minimize."""

import itertools

import pytest

from repro.errors import ModellingError, SolverTimeoutError
from repro.solver import Model, Solver, UNASSIGNED


def build_pigeonhole(holes, pigeons):
    """Pigeons-to-holes model: each pigeon in exactly one hole, holes hold
    at most one pigeon.  Infeasible iff pigeons > holes."""
    model = Model()
    x = {
        (p, h): model.new_bool(f"p{p}h{h}")
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        model.add_exactly_one([x[p, h] for h in range(holes)])
    for h in range(holes):
        model.add_at_most_one([x[p, h] for p in range(pigeons)])
    return model, x


class TestSolve:
    def test_simple_sat(self):
        model = Model()
        a = model.new_bool("a")
        b = model.new_bool("b")
        model.add_clause([a, b])
        model.add_clause([~a])
        solution = Solver(model).solve()
        assert solution is not None
        assert not solution[a]
        assert solution[b]

    def test_unsat_returns_none(self):
        model = Model()
        a = model.new_bool("a")
        model.add_clause([a])
        model.add_clause([~a])
        assert Solver(model).solve() is None

    def test_pigeonhole_feasible(self):
        model, _ = build_pigeonhole(holes=3, pigeons=3)
        assert Solver(model).solve() is not None

    def test_pigeonhole_infeasible(self):
        model, _ = build_pigeonhole(holes=2, pigeons=3)
        assert Solver(model).solve() is None

    def test_lookup_by_name(self):
        model = Model()
        a = model.new_bool("a")
        model.add_clause([a])
        solution = Solver(model).solve()
        assert solution["a"] is True

    def test_decision_budget(self):
        model, _ = build_pigeonhole(holes=6, pigeons=6)
        solver = Solver(model, max_decisions=1)
        with pytest.raises(SolverTimeoutError):
            list(solver.enumerate())


class TestEnumerate:
    def test_counts_all_solutions(self):
        # Exactly-one over 4 variables has exactly 4 solutions.
        model = Model()
        xs = [model.new_bool(f"x{i}") for i in range(4)]
        model.add_exactly_one(xs)
        solutions = list(Solver(model).enumerate())
        assert len(solutions) == 4
        picked = {tuple(s[x] for x in xs) for s in solutions}
        assert len(picked) == 4

    def test_limit_respected(self):
        model = Model()
        xs = [model.new_bool(f"x{i}") for i in range(4)]
        model.add_exactly_one(xs)
        assert len(list(Solver(model).enumerate(limit=2))) == 2

    def test_permutation_count(self):
        # 3 pigeons into 3 holes: 3! = 6 solutions.
        model, _ = build_pigeonhole(holes=3, pigeons=3)
        assert len(list(Solver(model).enumerate())) == 6

    def test_blocking_clause_excludes_solution(self):
        model = Model()
        xs = [model.new_bool(f"x{i}") for i in range(3)]
        model.add_exactly_one(xs)
        first = Solver(model).solve()
        true_vars = [x for x in xs if first[x]]
        model.forbid_assignment(true_vars)
        remaining = list(Solver(model).enumerate())
        assert len(remaining) == 2
        for solution in remaining:
            assert [solution[x] for x in xs] != [first[x] for x in xs]

    def test_iterated_blocking_exhausts_space(self):
        model = Model()
        xs = [model.new_bool(f"x{i}") for i in range(4)]
        model.add_exactly_one(xs)
        found = 0
        while True:
            solution = Solver(model).solve()
            if solution is None:
                break
            found += 1
            model.forbid_assignment([x for x in xs if solution[x]])
        assert found == 4


class TestMinimize:
    def test_minimize_weighted_pick(self):
        model = Model()
        weights = [5.0, 2.0, 7.0, 3.0]
        xs = [model.new_bool(f"x{i}") for i in range(4)]
        model.add_exactly_one(xs)

        def objective(values):
            return sum(w for x, w in zip(xs, weights) if values[x.index] == 1)

        result = Solver(model).minimize(objective)
        assert result is not None
        solution, value = result
        assert value == pytest.approx(2.0)
        assert solution[xs[1]]

    def test_minimize_infeasible(self):
        model = Model()
        a = model.new_bool("a")
        model.add_clause([a])
        model.add_clause([~a])
        assert Solver(model).minimize(lambda values: 0.0) is None

    def test_minimize_matches_bruteforce(self):
        # Random-ish structured instance, validated against brute force.
        model = Model()
        n = 8
        xs = [model.new_bool(f"x{i}") for i in range(n)]
        model.add_clause([xs[0], xs[1], xs[2]])
        model.add_clause([~xs[0], xs[3]])
        model.add_linear_le([(xs[i], 1.0) for i in range(n)], bound=4.0)
        model.add_linear_ge([(xs[i], 1.0) for i in range(n)], bound=2.0)
        weights = [3.1, 1.7, 4.4, 0.9, 2.2, 5.0, 0.3, 1.1]

        def objective(values):
            return sum(
                w for x, w in zip(xs, weights) if values[x.index] == 1
            )

        result = Solver(model).minimize(objective)
        assert result is not None
        _, value = result

        best = None
        for bits in itertools.product([0, 1], repeat=n):
            if all(c.satisfied_by(bits) for c in model.constraints):
                cand = sum(w for b, w in zip(bits, weights) if b)
                best = cand if best is None else min(best, cand)
        assert value == pytest.approx(best)

    def test_lower_bound_pruning_preserves_optimum(self):
        model = Model()
        weights = [5.0, 2.0, 7.0, 3.0]
        xs = [model.new_bool(f"x{i}") for i in range(4)]
        model.add_exactly_one(xs)

        def objective(values):
            return sum(w for x, w in zip(xs, weights) if values[x.index] == 1)

        def lower_bound(values):
            # committed weight so far - admissible
            return sum(
                w for x, w in zip(xs, weights) if values[x.index] == 1
            )

        pruned = Solver(model)
        result = pruned.minimize(objective, lower_bound=lower_bound)
        assert result is not None
        assert result[1] == pytest.approx(2.0)

    def test_stats_populated(self):
        model, _ = build_pigeonhole(holes=3, pigeons=3)
        solver = Solver(model)
        solver.solve()
        assert solver.stats.decisions > 0
        assert solver.stats.propagations > 0


class TestModelValidation:
    def test_duplicate_name_rejected(self):
        model = Model()
        model.new_bool("a")
        with pytest.raises(ModellingError):
            model.new_bool("a")

    def test_unknown_variable_lookup(self):
        with pytest.raises(ModellingError):
            Model().variable("nope")

    def test_foreign_variable_rejected(self):
        m1, m2 = Model(), Model()
        a = m1.new_bool("a")
        with pytest.raises(ModellingError):
            m2.add_clause([a])

    def test_forbid_empty_rejected(self):
        with pytest.raises(ModellingError):
            Model().forbid_assignment([])

    def test_unassigned_sentinel_is_negative(self):
        assert UNASSIGNED == -1


class TestMaximize:
    def test_maximize_weighted_pick(self):
        model = Model()
        weights = [5.0, 2.0, 7.0, 3.0]
        xs = [model.new_bool(f"x{i}") for i in range(4)]
        model.add_exactly_one(xs)

        def objective(values):
            return sum(w for x, w in zip(xs, weights) if values[x.index] == 1)

        result = Solver(model).maximize(objective)
        assert result is not None
        solution, value = result
        assert value == pytest.approx(7.0)
        assert solution[xs[2]]

    def test_maximize_infeasible(self):
        model = Model()
        a = model.new_bool("a")
        model.add_clause([a])
        model.add_clause([~a])
        assert Solver(model).maximize(lambda values: 1.0) is None

    def test_maximize_with_upper_bound_pruning(self):
        model = Model()
        weights = [1.0, 2.0, 4.0]
        xs = [model.new_bool(f"x{i}") for i in range(3)]
        model.add_at_most_one(xs)

        def objective(values):
            return sum(w for x, w in zip(xs, weights) if values[x.index] == 1)

        def upper_bound(values):
            # Committed weight plus everything still undecided.
            total = 0.0
            for x, w in zip(xs, weights):
                if values[x.index] != 0:
                    total += w
            return total

        result = Solver(model).maximize(objective, upper_bound=upper_bound)
        assert result is not None
        assert result[1] == pytest.approx(4.0)
