"""One driver per paper table/figure; see DESIGN.md's experiment index."""

from repro.eval.experiments.common import (
    APP_LABELS,
    APP_ORDER,
    PLATFORM_LABELS,
    ExperimentScale,
    build_applications,
    evaluation_platforms,
    measure_candidates,
)
from repro.eval.experiments.fig1 import Fig1Result, format_fig1, run_fig1
from repro.eval.experiments.fig4 import Fig4Result, format_fig4, run_fig4
from repro.eval.experiments.fig5 import Fig5Result, format_fig5, run_fig5
from repro.eval.experiments.fig6 import Fig6Result, format_fig6, run_fig6
from repro.eval.experiments.fig7 import (
    PAPER_RATIOS,
    Fig7Result,
    format_fig7,
    run_fig7,
)
from repro.eval.experiments.table3 import (
    PAPER_WINNERS,
    Table3Result,
    format_table3,
    run_table3,
)
from repro.eval.experiments.table4 import (
    Table4Result,
    format_table4,
    run_table4,
)
from repro.eval.experiments.tables12 import format_table1, format_table2

__all__ = [
    "APP_LABELS",
    "APP_ORDER",
    "ExperimentScale",
    "Fig1Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "PAPER_RATIOS",
    "PAPER_WINNERS",
    "PLATFORM_LABELS",
    "Table3Result",
    "Table4Result",
    "build_applications",
    "evaluation_platforms",
    "format_fig1",
    "format_fig4",
    "format_fig5",
    "format_fig6",
    "format_fig7",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "measure_candidates",
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table3",
    "run_table4",
]
