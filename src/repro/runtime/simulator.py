"""BT-Implementer, performance back-end: rate-based discrete-event sim.

Produces every "measured on the device" number in the experiments.  The
pipeline is simulated on the virtual SoC with interference as an
*emergent* quantity: each executing stage progresses at an instantaneous
rate that depends on which other PUs are busy at that moment and how much
DRAM bandwidth they are collectively drawing.  Because co-run conditions
during a real pipeline differ from both profiling modes (isolated: nobody
else runs; interference-heavy: everybody runs flat out), predictions made
from either profiling table can deviate from these measurements - exactly
the gap the paper's Figs. 5-6 quantify and its autotuning level 3 mops up.

Mechanics: each chunk is a server processing tasks in order.  A stage
execution has a fixed overhead phase (dispatch/launch - unaffected by
interference) followed by a work phase whose remaining work drains at
``rate = interference.speed_multiplier(...)``.  Whenever any stage starts
or finishes, the active set changes and all rates are recomputed - a
standard piecewise-constant-rate DES.

Multi-buffering: ``depth`` TaskObjects circulate; the first chunk may only
admit task ``t`` once fewer than ``depth`` tasks are in flight, mirroring
the recycling queue of section 3.4.

Two engines implement the event loop, selected by the ``REPRO_SIM_ENGINE``
environment variable (or the ``engine=`` constructor argument):

* ``vector`` (default) - the batched event kernel: per-server
  ``remaining``/``rate``/``busy`` state lives in preallocated numpy
  arrays, instantaneous rates are recomputed only when the discrete
  phase signature (who is active, in which stage, which phase) actually
  changes - and then for all active servers in one pass, memoized per
  signature - and the min-``dt`` reduction plus the advance step are
  single vectorized operations.  Pipelines with few servers take an
  unrolled scalar core of the same kernel (numpy per-op dispatch
  overhead exceeds the arithmetic below ~8 lanes).
* ``reference`` - the original, readable scalar loop, kept as the
  correctness oracle.  The engine-equivalence suite asserts the two
  produce byte-identical :class:`SimulatedRunResult`\\ s (completions,
  busy seconds, spans, event counts) across seeds, schedules, depths,
  arrivals, fault injection and external load.

Rate determinism makes the memoization exact rather than approximate:
between events rates are a pure function of the phase signature (plus
the run-constant :class:`~repro.soc.interference.ExternalLoad`), so a
cached rate vector is bit-equal to a recomputed one.

Both engines share the float-residue policy: the server whose phase
defines ``dt`` has its remaining work snapped to exactly ``0.0`` after
the advance (``remaining -= dt * rate`` with ``dt = remaining / rate``
leaves magnitude-dependent residue otherwise), and phase completion
compares against a *relative* epsilon (``remaining <= phase_total *
1e-12``), so large ``work_s`` values no longer shed spurious
near-zero-``dt`` micro-events.

Batching: :func:`simulate_batch` runs many independent windows - all
tenants of a serve tick, all autotuner measurements of a round - in one
call, and :meth:`SimulatedPipelineExecutor.run_batch` streams several
windows through one executor back to back, reusing the engine's
preallocated arrays plus its warm rate-signature and noise caches.
"""

from __future__ import annotations

import hashlib
import os
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.stage import Application, Chunk
from repro.errors import PipelineError
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.runtime.faults import FaultInjector
from repro.runtime.trace import Span, record_span
from repro.soc.interference import ExternalLoad, external_co_load
from repro.soc.platform import Platform

#: Relative run-to-run jitter of a single stage execution (smaller than
#: the timer's measurement noise; real kernels are quite repeatable).
_EXEC_NOISE_SIGMA = 0.01

_IDLE = -1

#: Phase completion epsilon, *relative* to the phase's total duration.
#: An absolute epsilon is magnitude-blind: ``remaining -= dt * rate``
#: after ``dt = remaining / rate`` leaves residue on the order of one
#: ulp of the phase total, which for large ``work_s`` dwarfs any fixed
#: threshold and used to produce spurious micro-events.
_REL_EPS = 1e-12

#: Environment variable selecting the event-loop engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"
ENGINE_VECTOR = "vector"
ENGINE_REFERENCE = "reference"
_ENGINES = (ENGINE_VECTOR, ENGINE_REFERENCE)

#: Below this many chunk servers the batch kernel runs its unrolled
#: scalar core: numpy's per-call dispatch overhead (~0.5 us) exceeds
#: the cost of the handful of float operations a narrow pipeline needs
#: per event.  Wide pipelines use the array core.
_SCALAR_CORE_MAX_SERVERS = 8


def _resolve_engine(explicit: Optional[str]) -> str:
    """Engine choice: explicit argument beats ``REPRO_SIM_ENGINE``."""
    name = explicit or os.environ.get(ENGINE_ENV) or ENGINE_VECTOR
    name = name.strip().lower()
    if name not in _ENGINES:
        raise PipelineError(
            f"unknown simulator engine {name!r}; expected one of "
            f"{list(_ENGINES)} (via engine= or ${ENGINE_ENV})"
        )
    return name


@dataclass
class SimulatedRunResult:
    """Outcome of a simulated pipeline run.

    Attributes:
        n_tasks: Tasks streamed through.
        total_s: Virtual time from start to last completion.
        completion_times_s: Per-task completion timestamps.
        steady_interval_s: Steady-state per-task interval (the pipeline's
            effective latency; the quantity Table 3/4 report per task).
        chunk_busy_s: Busy virtual seconds per chunk index.
        chunk_pu: PU class per chunk index.
        spans: Per-(chunk, task) execution spans when tracing was
            requested (``run(..., record_trace=True)``); empty otherwise.
        arrival_times_s: When each task became available.  All zero for
            the default backlogged run; set by ``arrival_period_s``.
        n_events: Event-loop iterations the run took - the DES cost
            metric the micro-event regression tests bound, and a strong
            cross-engine equivalence signal.
    """

    n_tasks: int
    total_s: float
    completion_times_s: List[float]
    steady_interval_s: float
    chunk_busy_s: Dict[int, float] = field(default_factory=dict)
    chunk_pu: Dict[int, str] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    arrival_times_s: List[float] = field(default_factory=list)
    n_events: int = 0

    def end_to_end_latencies_s(self) -> List[float]:
        """Per-task arrival-to-completion latency.

        For a backlogged run (all arrivals at 0) this is dominated by
        queueing behind earlier tasks; with a real arrival period it is
        the sensor-to-result latency a deployment cares about.
        """
        arrivals = self.arrival_times_s or [0.0] * self.n_tasks
        return [
            completion - arrival
            for completion, arrival in zip(self.completion_times_s,
                                           arrivals)
        ]

    def keeps_up_with_arrivals(self, slack: float = 1.5) -> bool:
        """Whether end-to-end latency stays bounded (no divergent queue):
        the last task's latency must not exceed ``slack`` times the
        median - a growing backlog shows up as a rising tail."""
        latencies = self.end_to_end_latencies_s()
        if len(latencies) < 4:
            return True
        median = sorted(latencies)[len(latencies) // 2]
        return latencies[-1] <= slack * max(median, 1e-12)

    @property
    def throughput_tasks_per_s(self) -> float:
        if self.steady_interval_s <= 0:
            return float("inf")
        return 1.0 / self.steady_interval_s

    def utilization(self, chunk_index: int) -> float:
        """Busy fraction of the run for one chunk."""
        if self.total_s <= 0:
            return 0.0
        return self.chunk_busy_s.get(chunk_index, 0.0) / self.total_s


@dataclass
class _StageCost:
    overhead_s: float
    work_s: float
    memory_boundedness: float
    demand_gbps: float


class _ChunkServer:
    """Execution state of one chunk's dispatcher (reference engine)."""

    def __init__(self, index: int, chunk: Chunk,
                 stage_costs: List[_StageCost]):
        self.index = index
        self.chunk = chunk
        self.stage_costs = stage_costs
        self.task = _IDLE
        self.stage = 0
        self.in_overhead = True
        self.remaining = 0.0
        self.phase_total = 0.0
        self.noise_scale = 1.0
        self.ready: Deque[int] = deque()  # upstream-completed ids, FIFO
        self.busy_s = 0.0

    @property
    def idle(self) -> bool:
        return self.task == _IDLE

    def begin_task(self, task_id: int, noise_scale_fn) -> None:
        self.task = task_id
        self.stage = 0
        self._enter_stage(noise_scale_fn)

    def _enter_stage(self, noise_scale_fn) -> None:
        cost = self.stage_costs[self.stage]
        self.in_overhead = cost.overhead_s > 0.0
        self.noise_scale = noise_scale_fn(self.task, self.stage)
        if self.in_overhead:
            self.remaining = cost.overhead_s
        else:
            self.remaining = cost.work_s * self.noise_scale
        self.phase_total = self.remaining

    def advance(self, dt: float, rate: float) -> None:
        self.remaining -= dt * rate
        self.busy_s += dt

    def finished_phase(self) -> bool:
        return self.remaining <= self.phase_total * _REL_EPS

    def next_phase(self, noise_scale_fn) -> Optional[int]:
        """Move to the next phase/stage.  Returns the completed task id
        when the whole chunk is done with it, else None."""
        if self.in_overhead:
            self.in_overhead = False
            cost = self.stage_costs[self.stage]
            self.remaining = cost.work_s * self.noise_scale
            self.phase_total = self.remaining
            if self.remaining > 0.0:
                return None
        self.stage += 1
        if self.stage < len(self.stage_costs):
            self._enter_stage(noise_scale_fn)
            return None
        done = self.task
        self.task = _IDLE
        return done


class _VectorEngine:
    """The batched event kernel behind the default ``vector`` engine.

    Per-server state lives in preallocated arrays indexed by server
    position; rates are memoized per *phase signature* - the tuple of
    per-server phase codes (``-1`` idle, else ``stage * 2 + work_flag``)
    - because between events the instantaneous rate vector is a pure
    function of that signature plus the run-constant external load.
    Wide pipelines advance and reduce with vectorized numpy operations;
    narrow ones (the common 2-4 chunk schedules) use an unrolled scalar
    core over the same state, where numpy dispatch overhead would
    dominate.  Both cores perform identical float arithmetic, so engine
    output is independent of the core taken.
    """

    def __init__(self, executor: "SimulatedPipelineExecutor"):
        self._ex = executor
        servers = executor._servers
        n = self.n = len(servers)
        self.costs = [s.stage_costs for s in servers]
        self.n_stages = [len(c) for c in self.costs]
        self.pu_class = [s.chunk.pu_class for s in servers]
        self.external = executor._external
        self.platform = executor.platform
        self.total_other = max(len(self.platform.pu_classes()) - 1, 0)
        self.use_arrays = n > _SCALAR_CORE_MAX_SERVERS
        # -- preallocated per-server state ------------------------------
        if self.use_arrays:
            self.remaining = np.full(n, np.inf)
            self.busy = np.zeros(n)
            self.phase_eps = np.full(n, -1.0)
            self.active_f = np.zeros(n)
            self._dts = np.empty(n)
            self._tmp = np.empty(n)
            self._idle_remaining = np.inf
        else:
            self.remaining = [0.0] * n
            self.busy = [0.0] * n
            self.phase_eps = [-1.0] * n
            self.active_f = [0.0] * n
            self._idle_remaining = 0.0
        self.stage = [0] * n
        self.task = [_IDLE] * n
        self.noise = [1.0] * n
        self.overhead = [False] * n
        self.sig = [-1] * n
        self.ready: List[Deque[int]] = [deque() for _ in range(n)]
        self.n_active = 0
        #: signature -> (active index list, per-active rate list,
        #: full-width rate array for the vector core or None).
        self.rate_cache: Dict[Tuple[int, ...], tuple] = {}

    # -- state transitions (shared by both cores) ----------------------
    def _reset(self) -> None:
        n = self.n
        if self.use_arrays:
            self.remaining.fill(np.inf)
            self.busy.fill(0.0)
            self.phase_eps.fill(-1.0)
            self.active_f.fill(0.0)
        else:
            for i in range(n):
                self.remaining[i] = 0.0
                self.busy[i] = 0.0
                self.phase_eps[i] = -1.0
                self.active_f[i] = 0.0
        for i in range(n):
            self.stage[i] = 0
            self.task[i] = _IDLE
            self.noise[i] = 1.0
            self.overhead[i] = False
            self.sig[i] = -1
            self.ready[i].clear()
        self.n_active = 0

    def _enter_stage(self, i: int, scale_fn) -> None:
        stage = self.stage[i]
        cost = self.costs[i][stage]
        noise = scale_fn(self.task[i], stage)
        self.noise[i] = noise
        if cost.overhead_s > 0.0:
            self.overhead[i] = True
            remaining = cost.overhead_s
            self.sig[i] = stage * 2
        else:
            self.overhead[i] = False
            remaining = cost.work_s * noise
            self.sig[i] = stage * 2 + 1
        self.remaining[i] = remaining
        self.phase_eps[i] = remaining * _REL_EPS

    def _begin_task(self, i: int, task_id: int, scale_fn) -> None:
        self.task[i] = task_id
        self.stage[i] = 0
        self.active_f[i] = 1.0
        self.n_active += 1
        self._enter_stage(i, scale_fn)

    def _next_phase(self, i: int, scale_fn) -> Optional[int]:
        if self.overhead[i]:
            self.overhead[i] = False
            stage = self.stage[i]
            work = self.costs[i][stage].work_s * self.noise[i]
            self.remaining[i] = work
            self.phase_eps[i] = work * _REL_EPS
            self.sig[i] = stage * 2 + 1
            if work > 0.0:
                return None
        self.stage[i] += 1
        if self.stage[i] < self.n_stages[i]:
            self._enter_stage(i, scale_fn)
            return None
        done = self.task[i]
        self.task[i] = _IDLE
        self.sig[i] = -1
        self.remaining[i] = self._idle_remaining
        self.phase_eps[i] = -1.0
        self.active_f[i] = 0.0
        self.n_active -= 1
        return done

    # -- instantaneous rates -------------------------------------------
    def _rates_for(self, key: Tuple[int, ...]) -> tuple:
        """Rates for every active server under one phase signature.

        One pass over the active set, using the same scalar model calls
        as the reference engine so cached vectors are bit-equal to what
        a per-event recomputation would produce.
        """
        active = [i for i in range(self.n) if key[i] != -1]
        busy_classes = {self.pu_class[i] for i in active}
        external = self.external
        total_demand = 0.0
        for i in active:
            if key[i] & 1:
                total_demand += self.costs[i][key[i] >> 1].demand_gbps
        if external is not None:
            total_demand += external.demand_gbps
        rates: List[float] = []
        for i in active:
            if not key[i] & 1:
                rates.append(1.0)
                continue
            cost = self.costs[i][key[i] >> 1]
            pu_class = self.pu_class[i]
            co_load = external_co_load(
                busy_classes, pu_class, external, self.total_other,
            )
            rate = self.platform.instantaneous_rate(
                memory_boundedness=cost.memory_boundedness,
                pu_class=pu_class,
                demand_gbps=cost.demand_gbps,
                total_demand_gbps=total_demand,
                co_load=co_load,
            )
            if external is not None:
                # A foreign co-runner on the *same* class time-shares
                # the cluster (fair-share split).
                share = external.busy.get(pu_class, 0.0)
                if share > 0.0:
                    rate /= 1.0 + share
            rates.append(rate)
        full = None
        if self.use_arrays:
            full = np.ones(self.n)
            full[active] = rates
        entry = (active, rates, full)
        self.rate_cache[key] = entry
        return entry

    # -- the event loop ------------------------------------------------
    def run_window(
        self,
        n_tasks: int,
        record_trace: bool,
        arrivals: List[float],
        scale_fns: List[Callable[[int, int], float]],
    ):
        self._reset()
        remaining = self.remaining
        busy = self.busy
        phase_eps = self.phase_eps
        task = self.task
        ready = self.ready
        depth = self._ex.depth
        n = self.n
        use_arrays = self.use_arrays
        rate_cache = self.rate_cache

        now = 0.0
        issued = 0
        events = 0
        completed: List[float] = []
        spans: List[Span] = []
        span_starts: Dict[int, float] = {}
        dirty = True
        entry = None

        while len(completed) < n_tasks:
            events += 1
            # Admit work.
            if (
                task[0] == _IDLE
                and issued < n_tasks
                and issued - len(completed) < depth
                and arrivals[issued] <= now + 1e-15
            ):
                self._begin_task(0, issued, scale_fns[0])
                if record_trace:
                    span_starts[0] = now
                issued += 1
                dirty = True
            for i in range(1, n):
                if task[i] == _IDLE and ready[i]:
                    self._begin_task(i, ready[i].popleft(), scale_fns[i])
                    if record_trace:
                        span_starts[i] = now
                    dirty = True

            if self.n_active == 0:
                if (
                    issued < n_tasks
                    and arrivals[issued] > now
                    and issued - len(completed) < depth
                ):
                    now = arrivals[issued]  # idle until the next arrival
                    continue
                raise PipelineError(
                    "pipeline deadlock: nothing active, tasks pending"
                )

            # Instantaneous rates: recomputed (or recalled) only when
            # the phase signature changed since the last event.
            if dirty:
                key = tuple(self.sig)
                entry = rate_cache.get(key)
                if entry is None:
                    entry = self._rates_for(key)
                dirty = False
            active, rates, full = entry

            # Advance to the next phase completion (or next arrival,
            # whichever lets the first chunk admit sooner).  The server
            # defining dt is snapped to exactly 0 remaining after the
            # advance, so no float residue survives.
            if use_arrays:
                np.divide(remaining, full, out=self._dts)
                snap = int(self._dts.argmin())
                dt = float(self._dts[snap])
            else:
                dt = None
                snap = -1
                for pos, i in enumerate(active):
                    cand = remaining[i] / rates[pos]
                    if dt is None or cand < dt:
                        dt = cand
                        snap = i
            if dt < 0.0:
                dt = 0.0
            if (
                task[0] == _IDLE
                and issued < n_tasks
                and issued - len(completed) < depth
                and arrivals[issued] > now
            ):
                cap = arrivals[issued] - now
                if cap < dt:
                    dt = cap
                    snap = -1
            now += dt
            if use_arrays:
                tmp = self._tmp
                np.multiply(full, dt, out=tmp)
                np.subtract(remaining, tmp, out=remaining)
                np.multiply(self.active_f, dt, out=tmp)
                np.add(busy, tmp, out=busy)
            else:
                for pos, i in enumerate(active):
                    remaining[i] -= dt * rates[pos]
                    busy[i] += dt
            if snap >= 0:
                remaining[snap] = 0.0

            # Process completions (any server whose phase drained),
            # in server order like the reference scan.
            for i in active:
                if task[i] == _IDLE or remaining[i] > phase_eps[i]:
                    continue
                previous_task = task[i]
                done_task = self._next_phase(i, scale_fns[i])
                dirty = True
                if done_task is None:
                    continue
                if record_trace:
                    spans.append(record_span(
                        chunk_index=i,
                        pu_class=self.pu_class[i],
                        task_id=previous_task,
                        start_s=span_starts.pop(i, now),
                        end_s=now,
                        tenant=self._ex.tenant,
                    ))
                if i + 1 < n:
                    ready[i + 1].append(done_task)
                else:
                    completed.append(now)

        busy_s = {i: float(busy[i]) for i in range(n)}
        return completed, spans, busy_s, now, events


@dataclass(frozen=True)
class SimWindow:
    """One independent simulation window of a batch.

    Attributes:
        executor: The executor whose pipeline the window runs on.
        n_tasks: Tasks streamed through the window.
        record_trace: Forwarded to :meth:`SimulatedPipelineExecutor.run`.
        arrival_period_s: Forwarded likewise.
    """

    executor: "SimulatedPipelineExecutor"
    n_tasks: int
    record_trace: bool = False
    arrival_period_s: Optional[float] = None


@dataclass
class SimBatchOutcome:
    """Result (or captured error) of one window of an error-collecting
    batch: exactly one of ``result``/``error`` is set."""

    result: Optional[SimulatedRunResult] = None
    error: Optional[Exception] = None


def simulate_batch(
    windows: Sequence[SimWindow],
    collect_errors: bool = False,
):
    """Simulate many independent windows in one call.

    The batch entry point the serving layer (all tenants of a tick) and
    the autotuner (all measurements of a round) use: each window runs
    on its own executor, so executors repeated across windows keep
    their preallocated engine state and warm rate-signature and noise
    caches instead of paying per-window setup.

    Args:
        windows: The windows, simulated in order (each is independent,
            so order only matters for error reporting).
        collect_errors: When true, a window raising a
            :class:`~repro.errors.ReproError` (e.g. injected PU
            dropout) yields a :class:`SimBatchOutcome` carrying the
            error instead of aborting the batch, and the return value
            is a list of outcomes.  When false (default), results are
            returned directly and the first error propagates.
    """
    from repro.errors import ReproError

    if not collect_errors:
        return [
            window.executor.run(
                window.n_tasks,
                record_trace=window.record_trace,
                arrival_period_s=window.arrival_period_s,
            )
            for window in windows
        ]
    outcomes: List[SimBatchOutcome] = []
    for window in windows:
        try:
            result = window.executor.run(
                window.n_tasks,
                record_trace=window.record_trace,
                arrival_period_s=window.arrival_period_s,
            )
        except ReproError as error:
            outcomes.append(SimBatchOutcome(error=error))
        else:
            outcomes.append(SimBatchOutcome(result=result))
    return outcomes


class SimulatedPipelineExecutor:
    """Simulate a schedule's pipeline execution on a virtual platform.

    Args:
        application: Provides the per-stage work profiles.
        chunks: Contiguous chunk decomposition of the schedule.
        platform: The virtual SoC (ground-truth oracle).
        depth: Multi-buffering depth (TaskObjects in flight); defaults to
            ``len(chunks) + 1``.
        fault_injector: Optional fault-injection layer
            (:mod:`repro.runtime.faults`): slowdowns and transient
            kernel faults scale per-stage costs, PU dropout raises
            :class:`~repro.errors.PuFailureError` mid-run.
        external_load: Optional
            :class:`~repro.soc.interference.ExternalLoad` describing
            co-runners outside this pipeline (other tenants on a
            shared SoC, injected interference drift).  External busy
            load on other classes raises the DVFS co-load, external
            bandwidth demand contends on the memory controller, and
            external load on a chunk's *own* class divides its rate by
            ``1 + fraction`` (time-sharing).
        tenant: Optional tenant/job id stamped on recorded trace spans
            so multi-tenant Gantt charts can separate the streams.
        engine: Event-loop engine, ``"vector"`` (default) or
            ``"reference"``; ``None`` defers to the
            ``REPRO_SIM_ENGINE`` environment variable.
    """

    def __init__(
        self,
        application: Application,
        chunks: Sequence[Chunk],
        platform: Platform,
        depth: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        external_load: Optional[ExternalLoad] = None,
        tenant: Optional[str] = None,
        engine: Optional[str] = None,
    ):
        from repro.runtime.pipeline import _check_chunk_cover

        _check_chunk_cover(application, chunks)
        for chunk in chunks:
            if chunk.pu_class not in platform.pu_classes():
                raise PipelineError(
                    f"{platform.name} has no PU class {chunk.pu_class!r}"
                )
        self.application = application
        self.chunks = list(chunks)
        self.platform = platform
        self.depth = depth if depth is not None else len(self.chunks) + 1
        if self.depth < 1:
            raise PipelineError("multi-buffering depth must be >= 1")
        self.engine = _resolve_engine(engine)
        self._servers = [
            _ChunkServer(i, chunk, self._costs_for(chunk))
            for i, chunk in enumerate(self.chunks)
        ]
        self._schedule_key = "|".join(
            f"{c.pu_class}:{c.start}-{c.stop}" for c in self.chunks
        )
        self._injector = fault_injector
        self._external = (
            None if external_load is None or external_load.is_empty
            else external_load
        )
        self.tenant = tenant
        # (task, stage) -> jitter scale; the digest + RNG construction
        # dominates the DES hot path without it.
        self._noise_cache: Dict[Tuple[int, int], float] = {}
        #: Digest + RNG constructions performed so far - a deterministic
        #: hook for cache-effectiveness tests (wall-clock comparisons of
        #: cold-vs-warm runs flake on loaded CI machines).
        self.noise_cache_misses = 0
        self._vector_engine: Optional[_VectorEngine] = None
        self._scale_fns: Optional[List[Callable[[int, int], float]]] = None

    def _costs_for(self, chunk: Chunk) -> List[_StageCost]:
        costs = []
        for index in chunk.stage_indices:
            stage = self.application.stages[index]
            breakdown = self.platform.isolated_breakdown(
                stage.work, chunk.pu_class
            )
            costs.append(
                _StageCost(
                    overhead_s=breakdown.overhead_s,
                    work_s=max(breakdown.compute_s, breakdown.memory_s),
                    memory_boundedness=breakdown.memory_boundedness,
                    demand_gbps=breakdown.demand_bw_gbps(
                        stage.work.bytes_moved
                    ),
                )
            )
        return costs

    def attribution_inputs(self) -> tuple:
        """Steady-state per-chunk load aggregates for blame decomposition.

        One :class:`~repro.obs.attribution.ChunkLoad` per chunk server:
        overheads and work times sum over the chunk's stages;
        memory-boundedness and bandwidth demand are work-time-weighted
        means, the same time-average the rate machinery applies phase by
        phase.  Pure derived data - calling this neither touches engine
        state nor costs anything when attribution is off (nobody calls
        it).
        """
        from repro.obs.attribution import ChunkLoad

        loads = []
        for server in self._servers:
            overhead = sum(c.overhead_s for c in server.stage_costs)
            work = sum(c.work_s for c in server.stage_costs)
            if work > 0.0:
                beta = sum(
                    c.memory_boundedness * c.work_s
                    for c in server.stage_costs
                ) / work
                demand = sum(
                    c.demand_gbps * c.work_s for c in server.stage_costs
                ) / work
            else:
                beta = 0.0
                demand = 0.0
            loads.append(ChunkLoad(
                pu_class=server.chunk.pu_class,
                overhead_s=overhead,
                work_s=work,
                memory_boundedness=beta,
                demand_gbps=demand,
            ))
        return tuple(loads)

    # ------------------------------------------------------------------
    def _noise_scale(self, task_id: int, stage: int) -> float:
        key = (task_id, stage)
        cached = self._noise_cache.get(key)
        if cached is not None:
            return cached
        self.noise_cache_misses += 1
        digest = hashlib.blake2b(
            f"{self.platform.name}|{self._schedule_key}|{task_id}|{stage}"
            .encode(),
            digest_size=8,
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest, "little"))
        sigma = _EXEC_NOISE_SIGMA
        scale = float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
        self._noise_cache[key] = scale
        return scale

    def _make_scale_fn(
        self, server: _ChunkServer,
    ) -> Callable[[int, int], float]:
        """Per-server phase-scale function: jitter plus injected faults.

        The fault hooks key on *global* stage indices, which only the
        server's chunk offset can recover from the DES's local ones.
        """
        if self._injector is None:
            return self._noise_scale

        def scale(task_id: int, local_stage: int) -> float:
            return self._noise_scale(task_id, local_stage) * (
                self._injector.sim_cost_scale(
                    server.chunk.pu_class,
                    server.chunk.start + local_stage,
                    task_id,
                )
            )

        return scale

    def _make_scale_fns(self) -> List[Callable[[int, int], float]]:
        if self._scale_fns is None:
            self._scale_fns = [
                self._make_scale_fn(s) for s in self._servers
            ]
        return self._scale_fns

    def run(self, n_tasks: int,
            record_trace: bool = False,
            arrival_period_s: Optional[float] = None) -> SimulatedRunResult:
        """Stream ``n_tasks`` through the pipeline in virtual time.

        Args:
            n_tasks: Tasks to stream.
            record_trace: Also record per-(chunk, task) execution spans
                for Gantt rendering (:mod:`repro.runtime.trace`).
            arrival_period_s: When given, task ``t`` only becomes
                available at ``t * arrival_period_s`` (a fixed-rate
                sensor); the default ``None`` models a pre-filled
                backlog, the paper's measurement condition.
        """
        if n_tasks < 1:
            raise PipelineError("n_tasks must be >= 1")
        if arrival_period_s is not None and arrival_period_s < 0:
            raise PipelineError("arrival_period_s must be >= 0")
        arrivals = [
            (arrival_period_s or 0.0) * t for t in range(n_tasks)
        ]
        scale_fns = self._make_scale_fns()
        if self.engine == ENGINE_REFERENCE:
            completed, spans, busy_s, now, events = self._run_reference(
                n_tasks, record_trace, arrivals, scale_fns
            )
        else:
            if self._vector_engine is None:
                self._vector_engine = _VectorEngine(self)
            completed, spans, busy_s, now, events = (
                self._vector_engine.run_window(
                    n_tasks, record_trace, arrivals, scale_fns
                )
            )
        return self._finalize(
            n_tasks, completed, spans, busy_s, now, events, arrivals
        )

    def run_batch(
        self,
        n_tasks: Sequence[int],
        record_trace: bool = False,
        arrival_period_s: Optional[float] = None,
    ) -> List[SimulatedRunResult]:
        """Simulate several independent windows back to back.

        All windows share this executor's engine state - preallocated
        arrays, warm rate-signature cache, warm noise cache - so a
        batch is cheaper than constructing an executor per window (the
        pattern serving ticks and autotuner rounds used to follow).
        """
        return simulate_batch([
            SimWindow(self, n, record_trace=record_trace,
                      arrival_period_s=arrival_period_s)
            for n in n_tasks
        ])

    # -- reference engine ----------------------------------------------
    def _run_reference(
        self,
        n_tasks: int,
        record_trace: bool,
        arrivals: List[float],
        scale_fns: List[Callable[[int, int], float]],
    ):
        for server in self._servers:
            server.task = _IDLE
            server.ready.clear()
            server.busy_s = 0.0

        now = 0.0
        issued = 0
        events = 0
        completed: List[float] = []
        spans: List[Span] = []
        span_starts: Dict[int, float] = {}

        while len(completed) < n_tasks:
            events += 1
            # Admit work.
            first = self._servers[0]
            if (
                first.idle
                and issued < n_tasks
                and issued - len(completed) < self.depth
                and arrivals[issued] <= now + 1e-15
            ):
                first.begin_task(issued, scale_fns[0])
                if record_trace:
                    span_starts[first.index] = now
                issued += 1
            for server in self._servers[1:]:
                if server.idle and server.ready:
                    server.begin_task(server.ready.popleft(),
                                      scale_fns[server.index])
                    if record_trace:
                        span_starts[server.index] = now

            active = [s for s in self._servers if not s.idle]
            if not active:
                if (
                    issued < n_tasks
                    and arrivals[issued] > now
                    and issued - len(completed) < self.depth
                ):
                    now = arrivals[issued]  # idle until the next arrival
                    continue
                raise PipelineError(
                    "pipeline deadlock: nothing active, tasks pending"
                )

            # Instantaneous rates under the current co-run condition,
            # internal (this pipeline's active chunks) plus external
            # (co-tenants / injected drift on the shared SoC).
            busy_classes = {s.chunk.pu_class for s in active}
            total_demand = sum(
                s.stage_costs[s.stage].demand_gbps
                for s in active
                if not s.in_overhead
            )
            if self._external is not None:
                total_demand += self._external.demand_gbps
            rates: Dict[int, float] = {}
            for server in active:
                if server.in_overhead:
                    rates[server.index] = 1.0
                    continue
                cost = server.stage_costs[server.stage]
                co_load = external_co_load(
                    busy_classes, server.chunk.pu_class,
                    self._external,
                    max(len(self.platform.pu_classes()) - 1, 0),
                )
                rate = self.platform.instantaneous_rate(
                    memory_boundedness=cost.memory_boundedness,
                    pu_class=server.chunk.pu_class,
                    demand_gbps=cost.demand_gbps,
                    total_demand_gbps=total_demand,
                    co_load=co_load,
                )
                if self._external is not None:
                    # A foreign co-runner on the *same* class
                    # time-shares the cluster (fair-share split).
                    share = self._external.busy.get(
                        server.chunk.pu_class, 0.0
                    )
                    if share > 0.0:
                        rate /= 1.0 + share
                rates[server.index] = rate

            # Advance to the next phase completion (or next arrival,
            # whichever lets the first chunk admit sooner).  The server
            # defining dt drains exactly: its remaining snaps to 0.0
            # after the advance, leaving no float residue.
            dt = None
            snap: Optional[_ChunkServer] = None
            for server in active:
                candidate = server.remaining / rates[server.index]
                if dt is None or candidate < dt:
                    dt = candidate
                    snap = server
            dt = max(dt, 0.0)
            if (
                first.idle
                and issued < n_tasks
                and issued - len(completed) < self.depth
                and arrivals[issued] > now
            ):
                cap = arrivals[issued] - now
                if cap < dt:
                    dt = cap
                    snap = None
            now += dt
            for server in active:
                server.advance(dt, rates[server.index])
            if snap is not None:
                snap.remaining = 0.0

            # Process completions (any server whose phase drained).
            for position, server in enumerate(self._servers):
                if server.idle or not server.finished_phase():
                    continue
                previous_task = server.task
                done_task = server.next_phase(scale_fns[position])
                if done_task is None:
                    continue
                if record_trace:
                    spans.append(record_span(
                        chunk_index=server.index,
                        pu_class=server.chunk.pu_class,
                        task_id=previous_task,
                        start_s=span_starts.pop(server.index, now),
                        end_s=now,
                        tenant=self.tenant,
                    ))
                if position + 1 < len(self._servers):
                    self._servers[position + 1].ready.append(done_task)
                else:
                    completed.append(now)

        busy_s = {s.index: s.busy_s for s in self._servers}
        return completed, spans, busy_s, now, events

    # -- shared post-run -----------------------------------------------
    def _finalize(
        self,
        n_tasks: int,
        completed: List[float],
        spans: List[Span],
        busy_s: Dict[int, float],
        now: float,
        events: int,
        arrivals: List[float],
    ) -> SimulatedRunResult:
        # Observability is strictly post-hoc: one guard check per run
        # (never per event), so the DES loop above stays allocation-free
        # when tracing is off - the overhead benchmark pins this down.
        trc = tracer()
        if trc.enabled:
            with trc.span("simulator.run", "runtime",
                          n_tasks=n_tasks, tenant=self.tenant,
                          total_s=now) as run_id:
                pass
            trc.emit_virtual_spans(spans, now, parent_id=run_id)
            reg = metrics()
            reg.counter("sim.runs")
            reg.observe("sim.total_s", now)

        steady = self._steady_interval(completed)
        return SimulatedRunResult(
            n_tasks=n_tasks,
            total_s=now,
            completion_times_s=completed,
            steady_interval_s=steady,
            chunk_busy_s=busy_s,
            chunk_pu={s.index: s.chunk.pu_class for s in self._servers},
            spans=spans,
            arrival_times_s=arrivals,
            n_events=events,
        )

    def _steady_interval(self, completions: Sequence[float]) -> float:
        """Per-task interval after pipeline fill (warmup excluded, like
        the paper's measurements excluding GPU initialization)."""
        n = len(completions)
        if n == 1:
            return completions[0]
        warm = min(self.depth, n - 1)
        span = completions[-1] - completions[warm - 1]
        return span / (n - warm)

    def measured_latency(self, result: SimulatedRunResult) -> float:
        """One noisy timer observation of a run's steady interval."""
        rng = self.platform.measurement_rng(
            "pipeline", self._schedule_key, result.n_tasks
        )
        return self.platform.measure(result.steady_interval_s, rng)

    def measure_per_task_latency(self, n_tasks: int = 30) -> float:
        """One noisy timer observation of the steady per-task latency
        (the number the paper's 30-task runs report)."""
        return self.measured_latency(self.run(n_tasks))
