"""Tests for the discrete-event pipeline simulator (performance back-end)."""

import pytest

from repro.apps import build_octree_application
from repro.core import Application, Chunk, Stage
from repro.errors import PipelineError
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import WorkProfile, get_platform
from repro.soc.interference import ExternalLoad
from repro.soc.pu import BIG, GPU, LITTLE, MEDIUM


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


def run(app, chunks, platform, n=12, depth=None):
    return SimulatedPipelineExecutor(app, chunks, platform,
                                     depth=depth).run(n)


class TestBasics:
    def test_completions_monotone(self, app, pixel):
        result = run(app, [Chunk(0, 7, BIG)], pixel)
        times = result.completion_times_s
        assert all(a < b for a, b in zip(times, times[1:]))
        assert result.total_s == pytest.approx(times[-1])

    def test_single_chunk_latency_matches_stage_sum(self, app, pixel):
        """One chunk, no co-runners: steady interval = sum of isolated
        stage times (up to execution noise)."""
        result = run(app, [Chunk(0, 7, BIG)], pixel, n=20)
        expected = sum(
            pixel.isolated_time(stage.work, BIG) for stage in app.stages
        )
        assert result.steady_interval_s == pytest.approx(expected, rel=0.05)

    def test_pipelining_beats_serial_on_balanced_split(self, app, pixel):
        serial = run(app, [Chunk(0, 7, BIG)], pixel, n=20)
        split = run(
            app,
            [Chunk(0, 2, BIG), Chunk(2, 4, GPU), Chunk(4, 6, MEDIUM),
             Chunk(6, 7, LITTLE)],
            pixel, n=20,
        )
        assert split.steady_interval_s < serial.steady_interval_s

    def test_throughput_inverse_of_interval(self, app, pixel):
        result = run(app, [Chunk(0, 7, BIG)], pixel)
        assert result.throughput_tasks_per_s == pytest.approx(
            1.0 / result.steady_interval_s
        )

    def test_bottleneck_chunk_fully_utilized(self, app, pixel):
        result = run(
            app, [Chunk(0, 6, BIG), Chunk(6, 7, LITTLE)], pixel, n=20
        )
        busiest = max(
            result.chunk_busy_s, key=lambda i: result.chunk_busy_s[i]
        )
        assert result.utilization(busiest) > 0.9

    def test_deterministic(self, app, pixel):
        a = run(app, [Chunk(0, 4, BIG), Chunk(4, 7, GPU)], pixel)
        b = run(app, [Chunk(0, 4, BIG), Chunk(4, 7, GPU)], pixel)
        assert a.completion_times_s == b.completion_times_s

    def test_single_task(self, app, pixel):
        result = run(app, [Chunk(0, 7, BIG)], pixel, n=1)
        assert result.n_tasks == 1
        assert result.steady_interval_s > 0


class TestInterferenceEmergence:
    def test_corun_changes_latency_vs_isolated_sum(self, app, pixel):
        """A two-chunk pipeline's bottleneck differs from the isolated
        bottleneck prediction because co-running changes rates."""
        chunks = [Chunk(0, 4, BIG), Chunk(4, 7, MEDIUM)]
        result = run(app, chunks, pixel, n=20)
        isolated_bottleneck = max(
            sum(pixel.isolated_time(app.stages[i].work, c.pu_class)
                for i in c.stage_indices)
            for c in chunks
        )
        # CPU clusters slow each other down on the Pixel under co-run.
        assert result.steady_interval_s > isolated_bottleneck * 1.02

    def test_gpu_chunk_speeds_up_under_cpu_coload(self, pixel):
        """Pixel's Mali boosts when CPUs are busy: in a pipeline that
        keeps the CPU clusters saturated, the GPU chunk's busy time per
        task drops below its isolated execution time (section 5.3)."""
        gpu_stage = Stage.model_only(
            "gpu-work",
            WorkProfile(flops=200e6, bytes_moved=1e5, parallelism=1e6,
                        gpu_efficiency=0.5),
        )
        gpu_isolated = pixel.isolated_time(gpu_stage.work, GPU)

        def cpu_stage(name, target_pu):
            # Sized so each CPU chunk roughly matches the GPU chunk,
            # keeping every PU busy (co-load ~ 1 for the GPU).
            base = pixel.isolated_time(
                WorkProfile(flops=1e6, bytes_moved=1e3, parallelism=1e3,
                            cpu_efficiency=0.5),
                target_pu,
            )
            scale = gpu_isolated / base
            return Stage.model_only(
                name,
                WorkProfile(flops=1e6 * scale, bytes_moved=1e3,
                            parallelism=1e3, cpu_efficiency=0.5),
            )

        app2 = Application(
            "synthetic",
            [gpu_stage, cpu_stage("big-work", BIG),
             cpu_stage("med-work", MEDIUM),
             cpu_stage("little-work", LITTLE)],
        )
        split = run(
            app2,
            [Chunk(0, 1, GPU), Chunk(1, 2, BIG), Chunk(2, 3, MEDIUM),
             Chunk(3, 4, LITTLE)],
            pixel, n=30,
        )
        gpu_busy_per_task = split.chunk_busy_s[0] / split.n_tasks
        assert gpu_busy_per_task < gpu_isolated * 0.95


class TestValidation:
    def test_unknown_pu_rejected(self, app):
        jetson = get_platform("jetson_orin_nano")
        with pytest.raises(PipelineError):
            SimulatedPipelineExecutor(
                app, [Chunk(0, 7, MEDIUM)], jetson
            )

    def test_zero_tasks_rejected(self, app, pixel):
        executor = SimulatedPipelineExecutor(app, [Chunk(0, 7, BIG)], pixel)
        with pytest.raises(PipelineError):
            executor.run(0)

    def test_bad_depth_rejected(self, app, pixel):
        with pytest.raises(PipelineError):
            SimulatedPipelineExecutor(app, [Chunk(0, 7, BIG)], pixel,
                                      depth=0)

    def test_bad_cover_rejected(self, app, pixel):
        with pytest.raises(PipelineError):
            SimulatedPipelineExecutor(
                app, [Chunk(0, 3, BIG), Chunk(4, 7, GPU)], pixel
            )


class TestMultiBuffering:
    def test_depth_one_serializes(self, app, pixel):
        """With a single TaskObject no overlap is possible: the pipeline
        degenerates to serial execution."""
        chunks = [Chunk(0, 4, BIG), Chunk(4, 7, GPU)]
        deep = run(app, chunks, pixel, n=20, depth=4)
        shallow = run(app, chunks, pixel, n=20, depth=1)
        assert shallow.steady_interval_s > deep.steady_interval_s

    def test_deeper_buffering_never_hurts_much(self, app, pixel):
        chunks = [Chunk(0, 4, BIG), Chunk(4, 7, GPU)]
        d3 = run(app, chunks, pixel, n=20, depth=3)
        d6 = run(app, chunks, pixel, n=20, depth=6)
        assert d6.steady_interval_s <= d3.steady_interval_s * 1.05


class TestEventCountStability:
    """Phase completion must be magnitude-blind.

    ``advance()`` leaves float residue (``remaining -= dt * rate``
    after ``dt = remaining / rate``) proportional to the phase's
    magnitude; with the old absolute ``1e-15`` epsilon, large ``work_s``
    values shed spurious near-zero-``dt`` micro-events.  The fix snaps
    the ``dt``-defining server's remaining to exactly 0.0 and compares
    against a *relative* epsilon, so the event count is now a function
    of the pipeline's structure alone.
    """

    def make_app(self, scale):
        # Fractional co-run rates (the residue trigger: rate 1.0 divides
        # exactly) come from external load on the chunks' own classes.
        work = WorkProfile(flops=1e6 * scale, bytes_moved=1e3 * scale,
                           parallelism=1e3, cpu_efficiency=0.5)
        return Application(
            "residue",
            [Stage.model_only("a", work), Stage.model_only("b", work)],
        )

    def run(self, pixel, scale, n=12):
        return SimulatedPipelineExecutor(
            self.make_app(scale),
            [Chunk(0, 1, BIG), Chunk(1, 2, MEDIUM)],
            pixel,
            external_load=ExternalLoad(busy={BIG: 0.5, MEDIUM: 0.3},
                                       demand_gbps=1.0),
        ).run(n)

    @pytest.mark.parametrize("engine_env", ["vector", "reference"])
    def test_event_count_independent_of_work_magnitude(
        self, pixel, engine_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SIM_ENGINE", engine_env)
        small = self.run(pixel, scale=1.0)
        large = self.run(pixel, scale=1e9)
        assert large.n_events == small.n_events

    def test_event_count_linear_in_tasks(self, pixel):
        # Structure-bound: a 2-server, 2-phase-per-stage pipeline needs
        # a handful of events per task, never a residue-driven blowup.
        result = self.run(pixel, scale=1e9, n=40)
        assert result.n_events <= 8 * 40 + 10


class TestMeasurement:
    def test_measured_latency_noisy_but_close(self, app, pixel):
        executor = SimulatedPipelineExecutor(app, [Chunk(0, 7, BIG)], pixel)
        truth = executor.run(20).steady_interval_s
        measured = executor.measure_per_task_latency(20)
        assert measured == pytest.approx(truth, rel=0.15)
        assert measured != truth  # timer noise applied
