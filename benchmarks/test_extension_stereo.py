"""Extension-workload evaluation: stereo depth across the four devices.

Not a paper artifact - the stereo-depth pipeline is this repository's
added fourth workload - but it is evaluated through exactly the same
harness as the paper's three, which is the point: the framework, not the
workload set, is the contribution.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_stereo_application
from repro.baselines import measure_baselines
from repro.core.framework import BetterTogether
from repro.eval.metrics import format_table, geometric_mean
from repro.soc import PLATFORM_NAMES, get_platform


def test_stereo_across_all_platforms(benchmark):
    application = build_stereo_application()

    def evaluate():
        cells = {}
        for name in PLATFORM_NAMES:
            platform = get_platform(name)
            plan = BetterTogether(platform, repetitions=10, k=12,
                                  eval_tasks=15).run(application)
            baseline = measure_baselines(application, platform,
                                         n_tasks=15)
            cells[name] = (
                plan.measured_latency_s,
                baseline.best_latency_s,
                baseline.best_name,
                plan.schedule.describe(application),
            )
        return cells

    cells = run_once(benchmark, evaluate)
    rows = [["device", "BT (ms)", "best baseline (ms)", "speedup"]]
    speedups = []
    for name, (bt, base, base_name, schedule) in cells.items():
        speedups.append(base / bt)
        rows.append([
            name, f"{bt * 1e3:.3f}", f"{base * 1e3:.3f} ({base_name})",
            f"{base / bt:.2f}x",
        ])
    print("\n" + format_table(rows))
    print(f"geomean speedup: {geometric_mean(speedups):.2f}x")

    # The framework generalizes: the extension workload gains too, on
    # every device.
    assert all(s > 1.0 for s in speedups)
    # And more on the heterogeneous phones than on the 2-class Jetsons.
    phones = geometric_mean([
        cells["pixel7a"][1] / cells["pixel7a"][0],
        cells["oneplus11"][1] / cells["oneplus11"][0],
    ])
    jetsons = geometric_mean([
        cells["jetson_orin_nano"][1] / cells["jetson_orin_nano"][0],
        cells["jetson_orin_nano_lp"][1]
        / cells["jetson_orin_nano_lp"][0],
    ])
    assert phones > jetsons
