"""Exception hierarchy for the BetterTogether reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary.  Subpackages raise the most specific
subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SolverError(ReproError):
    """Base class for constraint-solver errors."""


class InfeasibleError(SolverError):
    """Raised when a constraint model has no satisfying assignment."""


class SolverTimeoutError(SolverError):
    """Raised when the solver exhausts its node or time budget."""


class ModellingError(SolverError):
    """Raised for ill-formed constraint models (e.g. unknown variables)."""


class PlatformError(ReproError):
    """Raised for invalid platform specifications or unknown platforms."""


class KernelError(ReproError):
    """Raised when a compute kernel is misused (bad shapes, backends...)."""


class SchedulingError(ReproError):
    """Raised when a schedule is malformed or cannot be constructed."""


class ProfilingError(ReproError):
    """Raised when profiling inputs are inconsistent."""


class PipelineError(ReproError):
    """Raised by the runtime when pipeline execution fails."""


class QueueClosedError(PipelineError):
    """Raised when pushing to / popping from a closed SPSC queue."""
