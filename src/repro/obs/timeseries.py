"""Bounded per-tick time-series store behind the metrics registry.

Counters and gauges answer "how much, in total" and "what, right now";
fleet debugging also needs "when did it change" - which tick a shard
went DEGRADED, how the backlog grew through a burst, when an offender's
blame spiked.  This store keeps one bounded ring buffer per named
series of ``(tick, value)`` points, so long soaks retain the recent
window of every series without unbounded growth (the same discipline as
the flight recorder).

Ticks are the deterministic control-plane clock (fleet/traffic tick
indices), never wall time, so snapshots are byte-identical across
seeded runs.  Like the other instruments the store only exists when the
enclosing :class:`~repro.obs.metrics.MetricsRegistry` is enabled; it
rides into ``snapshot()["series"]`` and from there into every exported
Perfetto trace (``otherData.metrics``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Tuple

DEFAULT_CAPACITY = 512


class TimeSeriesStore:
    """Named ring buffers of ``(tick, value)`` points."""

    def __init__(self, capacity_per_series: int = DEFAULT_CAPACITY) -> None:
        if capacity_per_series <= 0:
            raise ValueError("series capacity must be positive")
        self.capacity_per_series = capacity_per_series
        self._lock = threading.Lock()
        self._series: Dict[str, Deque[Tuple[int, float]]] = {}

    def point(self, name: str, tick: int, value: float) -> None:
        """Append one point; the oldest falls off at capacity."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = deque(maxlen=self.capacity_per_series)
                self._series[name] = series
            series.append((int(tick), float(value)))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, name: str) -> List[Tuple[int, float]]:
        """All retained points of ``name`` in tick order."""
        with self._lock:
            return list(self._series.get(name, ()))

    def window(
        self, name: str, start_tick: int, end_tick: int
    ) -> List[Tuple[int, float]]:
        """Points of ``name`` with ``start_tick <= tick < end_tick``."""
        return [
            (tick, value)
            for tick, value in self.series(name)
            if start_tick <= tick < end_tick
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def snapshot(self) -> Dict[str, List[List[float]]]:
        """Deterministic dump: sorted names, points as ``[tick, value]``."""
        with self._lock:
            items = {k: list(v) for k, v in self._series.items()}
        return {
            name: [[tick, value] for tick, value in items[name]]
            for name in sorted(items)
        }
