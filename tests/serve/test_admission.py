"""Admission controller: admit/queue/reject and the impact ceiling."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    ADMIT,
    QUEUE,
    REJECT,
    RUNNING,
    AdmissionController,
    PlacementMap,
    TenantRecord,
    TenantSpec,
)

from tests.serve.conftest import single_class_schedule


def controller(platform, plan_cache, **kwargs):
    return AdmissionController(platform, plan_cache, **kwargs)


def spec(app, name="job", **kwargs):
    return TenantSpec(name=name, application=app, **kwargs)


def running_tenant(pmap, plan, app, name, pu_class):
    """Install one running tenant holding a single-class partition."""
    schedule = single_class_schedule(plan, pu_class)
    partition = pmap.assign(name, app, schedule)
    return TenantRecord(
        spec=TenantSpec(name=name, application=app),
        status=RUNNING,
        plan=plan,
        schedule=schedule,
        partition=partition,
    )


class TestValidation:
    def test_negative_queue_capacity(self, platform, plan_cache):
        with pytest.raises(ServeError, match="queue_capacity"):
            controller(platform, plan_cache, queue_capacity=-1)

    def test_sub_unity_impact_ceiling(self, platform, plan_cache):
        with pytest.raises(ServeError, match="max_impact_ratio"):
            controller(platform, plan_cache, max_impact_ratio=0.9)

    def test_zero_partition_cap(self, platform, plan_cache):
        with pytest.raises(ServeError, match="max_partition_classes"):
            controller(platform, plan_cache, max_partition_classes=0)


class TestEmptySoC:
    def test_admits_onto_free_pus(self, platform, plan_cache, app):
        pmap = PlacementMap(platform.schedulable_classes())
        decision = controller(platform, plan_cache).evaluate(
            spec(app), pmap, running={}, queued=0,
        )
        assert decision.action == ADMIT
        assert decision.candidate is not None
        assert decision.predicted_latency_s > 0.0

    def test_unschedulable_required_class_rejected(
        self, platform, plan_cache, app
    ):
        pmap = PlacementMap(platform.schedulable_classes())
        decision = controller(platform, plan_cache).evaluate(
            spec(app, required_classes={"npu9000"}),
            pmap, running={}, queued=0,
        )
        assert decision.action == REJECT
        assert "not schedulable" in decision.reason

    def test_required_wider_than_cap_rejected(
        self, platform, plan_cache, app
    ):
        pmap = PlacementMap(platform.schedulable_classes())
        decision = controller(
            platform, plan_cache, max_partition_classes=1,
        ).evaluate(
            spec(app, required_classes={"big", "gpu"}),
            pmap, running={}, queued=0,
        )
        assert decision.action == REJECT
        assert "partition cap" in decision.reason

    def test_required_class_honoured(self, platform, plan_cache, app):
        pmap = PlacementMap(platform.schedulable_classes())
        decision = controller(platform, plan_cache).evaluate(
            spec(app, required_classes={"gpu"}),
            pmap, running={}, queued=0,
        )
        assert decision.action == ADMIT
        assert "gpu" in set(
            decision.candidate.schedule.pu_classes_used
        )

    def test_preference_biases_the_choice(
        self, platform, plan_cache, app
    ):
        pmap = PlacementMap(platform.schedulable_classes())
        decision = controller(
            platform, plan_cache, max_partition_classes=1,
        ).evaluate(
            spec(app, preferred_classes={"little"}),
            pmap, running={}, queued=0,
        )
        assert decision.action == ADMIT
        assert set(decision.candidate.schedule.pu_classes_used) == {
            "little"
        }


class TestContention:
    def test_held_required_class_queues(
        self, platform, plan_cache, plan, app
    ):
        pmap = PlacementMap(platform.schedulable_classes())
        holder = running_tenant(pmap, plan, app, "holder", "gpu")
        decision = controller(
            platform, plan_cache, queue_capacity=2,
        ).evaluate(
            spec(app, name="late", required_classes={"gpu"}),
            pmap, running={"holder": holder}, queued=0,
        )
        assert decision.action == QUEUE
        assert "no-oversubscription" in decision.reason

    def test_full_queue_turns_into_backpressure_reject(
        self, platform, plan_cache, plan, app
    ):
        pmap = PlacementMap(platform.schedulable_classes())
        holder = running_tenant(pmap, plan, app, "holder", "gpu")
        decision = controller(
            platform, plan_cache, queue_capacity=0,
        ).evaluate(
            spec(app, name="late", required_classes={"gpu"}),
            pmap, running={"holder": holder}, queued=0,
        )
        assert decision.action == REJECT
        assert "backpressure queue is full" in decision.reason

    def test_impact_ceiling_defers_harmful_admissions(
        self, platform, plan_cache, plan, app
    ):
        pmap = PlacementMap(platform.schedulable_classes())
        holder = running_tenant(pmap, plan, app, "holder", "big")
        # A ceiling of exactly 1.0 forbids any predicted slowdown, so
        # any admission touching the co-tenant's "other" PUs defers.
        decision = controller(
            platform, plan_cache, queue_capacity=4,
            max_impact_ratio=1.0,
        ).evaluate(
            spec(app, name="late"),
            pmap, running={"holder": holder}, queued=0,
        )
        assert decision.action == QUEUE
        assert "impact ceiling" in decision.reason

    def test_admission_reports_predicted_impact(
        self, platform, plan_cache, plan, app
    ):
        pmap = PlacementMap(platform.schedulable_classes())
        holder = running_tenant(pmap, plan, app, "holder", "big")
        decision = controller(platform, plan_cache).evaluate(
            spec(app, name="late"),
            pmap, running={"holder": holder}, queued=0,
        )
        assert decision.action == ADMIT
        assert decision.predicted_impact["holder"] >= 1.0

    def test_cumulative_impact_accumulates_across_admissions(
        self, platform, plan_cache, plan, app
    ):
        """Cumulative pricing counts incumbents' busy classes, so the
        same newcomer weighs more on a fuller SoC; incremental pricing
        is indifferent to how packed the shard already is."""
        sparse = PlacementMap(platform.schedulable_classes())
        holder_a = running_tenant(sparse, plan, app, "holder", "big")
        dense = PlacementMap(platform.schedulable_classes())
        holder_b = running_tenant(dense, plan, app, "holder", "big")
        other = running_tenant(dense, plan, app, "other", "medium")

        def worst(ctrl, pmap, running):
            decision = ctrl.evaluate(
                spec(app, name="late", required_classes={"little"}),
                pmap, running=running, queued=0,
            )
            assert decision.action == ADMIT
            return decision.predicted_impact["holder"]

        cumulative = controller(
            platform, plan_cache, cumulative_impact=True,
            max_impact_ratio=10.0,
        )
        incremental = controller(
            platform, plan_cache, max_impact_ratio=10.0,
        )
        assert worst(cumulative, dense, {
            "holder": holder_b, "other": other,
        }) > worst(cumulative, sparse, {"holder": holder_a})
        # The incremental model sees the same marginal contribution
        # either way.
        sparse2 = PlacementMap(platform.schedulable_classes())
        holder_c = running_tenant(sparse2, plan, app, "holder", "big")
        dense2 = PlacementMap(platform.schedulable_classes())
        holder_d = running_tenant(dense2, plan, app, "holder", "big")
        other_d = running_tenant(dense2, plan, app, "other", "medium")
        assert worst(incremental, dense2, {
            "holder": holder_d, "other": other_d,
        }) == pytest.approx(
            worst(incremental, sparse2, {"holder": holder_c})
        )
