"""The open-loop driver: offered load meets the fleet, tick by tick.

Closed-loop harnesses (the scripted soaks) only submit what the system
can absorb, so overload behaviour - admission queues filling, age-out,
backlog rejections, goodput collapse - is never exercised.  This
driver is open-loop: each control tick it submits *every* arrival the
workload source scheduled for that tick, whether or not the fleet kept
up, then advances the fleet one step and harvests what was actually
served.

The workload source is anything with an ``events()`` stream of
:class:`~repro.traffic.generator.ArrivalEvent` - a live
:class:`~repro.traffic.generator.TrafficGenerator` or a frozen
:class:`~repro.traffic.trace.TrafficTrace` - so recorded and replayed
runs share one code path (the replay-equals-record guarantee).

Per served window the driver computes the *slowdown*: measured window
latency over the tenant's contention-free reference (the deployed
schedule's isolated prediction, attached to fleet placement events).
Slowdown isolates what admission control actually governs - contention
- from placement narrowness, so SLO attainment compares fairly across
admission policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps.synthetic import (
    build_bandwidth_bound_application,
    build_synthetic_application,
)
from repro.errors import TrafficError
from repro.fleet.router import FleetRouter
from repro.fleet.metrics import FleetReport
from repro.obs.alerts import BurnAlert, BurnRateEvaluator, BurnRateRule
from repro.obs.metrics import metrics
from repro.obs.recorder import recorder
from repro.obs.tracer import tracer
from repro.serve.scenario import _memory_bound_application
from repro.serve.tenant import PENDING, TenantSpec
from repro.traffic.generator import (
    BANDWIDTH_BOUND,
    MEMORY_BOUND,
    SYNTHETIC,
    ArrivalEvent,
)


def materialize(event: ArrivalEvent, stage_count: int) -> TenantSpec:
    """Build the concrete tenant spec an arrival event describes."""
    if event.app_kind == SYNTHETIC:
        application = build_synthetic_application(
            seed=event.app_seed, stage_count=stage_count,
        )
    elif event.app_kind == MEMORY_BOUND:
        application = _memory_bound_application(
            event.app_seed, stage_count,
        )
    elif event.app_kind == BANDWIDTH_BOUND:
        application = build_bandwidth_bound_application(
            seed=event.app_seed, stage_count=stage_count,
        )
    else:
        # The flight tail rides on the error so a failed replay of a
        # hand-edited trace shows the events leading up to the bad kind
        # (same diagnostic convention as StallError/FaultReport).
        raise TrafficError(
            f"unknown application kind {event.app_kind!r}",
            flight_tail=recorder().tail(32),
        )
    return TenantSpec(
        name=event.name,
        application=application,
        priority=event.priority,
        windows=event.windows,
        window_tasks=event.window_tasks,
    )


@dataclass(frozen=True)
class WindowSample:
    """One served window, tagged for SLO evaluation."""

    tick: int
    tenant: str
    tier: str
    shard: str
    latency_s: float
    slowdown: float


@dataclass
class TrafficRunResult:
    """Everything one open-loop run produced, pre-aggregation."""

    ticks: int
    fleet_report: Optional[FleetReport] = None
    arrivals: Dict[str, ArrivalEvent] = field(default_factory=dict)
    samples: List[WindowSample] = field(default_factory=list)
    #: Per-tick trajectory: arrivals, served windows, SLO-attaining
    #: window-tasks (goodput), and fleet backlog depth.
    per_tick: List[Dict[str, object]] = field(default_factory=list)
    #: Per-tier burn-rate alerts (``OpenLoopDriver(burn=...)``); None
    #: when burn alerting was off for the run (an empty list means
    #: "armed, nothing burned").
    burn_alerts: Optional[List[BurnAlert]] = None


class OpenLoopDriver:
    """Feed a workload stream into a fleet's step mode."""

    def __init__(
        self,
        router: FleetRouter,
        events: Sequence[ArrivalEvent],
        ticks: int,
        stage_count: int = 3,
        slo_by_tier: Optional[Dict[str, float]] = None,
        burn: Optional[BurnRateRule] = None,
    ):
        if ticks < 1:
            raise TrafficError(
                "driver needs at least one tick",
                flight_tail=recorder().tail(32),
            )
        self.router = router
        self.ticks = ticks
        self.stage_count = stage_count
        #: tier name -> largest attaining slowdown (for the per-tick
        #: goodput trajectory; the full report recomputes from samples).
        self.slo_by_tier = dict(slo_by_tier or {})
        #: Per-tier burn-rate alerting over window attainment; off by
        #: default so the default soak's report bytes are unchanged.
        self._burn = (BurnRateEvaluator(burn)
                      if burn is not None else None)
        self._by_tick: Dict[int, List[ArrivalEvent]] = {}
        for event in events:
            if event.tick >= ticks:
                continue
            self._by_tick.setdefault(event.tick, []).append(event)

    def run(
        self,
        on_tick: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> TrafficRunResult:
        """Drive the fleet over the horizon and harvest the outcome.

        ``on_tick`` (when given) observes each completed tick's
        trajectory entry as it lands - the hook ``repro top --watch``
        renders from.  It runs on the deterministic tick clock and must
        not mutate the entry.
        """
        router = self.router
        router.open_stepped()
        result = TrafficRunResult(ticks=self.ticks)
        if self._burn is not None:
            result.burn_alerts = []
        window_cursor = 0
        reg = metrics()
        trc = tracer()
        try:
            for tick in range(self.ticks):
                arrivals = self._by_tick.get(tick, ())
                for event in arrivals:
                    router.submit(materialize(event, self.stage_count))
                    result.arrivals[event.name] = event
                    if reg.enabled:
                        reg.counter("traffic.arrivals")
                        reg.counter("traffic.offered_windows",
                                    event.windows)
                    if trc.enabled:
                        trc.instant(
                            "traffic.arrival", "traffic",
                            track=f"tier:{event.tier}", tick=tick,
                            tenant=event.name, windows=event.windows,
                        )
                router.step(tick)

                served = 0
                goodput_tasks = 0
                #: tier -> [attained, missed] windows this tick (the
                #: burn evaluator's per-tick outcome feed).
                tier_outcomes: Dict[str, List[int]] = {
                    tier: [0, 0] for tier in sorted(self.slo_by_tier)
                }
                while window_cursor < len(router.window_log):
                    entry = router.window_log[window_cursor]
                    window_cursor += 1
                    name = str(entry["tenant"])
                    arrival = result.arrivals[name]
                    reference = float(entry["isolated_s"])  # type: ignore[arg-type]
                    latency = float(entry["latency_s"])  # type: ignore[arg-type]
                    slowdown = (latency / reference
                                if reference > 0.0 else 0.0)
                    sample = WindowSample(
                        tick=int(entry["tick"]),  # type: ignore[arg-type]
                        tenant=name,
                        tier=arrival.tier,
                        shard=str(entry["shard"]),
                        latency_s=latency,
                        slowdown=slowdown,
                    )
                    result.samples.append(sample)
                    served += 1
                    slo = self.slo_by_tier.get(arrival.tier)
                    attained = (slo is not None and slowdown > 0.0
                                and slowdown <= slo)
                    if attained:
                        goodput_tasks += arrival.window_tasks
                    if slo is not None:
                        outcome = tier_outcomes.setdefault(
                            arrival.tier, [0, 0])
                        outcome[0 if attained else 1] += 1
                    if reg.enabled:
                        reg.counter("traffic.served_windows")
                        if attained:
                            reg.counter("traffic.goodput_tasks",
                                        arrival.window_tasks)
                        reg.observe(
                            f"traffic.slowdown.{arrival.tier}",
                            slowdown,
                        )
                backlog = sum(
                    1 for tenant in router.tenants.values()
                    if tenant.status == PENDING
                )
                if reg.enabled:
                    reg.gauge("traffic.backlog_depth", float(backlog))
                    reg.series_point("traffic.backlog_depth", tick,
                                     float(backlog))
                    reg.series_point("traffic.arrivals", tick,
                                     float(len(arrivals)))
                    reg.series_point("traffic.served_windows", tick,
                                     float(served))
                    reg.series_point("traffic.goodput_tasks", tick,
                                     float(goodput_tasks))
                if self._burn is not None:
                    for tier in sorted(tier_outcomes):
                        good, bad = tier_outcomes[tier]
                        alert = self._burn.observe(
                            tier, tick, good, bad)
                        if alert is not None:
                            result.burn_alerts.append(alert)
                            if trc.enabled:
                                trc.instant(
                                    "traffic.burn_alert", "traffic",
                                    track=f"tier:{tier}", tick=tick,
                                    fast_burn=round(
                                        alert.fast_burn, 9),
                                    slow_burn=round(
                                        alert.slow_burn, 9),
                                )
                entry = {
                    "tick": tick,
                    "arrivals": len(arrivals),
                    "served_windows": served,
                    "goodput_tasks": goodput_tasks,
                    "backlog": backlog,
                }
                result.per_tick.append(entry)
                if on_tick is not None:
                    on_tick(entry)
        finally:
            # The detail only lands on tenants still non-terminal at
            # close; a drained fleet ignores it.
            result.fleet_report = router.close_stepped(
                detail="open-loop horizon reached with work in flight"
            )
        return result
