"""Tests for the AlexNet applications (dense and sparse)."""

import numpy as np
import pytest

from repro.apps import (
    build_alexnet_dense,
    build_alexnet_sparse,
    cifar_like_image,
    make_weights,
)
from repro.apps.alexnet import CONV_LAYERS, FC_IN
from repro.core import Chunk
from repro.runtime import ThreadedPipelineExecutor


@pytest.fixture(scope="module")
def dense_app():
    return build_alexnet_dense()


@pytest.fixture(scope="module")
def sparse_app():
    return build_alexnet_sparse(batch=2)


def run_single_task(app, chunks, n_tasks=1):
    captured = {}

    def capture(task, index):
        captured.setdefault(index, np.asarray(task["logits"]).copy())

    ThreadedPipelineExecutor(app, chunks).run(
        n_tasks, on_complete=capture, validate=True
    )
    return captured


class TestArchitecture:
    def test_nine_stages(self, dense_app, sparse_app):
        assert dense_app.num_stages == 9
        assert sparse_app.num_stages == 9

    def test_stage_order(self, dense_app):
        assert dense_app.stage_names == (
            "conv1", "pool1", "conv2", "pool2", "conv3", "pool3",
            "conv4", "pool4", "linear",
        )

    def test_fc_input_matches_last_pool(self):
        spec, hw = CONV_LAYERS[-1]
        assert FC_IN == spec.out_channels * (hw // 2) ** 2

    def test_weights_deterministic(self):
        a, b = make_weights(1), make_weights(1)
        for wa, wb in zip(a.conv_weights, b.conv_weights):
            np.testing.assert_array_equal(wa, wb)

    def test_weights_differ_by_seed(self):
        a, b = make_weights(1), make_weights(2)
        assert not np.array_equal(a.conv_weights[0], b.conv_weights[0])


class TestDenseFunctional:
    def test_logits_deterministic_across_runs(self, dense_app):
        a = run_single_task(dense_app, [Chunk(0, 9, "gpu")])
        b = run_single_task(dense_app, [Chunk(0, 9, "big")])
        np.testing.assert_allclose(a[0], b[0], rtol=1e-4, atol=1e-5)

    def test_schedule_invariance(self, dense_app):
        mixed = run_single_task(
            dense_app,
            [Chunk(0, 3, "big"), Chunk(3, 6, "gpu"), Chunk(6, 9, "medium")],
        )
        reference = run_single_task(dense_app, [Chunk(0, 9, "big")])
        np.testing.assert_allclose(mixed[0], reference[0], rtol=1e-4,
                                   atol=1e-5)

    def test_different_inputs_different_logits(self, dense_app):
        captured = run_single_task(dense_app, [Chunk(0, 9, "big")],
                                   n_tasks=2)
        assert not np.allclose(captured[0], captured[1])

    def test_logit_shape(self, dense_app):
        captured = run_single_task(dense_app, [Chunk(0, 9, "big")])
        assert captured[0].shape == (10,)


class TestSparseFunctional:
    def test_batched_logits_shape(self, sparse_app):
        captured = run_single_task(sparse_app, [Chunk(0, 9, "big")])
        assert captured[0].shape == (2, 10)

    def test_schedule_invariance(self, sparse_app):
        mixed = run_single_task(
            sparse_app, [Chunk(0, 5, "gpu"), Chunk(5, 9, "big")]
        )
        reference = run_single_task(sparse_app, [Chunk(0, 9, "big")])
        np.testing.assert_allclose(mixed[0], reference[0], rtol=1e-4,
                                   atol=1e-5)

    def test_sparser_model_has_fewer_nonzeros(self):
        from repro.kernels import prune_to_csr

        weights = make_weights().conv_weights[1]
        lighter = prune_to_csr(weights, sparsity=0.9)
        heavier = prune_to_csr(weights, sparsity=0.5)
        assert lighter.nnz < heavier.nnz

    def test_sparse_work_scales_with_batch(self):
        small = build_alexnet_sparse(batch=2)
        large = build_alexnet_sparse(batch=8)
        assert (
            large.stage("sparse-conv2").work.flops
            == pytest.approx(4 * small.stage("sparse-conv2").work.flops)
        )

    def test_sparse_flops_far_below_dense(self, dense_app):
        sparse = build_alexnet_sparse(batch=1)
        dense_flops = sum(
            s.work.flops for s in dense_app.stages
            if s.name.startswith("conv")
        )
        sparse_flops = sum(
            s.work.flops for s in sparse.stages
            if s.name.startswith("sparse-conv")
        )
        assert sparse_flops < 0.05 * dense_flops


class TestWorkProfiles:
    def test_conv_dominates_pool(self, dense_app):
        assert (
            dense_app.stage("conv2").work.flops
            > 50 * dense_app.stage("pool2").work.flops
        )

    def test_sparse_conv_is_irregular(self, sparse_app, dense_app):
        assert (
            sparse_app.stage("sparse-conv2").work.irregularity
            > dense_app.stage("conv2").work.irregularity
        )

    def test_inputs_are_deterministic(self):
        np.testing.assert_array_equal(
            cifar_like_image(5), cifar_like_image(5)
        )
        assert not np.array_equal(cifar_like_image(5), cifar_like_image(6))

    def test_input_range(self):
        image = cifar_like_image(0)
        assert image.shape == (3, 32, 32)
        assert image.min() >= 0.0 and image.max() <= 1.0
