"""Pytest root conftest: make ``src/`` importable without installation.

The offline environment lacks the ``wheel`` package needed for
``pip install -e .``; this mirrors an editable install.
"""

import os
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)


@pytest.fixture(autouse=True)
def _repro_check_gate():
    """Under ``REPRO_CHECK=1`` every test doubles as a concurrency
    audit: any violation the instrumented runtime records into the
    *global* log during the test fails it.  Deliberate-violation tests
    capture into a local log via ``runtime_checks.collecting()`` and so
    stay exempt.  Without REPRO_CHECK this fixture is a no-op.
    """
    from repro.analysis import runtime_checks

    if not runtime_checks.checks_enabled():
        yield
        return
    log = runtime_checks.global_log()
    before = len(log)
    yield
    fresh = log.since(before)
    assert not fresh, (
        "concurrency checker recorded violations during this test: "
        + "; ".join(str(v.to_dict()) for v in fresh)
    )
