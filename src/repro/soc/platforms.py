"""The four evaluated platforms (paper Table 2), as virtual SoCs.

Microarchitectural parameters (cores, frequencies, SIMD widths, GPU sizes)
come from the paper's Table 2 plus public spec sheets.  The *behavioural*
parameters - DVFS responses under load and achievable bandwidths - are
calibrated so the simulator reproduces the paper's observed phenomena:

* Fig. 7 interference ratios: Pixel CPU clusters slow by 1.2-1.4x while
  its Mali GPU speeds up (~0.86x time ratio); the OnePlus little cores and
  Adreno GPU *boost* under load (0.63x / 0.64x); the Jetson's CUDA GPU
  slows (1.19x normal, 1.74x low-power) and its CPUs slow ~1.3-1.4x.
* Table 3 baseline shapes: GPUs dominate dense CNNs everywhere; CPUs win
  Octree on the mobile parts but lose it on the Jetson; AlexNet-sparse is
  near parity on the Pixel.
* Section 5.1 platform ordering of BetterTogether speedups:
  Pixel > OnePlus > Jetson-LP > Jetson, driven by how much usable
  heterogeneity each exposes (the OnePlus cannot pin its little cores; the
  Jetson has a single CPU class).

Calibration constants are intentionally local to this module; everything
downstream observes them only through measured times.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import PlatformError
from repro.soc.affinity import AffinityEntry, AffinityMap
from repro.soc.interference import DvfsCurve, InterferenceModel
from repro.soc.platform import Platform
from repro.soc.pu import BIG, GPU, LITTLE, MEDIUM, CpuCluster, Gpu
from repro.soc.timer import MeasurementNoise

_DEFAULT_SEED = 2025


def pixel_7a(seed: int = _DEFAULT_SEED) -> Platform:
    """Google Pixel 7a: Tensor G2, three CPU tiers + Mali-G710 (Vulkan).

    Fully pinnable - the platform where BetterTogether has the most
    heterogeneity to exploit (section 5.1).
    """
    clusters = {
        BIG: CpuCluster(
            pu_class=BIG, model="Cortex-X1", cores=2, freq_ghz=2.85,
            flops_per_cycle=16.0, irregularity_tolerance=0.85,
            dispatch_overhead_s=30e-6, stream_bw_gbps=14.0,
            core_ids=(6, 7), sustained_efficiency=0.45,
        ),
        MEDIUM: CpuCluster(
            pu_class=MEDIUM, model="Cortex-A78", cores=2, freq_ghz=2.35,
            flops_per_cycle=8.0, irregularity_tolerance=0.70,
            dispatch_overhead_s=30e-6, stream_bw_gbps=10.0,
            core_ids=(4, 5), sustained_efficiency=0.50,
        ),
        LITTLE: CpuCluster(
            pu_class=LITTLE, model="Cortex-A55", cores=4, freq_ghz=1.80,
            flops_per_cycle=4.0, irregularity_tolerance=0.35,
            dispatch_overhead_s=45e-6, stream_bw_gbps=6.0,
            core_ids=(0, 1, 2, 3), sustained_efficiency=0.50,
        ),
    }
    gpu = Gpu(
        model="Mali-G710 MP7", vendor="arm", api="vulkan",
        compute_units=7, lanes_per_unit=48, freq_ghz=0.85,
        flops_per_lane_cycle=2.0, divergence_penalty=6.0,
        irregularity_penalty=5.0, launch_overhead_s=130e-6,
        min_parallelism=8192.0, stream_bw_gbps=18.0,
        sustained_efficiency=0.70,
    )
    interference = InterferenceModel(
        dram_bw_gbps=30.0,
        dvfs={
            # CPU clusters throttle under full system load (Fig. 7:
            # 1.40x / 1.20x / 1.39x time ratios including contention).
            BIG: DvfsCurve(speed_at_full_load=0.66),
            MEDIUM: DvfsCurve(speed_at_full_load=0.80),
            LITTLE: DvfsCurve(speed_at_full_load=0.68),
            # Vendor firmware boosts the Mali clock under heavy CPU load
            # (section 5.3; up to ~2x was observed on some stages).
            GPU: DvfsCurve(speed_at_full_load=1.60),
        },
    )
    affinity = AffinityMap(
        {
            BIG: AffinityEntry(core_ids=(6, 7)),
            MEDIUM: AffinityEntry(core_ids=(4, 5)),
            LITTLE: AffinityEntry(core_ids=(0, 1, 2, 3)),
        }
    )
    return Platform(
        name="pixel7a", display_name="Google Pixel 7a",
        soc_model="Google Tensor G2", clusters=clusters, gpu=gpu,
        interference=interference, affinity=affinity,
        noise=MeasurementNoise(sigma=0.03, seed=seed),
        os_name="Android (Linux 6.1.99)",
    )


def oneplus_11(seed: int = _DEFAULT_SEED) -> Platform:
    """OnePlus 11: Snapdragon 8 Gen 2, X3 + A715/A710 + A510 + Adreno 740.

    Only 5 of 8 cores are pinnable (big + medium); the little cluster is
    profiled but not schedulable, reducing exploitable heterogeneity
    relative to the Pixel (section 5.1).
    """
    clusters = {
        BIG: CpuCluster(
            pu_class=BIG, model="Cortex-X3", cores=1, freq_ghz=3.2,
            flops_per_cycle=16.0, irregularity_tolerance=0.90,
            dispatch_overhead_s=25e-6, stream_bw_gbps=17.0,
            core_ids=(7,), sustained_efficiency=0.75,
        ),
        MEDIUM: CpuCluster(
            pu_class=MEDIUM, model="Cortex-A715/A710", cores=4,
            freq_ghz=2.8, flops_per_cycle=8.0,
            irregularity_tolerance=0.75, dispatch_overhead_s=28e-6,
            stream_bw_gbps=15.0, core_ids=(3, 4, 5, 6),
            sustained_efficiency=0.50,
        ),
        LITTLE: CpuCluster(
            pu_class=LITTLE, model="Cortex-A510", cores=3, freq_ghz=2.0,
            flops_per_cycle=4.0, irregularity_tolerance=0.30,
            dispatch_overhead_s=45e-6, stream_bw_gbps=5.0,
            core_ids=(0, 1, 2), sustained_efficiency=0.50, pinnable=False,
        ),
    }
    gpu = Gpu(
        model="Adreno 740", vendor="qualcomm", api="vulkan",
        compute_units=6, lanes_per_unit=128, freq_ghz=0.68,
        flops_per_lane_cycle=2.0, divergence_penalty=7.0,
        irregularity_penalty=6.0, launch_overhead_s=110e-6,
        min_parallelism=16384.0, stream_bw_gbps=30.0,
        sustained_efficiency=0.35,
    )
    interference = InterferenceModel(
        dram_bw_gbps=42.0,
        dvfs={
            BIG: DvfsCurve(speed_at_full_load=0.68),
            MEDIUM: DvfsCurve(speed_at_full_load=1.0),
            # The A510s clock *up* when the system is loaded - the paper's
            # most surprising observation (section 5.3, ratio 0.63).
            LITTLE: DvfsCurve(speed_at_full_load=1.90),
            GPU: DvfsCurve(speed_at_full_load=1.95),
        },
    )
    affinity = AffinityMap(
        {
            BIG: AffinityEntry(core_ids=(7,)),
            MEDIUM: AffinityEntry(core_ids=(3, 4, 5, 6)),
            LITTLE: AffinityEntry(core_ids=(0, 1, 2), pinnable=False),
        }
    )
    return Platform(
        name="oneplus11", display_name="OnePlus 11",
        soc_model="Snapdragon 8 Gen 2", clusters=clusters, gpu=gpu,
        interference=interference, affinity=affinity,
        noise=MeasurementNoise(sigma=0.03, seed=seed),
        os_name="Android (Linux 5.15.149)",
    )


def jetson_orin_nano(seed: int = _DEFAULT_SEED) -> Platform:
    """NVIDIA Jetson Orin Nano 8GB: 6x A78AE + Ampere GPU (CUDA).

    A single CPU class plus the GPU - the least heterogeneous platform,
    which is why BetterTogether's gains are smallest here (1.09x geomean
    in the paper).
    """
    clusters = {
        BIG: CpuCluster(
            pu_class=BIG, model="Cortex-A78AE", cores=6, freq_ghz=1.7,
            flops_per_cycle=8.0, irregularity_tolerance=0.72,
            dispatch_overhead_s=20e-6, stream_bw_gbps=24.0,
            core_ids=(0, 1, 2, 3, 4, 5), sustained_efficiency=0.50,
        ),
    }
    gpu = Gpu(
        model="Ampere (1024 CUDA cores)", vendor="nvidia", api="cuda",
        compute_units=8, lanes_per_unit=128, freq_ghz=0.625,
        flops_per_lane_cycle=2.0, divergence_penalty=3.5,
        irregularity_penalty=2.0, launch_overhead_s=8e-6,
        min_parallelism=16384.0, stream_bw_gbps=48.0,
        sustained_efficiency=0.60,
    )
    interference = InterferenceModel(
        dram_bw_gbps=58.0,
        dvfs={
            BIG: DvfsCurve(speed_at_full_load=0.64),
            # CUDA GPU throttles moderately under shared load (Fig. 7).
            GPU: DvfsCurve(speed_at_full_load=0.82),
        },
    )
    affinity = AffinityMap(
        {BIG: AffinityEntry(core_ids=(0, 1, 2, 3, 4, 5))}
    )
    return Platform(
        name="jetson_orin_nano", display_name="Jetson Orin Nano",
        soc_model="NVIDIA Orin (8GB)", clusters=clusters, gpu=gpu,
        interference=interference, affinity=affinity,
        noise=MeasurementNoise(sigma=0.02, seed=seed),
        os_name="Ubuntu 22.04 (L4T 5.15.148-tegra)",
    )


def jetson_orin_nano_lp(seed: int = _DEFAULT_SEED) -> Platform:
    """Jetson Orin Nano in its 7 W low-power mode.

    Two cores shut off, CPU and memory clocks roughly halved, GPU clock
    reduced; the tight power budget makes the GPU throttle hard when the
    CPUs are also busy (Fig. 7 shows a 1.74x slowdown).
    """
    clusters = {
        BIG: CpuCluster(
            pu_class=BIG, model="Cortex-A78AE", cores=4, freq_ghz=0.85,
            flops_per_cycle=8.0, irregularity_tolerance=0.72,
            dispatch_overhead_s=25e-6, stream_bw_gbps=16.0,
            core_ids=(0, 1, 2, 3), sustained_efficiency=0.50,
        ),
    }
    gpu = Gpu(
        model="Ampere (1024 CUDA cores, LP)", vendor="nvidia", api="cuda",
        compute_units=8, lanes_per_unit=128, freq_ghz=0.306,
        flops_per_lane_cycle=2.0, divergence_penalty=3.5,
        irregularity_penalty=2.0, launch_overhead_s=10e-6,
        min_parallelism=16384.0, stream_bw_gbps=30.0,
        sustained_efficiency=0.60,
    )
    interference = InterferenceModel(
        dram_bw_gbps=34.0,
        dvfs={
            BIG: DvfsCurve(speed_at_full_load=0.73),
            GPU: DvfsCurve(speed_at_full_load=0.52),
        },
    )
    affinity = AffinityMap(
        {BIG: AffinityEntry(core_ids=(0, 1, 2, 3))}
    )
    return Platform(
        name="jetson_orin_nano_lp",
        display_name="Jetson Orin Nano (low-power)",
        soc_model="NVIDIA Orin (8GB, 7W mode)", clusters=clusters, gpu=gpu,
        interference=interference, affinity=affinity,
        noise=MeasurementNoise(sigma=0.02, seed=seed),
        os_name="Ubuntu 22.04 (L4T 5.15.148-tegra)",
    )


def raspberry_pi5(seed: int = _DEFAULT_SEED) -> Platform:
    """Raspberry Pi 5: 4x Cortex-A76, no usable compute GPU (extension).

    Not part of the paper's evaluation; included to exercise CPU-only
    platforms (the VideoCore GPU has no practical GPGPU path; BetterTogether
    degenerates to a single-class scheduler, a useful boundary case).
    """
    clusters = {
        BIG: CpuCluster(
            pu_class=BIG, model="Cortex-A76", cores=4, freq_ghz=2.4,
            flops_per_cycle=8.0, irregularity_tolerance=0.75,
            dispatch_overhead_s=20e-6, stream_bw_gbps=12.0,
            core_ids=(0, 1, 2, 3), sustained_efficiency=0.7,
        ),
    }
    interference = InterferenceModel(
        dram_bw_gbps=17.0,
        dvfs={BIG: DvfsCurve(speed_at_full_load=0.85)},
    )
    affinity = AffinityMap(
        {BIG: AffinityEntry(core_ids=(0, 1, 2, 3))}, has_gpu=False
    )
    return Platform(
        name="raspberry_pi5", display_name="Raspberry Pi 5",
        soc_model="Broadcom BCM2712", clusters=clusters, gpu=None,
        interference=interference, affinity=affinity,
        noise=MeasurementNoise(sigma=0.02, seed=seed),
        os_name="Raspberry Pi OS (Linux 6.6)",
    )


_BUILDERS: Dict[str, Callable[[int], Platform]] = {
    "pixel7a": pixel_7a,
    "oneplus11": oneplus_11,
    "jetson_orin_nano": jetson_orin_nano,
    "jetson_orin_nano_lp": jetson_orin_nano_lp,
    "raspberry_pi5": raspberry_pi5,
}

#: Evaluation order used throughout the paper's tables and figures
#: (extension platforms are registered but not part of the grid).
PLATFORM_NAMES = (
    "pixel7a", "oneplus11", "jetson_orin_nano", "jetson_orin_nano_lp",
)


def get_platform(name: str, seed: int = _DEFAULT_SEED) -> Platform:
    """Build a platform by registry name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise PlatformError(
            f"unknown platform {name!r}; known: {known}"
        ) from None
    return builder(seed)


def all_platforms(seed: int = _DEFAULT_SEED) -> List[Platform]:
    """All four evaluated platforms, in paper order."""
    return [get_platform(name, seed) for name in PLATFORM_NAMES]
