"""Fig. 7: the impact of interference - per-PU average ratio of
interference-heavy to isolated profiled execution time, per device.

Paper shape targets:

* Pixel: every CPU cluster slows (little 1.39x, medium 1.20x, big
  1.40x) while the Mali GPU speeds up (0.86x).
* OnePlus: big slows (1.38x), medium unaffected (1.00x), and both the
  little cores (0.63x) and the Adreno GPU (0.64x) *speed up* under load.
* Jetson: CPU slows ~1.4x, CUDA GPU slows 1.19x; low-power mode: CPU
  ~1.3x, GPU 1.74x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.profiler import BTProfiler, interference_ratios
from repro.eval.experiments.common import (
    APP_ORDER,
    PLATFORM_LABELS,
    ExperimentScale,
    build_applications,
    evaluation_platforms,
)
from repro.eval.metrics import arithmetic_mean, format_table

#: Paper's Fig. 7 values: (platform, pu) -> ratio, for shape checks.
PAPER_RATIOS: Dict[Tuple[str, str], float] = {
    ("pixel7a", "little"): 1.39,
    ("pixel7a", "medium"): 1.20,
    ("pixel7a", "big"): 1.40,
    ("pixel7a", "gpu"): 0.86,
    ("oneplus11", "big"): 1.38,
    ("oneplus11", "medium"): 1.00,
    ("oneplus11", "little"): 0.63,
    ("oneplus11", "gpu"): 0.64,
    ("jetson_orin_nano", "big"): 1.43,
    ("jetson_orin_nano", "gpu"): 1.19,
    ("jetson_orin_nano_lp", "big"): 1.29,
    ("jetson_orin_nano_lp", "gpu"): 1.74,
}


@dataclass
class Fig7Result:
    """(platform, pu) -> mean interference/isolated ratio across apps."""

    ratios: Dict[Tuple[str, str], float]

    def direction_matches_paper(self, key: Tuple[str, str],
                                tolerance: float = 0.05) -> bool:
        """Same side of 1.0 as the paper (within a neutral band)."""
        ours = self.ratios[key]
        paper = PAPER_RATIOS[key]
        if abs(paper - 1.0) <= tolerance:
            return abs(ours - 1.0) <= 3 * tolerance
        return (ours - 1.0) * (paper - 1.0) > 0

    def directions_matching(self) -> int:
        return sum(
            1 for key in PAPER_RATIOS
            if key in self.ratios and self.direction_matches_paper(key)
        )


def run_fig7(scale: ExperimentScale = None) -> Fig7Result:
    scale = scale or ExperimentScale.paper()
    applications = build_applications(scale)
    per_pu: Dict[Tuple[str, str], List[float]] = {}
    for platform in evaluation_platforms():
        profiler = BTProfiler(platform, repetitions=scale.repetitions)
        for app_name in APP_ORDER:
            isolated, interference = profiler.profile_both(
                applications[app_name]
            )
            for pu, ratio in interference_ratios(
                isolated, interference
            ).items():
                per_pu.setdefault((platform.name, pu), []).append(ratio)
    return Fig7Result(
        ratios={key: arithmetic_mean(vals) for key, vals in per_pu.items()}
    )


def format_fig7(result: Fig7Result) -> str:
    pu_order = ("little", "medium", "big", "gpu")
    platforms = sorted({p for p, _ in result.ratios},
                       key=list(PLATFORM_LABELS).index)
    rows: List[List[str]] = [["Device"] + list(pu_order)]
    for platform in platforms:
        row = [PLATFORM_LABELS[platform]]
        for pu in pu_order:
            key = (platform, pu)
            if key in result.ratios:
                paper = PAPER_RATIOS.get(key)
                suffix = f" (paper {paper:.2f})" if paper else ""
                row.append(f"{result.ratios[key]:.2f}{suffix}")
            else:
                row.append("-")
        rows.append(row)
    footer = (
        f"slowdown/speedup directions matching paper: "
        f"{result.directions_matching()}/{len(PAPER_RATIOS)}"
    )
    return (
        "Fig. 7 - interference-heavy / isolated time ratio "
        "(>1 slowdown, <1 speedup)\n"
        + format_table(rows) + "\n" + footer
    )
