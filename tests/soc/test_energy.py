"""Tests for the energy-accounting extension."""

import pytest

from repro.apps import build_octree_application
from repro.core import Chunk
from repro.errors import PlatformError
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import PowerSpec, estimate_energy, get_platform, power_table
from repro.soc.pu import BIG, GPU


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


def simulate(app, chunks, platform, n=15):
    return SimulatedPipelineExecutor(app, chunks, platform).run(n)


class TestPowerSpec:
    def test_validates_ordering(self):
        with pytest.raises(PlatformError):
            PowerSpec(active_w=1.0, idle_w=2.0)
        with pytest.raises(PlatformError):
            PowerSpec(active_w=1.0, idle_w=-0.1)

    def test_tables_exist_for_all_paper_platforms(self):
        for name in ("pixel7a", "oneplus11", "jetson_orin_nano",
                     "jetson_orin_nano_lp"):
            table = power_table(name)
            assert table  # non-empty

    def test_unknown_platform_gets_defaults(self):
        assert power_table("mystery-soc") == power_table("default")

    def test_lp_mode_draws_less(self):
        normal = power_table("jetson_orin_nano")
        lp = power_table("jetson_orin_nano_lp")
        assert lp[GPU].active_w < normal[GPU].active_w
        assert lp[BIG].active_w < normal[BIG].active_w


class TestEstimateEnergy:
    def test_covers_all_platform_pus(self, app, pixel):
        result = simulate(app, [Chunk(0, 7, BIG)], pixel)
        report = estimate_energy(result, pixel)
        assert set(report.per_pu_j) == set(pixel.pu_classes())
        assert report.total_j == pytest.approx(
            sum(report.per_pu_j.values())
        )

    def test_energy_positive_and_per_task_consistent(self, app, pixel):
        result = simulate(app, [Chunk(0, 7, BIG)], pixel)
        report = estimate_energy(result, pixel)
        assert report.total_j > 0
        assert report.per_task_j == pytest.approx(
            report.total_j / result.n_tasks
        )

    def test_busy_pu_draws_more_than_idle(self, app, pixel):
        result = simulate(app, [Chunk(0, 7, BIG)], pixel)
        report = estimate_energy(result, pixel)
        specs = power_table(pixel.name)
        # The big cluster is ~fully busy; the medium cluster is idle.
        big_avg_w = report.per_pu_j[BIG] / result.total_s
        medium_avg_w = report.per_pu_j["medium"] / result.total_s
        assert big_avg_w > specs[BIG].idle_w * 2
        assert medium_avg_w == pytest.approx(specs["medium"].idle_w)

    def test_energy_latency_tradeoff_visible(self, app, pixel):
        """A faster 4-PU pipeline can cost more joules per second but
        finishes sooner - the report exposes the tradeoff rather than
        collapsing it."""
        serial = simulate(app, [Chunk(0, 7, BIG)], pixel)
        split = simulate(
            app,
            [Chunk(0, 2, BIG), Chunk(2, 4, GPU), Chunk(4, 6, "medium"),
             Chunk(6, 7, "little")],
            pixel,
        )
        e_serial = estimate_energy(serial, pixel)
        e_split = estimate_energy(split, pixel)
        # Split run draws more average power...
        assert (e_split.total_j / split.total_s
                > e_serial.total_j / serial.total_s)
        # ...but the run is much shorter.
        assert split.total_s < serial.total_s

    def test_cpu_only_platform(self, app):
        pi = get_platform("raspberry_pi5")
        result = simulate(app, [Chunk(0, 7, BIG)], pi)
        report = estimate_energy(result, pi)
        assert set(report.per_pu_j) == {BIG}
