#!/usr/bin/env python3
"""Scenario: batched sparse-CNN inference on a phone.

An on-device vision service classifies camera frames in batches with a
Condensa-pruned (CSR) AlexNet - the paper's AlexNet-sparse workload, the
one where isolated performance models go most wrong (Figs. 5-6).

The example walks the full Table-4 story on the Google Pixel 7a:

1. collect the interference-aware profiling table and print it,
2. generate the K = 20 candidate schedules and show the performance
   tiers the paper describes,
3. autotune: measure the top candidates, show predicted-vs-measured,
   and pick the measured best,
4. run real batched inference through the deployed pipeline.

Run:  python examples/edge_classifier.py
"""

import numpy as np

from repro.apps import build_alexnet_sparse
from repro.core import BetterTogether
from repro.eval.metrics import format_table
from repro.runtime import ThreadedPipelineExecutor
from repro.soc import get_platform


def show_profiling_table(table) -> None:
    print("interference-aware profiling table (ms):")
    print(format_table(table.to_rows()))
    print()


def show_tiers(optimization) -> None:
    tiers = optimization.tiers()
    print(f"{len(optimization.candidates)} candidates in "
          f"{len(tiers)} performance tiers:")
    for index, tier in enumerate(tiers):
        lo = tier[0].predicted_latency_s * 1e3
        hi = tier[-1].predicted_latency_s * 1e3
        print(f"  tier {index + 1}: {len(tier)} schedules, "
              f"predicted {lo:.2f}-{hi:.2f} ms")
    print()


def show_autotuning(autotune) -> None:
    print("autotuning campaign (top 10):")
    rows = [["#", "predicted (ms)", "measured (ms)"]]
    for entry in autotune.entries[:10]:
        rows.append([
            str(entry.rank + 1),
            f"{entry.predicted_latency_s * 1e3:.2f}",
            f"{entry.measured_latency_s * 1e3:.2f}",
        ])
    print(format_table(rows))
    best = autotune.measured_best
    print(f"measured best: candidate #{best.rank + 1}; autotuning gain "
          f"{autotune.autotuning_gain:.2f}x over the predicted-best")
    print()


def run_real_inference(plan) -> None:
    """Classify two real batches through the actual kernels."""
    application = build_alexnet_sparse(batch=4)  # small functional batch
    small_platform = get_platform("pixel7a")
    small_plan = BetterTogether(
        small_platform, repetitions=5, k=8, eval_tasks=10
    ).run(application)
    predictions = []

    def capture(task, index):
        logits = np.asarray(task["logits"])
        predictions.append(logits.argmax(axis=-1).tolist())

    ThreadedPipelineExecutor(
        application, small_plan.schedule.chunks()
    ).run(2, on_complete=capture, validate=True)
    print(f"real inference under schedule "
          f"{small_plan.schedule.describe(application)}:")
    for batch_index, labels in enumerate(predictions):
        print(f"  batch {batch_index}: predicted classes {labels}")
    del plan


def main() -> None:
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()  # paper scale: batch 128

    framework = BetterTogether(platform)
    table = framework.profile(application)
    show_profiling_table(table)

    optimization = framework.optimize(application, table)
    show_tiers(optimization)

    autotune = framework.autotune(application, optimization)
    show_autotuning(autotune)

    from repro.core.framework import DeploymentPlan

    plan = DeploymentPlan(
        application=application, platform=platform, table=table,
        optimization=optimization, autotune=autotune,
    )
    print(plan.summary())
    print()
    run_real_inference(plan)


if __name__ == "__main__":
    main()
