"""Tenant placement: partitioning the SoC's PUs, and offered load.

The placement map is the serving layer's core invariant carrier: every
admitted tenant owns a *disjoint* set of PU classes (no two tenants
ever time-share a cluster - contention is then bounded to the DVFS and
DRAM-bandwidth coupling the interference model quantifies, exactly the
regime the profiling table was collected for).  Each assignment is
vetted twice:

* per tenant, ``validate_schedule()`` re-checks C1/C2 and PU
  availability against the tenant's partition before anything runs;
* across tenants, :meth:`PlacementMap.check` re-asserts pairwise
  disjointness after every mutation.

:func:`tenant_offered_load` converts one tenant's deployed schedule
into the :class:`~repro.soc.interference.ExternalLoad` its co-tenants
observe: per-PU busy fractions (a chunk is busy ``T_chunk / T_max`` of
the time in steady state - the gapness geometry again) and the average
DRAM bandwidth it draws.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from repro.core.profiler import ProfilingTable
from repro.core.schedule import Schedule, validate_schedule
from repro.core.stage import Application
from repro.errors import ServeError
from repro.soc.interference import ExternalLoad
from repro.soc.platform import Platform


class PlacementMap:
    """Tenant -> PU-class partition bookkeeping for one virtual SoC."""

    def __init__(self, schedulable_classes: Iterable[str]):
        self._schedulable = frozenset(schedulable_classes)
        if not self._schedulable:
            raise ServeError("platform has no schedulable PU classes")
        self._partitions: Dict[str, FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    @property
    def partitions(self) -> Dict[str, FrozenSet[str]]:
        return dict(self._partitions)

    def partition_of(self, tenant: str) -> FrozenSet[str]:
        try:
            return self._partitions[tenant]
        except KeyError:
            raise ServeError(
                f"tenant {tenant!r} holds no placement"
            ) from None

    def free_classes(self) -> FrozenSet[str]:
        """Schedulable PU classes no tenant currently owns."""
        held = set()
        for partition in self._partitions.values():
            held |= partition
        return self._schedulable - held

    # ------------------------------------------------------------------
    def assign(
        self,
        tenant: str,
        application: Application,
        schedule: Schedule,
    ) -> FrozenSet[str]:
        """Grant ``tenant`` the PU classes its schedule uses.

        Validates the schedule against the granted partition
        (``validate_schedule`` with ``available_pus``) and re-checks
        the cross-tenant disjointness invariant before committing.

        Raises:
            ServeError: The grant would oversubscribe a PU class
                another tenant holds, or uses an unschedulable class.
        """
        if tenant in self._partitions:
            raise ServeError(
                f"tenant {tenant!r} already holds a placement; "
                "release it before re-assigning"
            )
        wanted = frozenset(schedule.pu_classes_used)
        unschedulable = wanted - self._schedulable
        if unschedulable:
            raise ServeError(
                f"tenant {tenant!r} wants unschedulable PU classes "
                f"{sorted(unschedulable)}"
            )
        taken = wanted - self.free_classes()
        if taken:
            raise ServeError(
                f"admitting tenant {tenant!r} would oversubscribe PU "
                f"classes {sorted(taken)} already held by another "
                "tenant"
            )
        validate_schedule(schedule, application, available_pus=wanted)
        self._partitions[tenant] = wanted
        self.check()
        return wanted

    def reassign(
        self,
        tenant: str,
        application: Application,
        schedule: Schedule,
    ) -> FrozenSet[str]:
        """Atomically replace a tenant's partition (live reschedule)."""
        previous = self.partition_of(tenant)
        del self._partitions[tenant]
        try:
            return self.assign(tenant, application, schedule)
        except ServeError:
            self._partitions[tenant] = previous
            raise

    def release(self, tenant: str) -> None:
        """Free a tenant's PUs (completion or eviction)."""
        self.partition_of(tenant)
        del self._partitions[tenant]

    def check(self) -> None:
        """Re-assert the cross-tenant no-oversubscription invariant."""
        seen: Dict[str, str] = {}
        for tenant, partition in self._partitions.items():
            for pu_class in partition:
                holder = seen.get(pu_class)
                if holder is not None:
                    raise ServeError(
                        f"placement invariant violated: PU class "
                        f"{pu_class!r} held by both {holder!r} and "
                        f"{tenant!r}"
                    )
                seen[pu_class] = tenant


# ----------------------------------------------------------------------
def tenant_offered_load(
    application: Application,
    table: ProfilingTable,
    schedule: Schedule,
    platform: Platform,
) -> ExternalLoad:
    """The external load one running tenant presents to its co-tenants.

    Steady-state pipeline geometry: the bottleneck chunk is busy all
    the time, every other chunk ``T_chunk / T_max`` of the time (the
    complement is its gapness bubble).  Bandwidth: each chunk's
    time-weighted average of its stages' isolated DRAM demand, scaled
    by its busy fraction.
    """
    times = schedule.chunk_times(application, table)
    t_max = max(times.values())
    busy: Dict[str, float] = {}
    demand = 0.0
    for chunk, chunk_time in times.items():
        if t_max <= 0 or chunk_time <= 0:
            continue
        fraction = min(chunk_time / t_max, 1.0)
        busy[chunk.pu_class] = fraction
        weighted = sum(
            platform.bandwidth_demand(
                application.stages[i].work, chunk.pu_class
            ) * table.latency(application.stages[i].name, chunk.pu_class)
            for i in chunk.stage_indices
        )
        demand += (weighted / chunk_time) * fraction
    return ExternalLoad(busy=busy, demand_gbps=demand)
