"""Tests for the autotuner (level 3) and the end-to-end framework."""

import pytest

from repro.apps import build_octree_application
from repro.core import BetterTogether
from repro.core.autotuner import Autotuner
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.soc import get_platform
from repro.soc.pu import BIG, GPU


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def jetson():
    return get_platform("jetson_orin_nano")


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


@pytest.fixture(scope="module")
def optimization(pixel, app):
    table = BTProfiler(pixel, repetitions=5).profile(app)
    return BTOptimizer(
        app, table.restricted(pixel.schedulable_classes()), k=8
    ).optimize()


class TestAutotuner:
    def test_entries_cover_top(self, pixel, app, optimization):
        tuner = Autotuner(app, pixel, eval_tasks=10)
        result = tuner.tune(optimization, top=4)
        assert len(result.entries) == 4
        assert [e.rank for e in result.entries] == [0, 1, 2, 3]

    def test_measured_best_never_slower_than_predicted_best(
        self, pixel, app, optimization
    ):
        result = Autotuner(app, pixel, eval_tasks=10).tune(optimization)
        assert (
            result.measured_best.measured_latency_s
            <= result.predicted_best.measured_latency_s + 1e-12
        )
        assert result.autotuning_gain >= 1.0

    def test_deterministic_measurements(self, pixel, app, optimization):
        tuner = Autotuner(app, pixel, eval_tasks=10)
        a = tuner.tune(optimization, top=2)
        b = tuner.tune(optimization, top=2)
        assert [e.measured_latency_s for e in a.entries] == [
            e.measured_latency_s for e in b.entries
        ]

    def test_speedup_over_reference(self, pixel, app, optimization):
        result = Autotuner(app, pixel, eval_tasks=10).tune(
            optimization, top=3
        )
        reference = result.entries[0]
        assert reference.speedup_over(reference) == pytest.approx(1.0)

    def test_empty_candidates_rejected(self, pixel, app):
        with pytest.raises(SchedulingError):
            Autotuner(app, pixel, eval_tasks=10).tune([])

    def test_eval_tasks_validated(self, pixel, app):
        with pytest.raises(SchedulingError):
            Autotuner(app, pixel, eval_tasks=1)


class TestFramework:
    @pytest.fixture(scope="class")
    def plan(self, pixel, app):
        framework = BetterTogether(
            pixel, repetitions=5, k=8, eval_tasks=10
        )
        return framework.run(app)

    def test_plan_has_valid_schedule(self, plan, app):
        schedule = plan.schedule
        assert schedule.num_stages == app.num_stages
        assert schedule.is_contiguous()

    def test_deployed_beats_homogeneous(self, plan, pixel, app):
        from repro.baselines import measure_schedule

        cpu = measure_schedule(app, Schedule.homogeneous(7, BIG), pixel,
                               n_tasks=10)
        gpu = measure_schedule(app, Schedule.homogeneous(7, GPU), pixel,
                               n_tasks=10)
        assert plan.measured_latency_s < min(cpu, gpu)

    def test_plan_execute_streams_tasks(self, plan):
        result = plan.execute(n_tasks=8)
        assert result.n_tasks == 8
        assert result.total_s > 0

    def test_summary_mentions_schedule(self, plan):
        text = plan.summary()
        assert "octree" in text
        assert "ms per task" in text

    def test_uses_schedulable_classes_only(self, app):
        oneplus = get_platform("oneplus11")
        plan = BetterTogether(
            oneplus, repetitions=3, k=6, eval_tasks=8
        ).run(app)
        # OnePlus little cores are not pinnable -> never scheduled.
        assert "little" not in plan.schedule.pu_classes_used

    def test_jetson_two_class_platform(self, jetson, app):
        plan = BetterTogether(
            jetson, repetitions=3, k=6, eval_tasks=8
        ).run(app)
        used = set(plan.schedule.pu_classes_used)
        assert used <= {BIG, GPU}


class TestExecutionGateValidation:
    """No schedule reaches execution without passing validate_schedule."""

    def make_candidate(self, assignments):
        from repro.core.optimizer import ScheduleCandidate

        return ScheduleCandidate(
            rank=0, schedule=Schedule.from_assignments(assignments),
            predicted_latency_s=1.0, gapness_s=0.0,
        )

    def test_autotuner_rejects_wrong_stage_count(self, pixel, app):
        from repro.errors import ScheduleValidationError

        tuner = Autotuner(app, pixel, eval_tasks=4)
        with pytest.raises(ScheduleValidationError) as excinfo:
            tuner.measure(self.make_candidate([BIG, GPU]))
        assert excinfo.value.constraint == "C1"

    def test_autotuner_rejects_foreign_pu(self, pixel, app):
        from repro.errors import ScheduleValidationError

        tuner = Autotuner(app, pixel, eval_tasks=4)
        assignments = ["npu-imaginary"] * app.num_stages
        with pytest.raises(ScheduleValidationError) as excinfo:
            tuner.measure(self.make_candidate(assignments))
        assert excinfo.value.constraint == "availability"

    def test_deployment_plan_validates_before_execute(self, jetson, app):
        from dataclasses import replace

        from repro.errors import ScheduleValidationError

        framework = BetterTogether(jetson, repetitions=2, k=3,
                                   eval_tasks=4)
        plan = framework.run(app)
        sabotaged = replace(
            plan.autotune.entries[0],
            candidate=self.make_candidate(
                ["npu-imaginary"] * app.num_stages
            ),
        )
        plan.autotune.entries[0] = sabotaged
        if plan.autotune.measured_best is not sabotaged:
            pytest.skip("sabotaged entry is not the measured best")
        with pytest.raises(ScheduleValidationError):
            plan.execute(n_tasks=2)
