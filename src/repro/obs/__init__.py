"""repro.obs - unified observability: tracer, metrics, flight recorder.

One deterministic event spine across every layer (profiler, solver,
autotuner, DES runtime, threaded back-end, serving), with exporters to
Chrome/Perfetto trace JSON and the ASCII Gantt.  All instruments are
disabled by default; wrap a scope in :func:`capture` to record.
"""

from repro.obs.export import chrome_trace, export_gantt, write_trace
from repro.obs.metrics import MetricsRegistry, metrics, set_metrics
from repro.obs.recorder import FlightRecorder, recorder, set_recorder
from repro.obs.tracer import (
    CONTROL,
    ROOT,
    VIRTUAL,
    Capture,
    TraceEvent,
    Tracer,
    capture,
    set_tracer,
    tracer,
)

__all__ = [
    "CONTROL",
    "ROOT",
    "VIRTUAL",
    "Capture",
    "FlightRecorder",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "capture",
    "chrome_trace",
    "export_gantt",
    "metrics",
    "recorder",
    "set_metrics",
    "set_recorder",
    "set_tracer",
    "tracer",
    "write_trace",
]
