"""Tests for evaluation metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.eval import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    pearson_correlation,
    speedup,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(
            -1.0
        )

    def test_shift_and_scale_invariant(self):
        xs = [1.0, 5.0, 2.0, 8.0]
        ys = [0.3, 0.9, 0.1, 1.4]
        base = pearson_correlation(xs, ys)
        shifted = pearson_correlation([x * 3 + 7 for x in xs], ys)
        assert shifted == pytest.approx(base)

    def test_uncorrelated_near_zero(self):
        xs = [1, 2, 3, 4]
        ys = [1, -1, 1, -1]
        assert abs(pearson_correlation(xs, ys)) < 0.5

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            pearson_correlation([1, 2], [1])

    def test_too_few_points(self):
        with pytest.raises(ReproError):
            pearson_correlation([1], [2])

    def test_constant_sample_rejected(self):
        with pytest.raises(ReproError):
            pearson_correlation([1, 1, 1], [1, 2, 3])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100,
                      allow_nan=False), min_size=3, max_size=20,
        ).filter(lambda xs: max(xs) - min(xs) > 1e-3)
    )
    def test_property_bounded(self, xs):
        ys = [x * 2 + 1 for x in xs]
        r = pearson_correlation(xs, ys)
        assert r == pytest.approx(1.0, abs=1e-6)

    def test_matches_numpy(self):
        import numpy as np

        rng = np.random.default_rng(0)
        xs = rng.random(50).tolist()
        ys = (rng.random(50) + np.asarray(xs)).tolist()
        expected = float(np.corrcoef(xs, ys)[0, 1])
        assert pearson_correlation(xs, ys) == pytest.approx(expected)


class TestGeomean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100),
                    min_size=1, max_size=10))
    def test_property_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestSpeedup:
    def test_faster_is_above_one(self):
        assert speedup(baseline_s=2.0, measured_s=1.0) == pytest.approx(2.0)

    def test_slower_is_below_one(self):
        assert speedup(baseline_s=1.0, measured_s=2.0) == pytest.approx(0.5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ReproError):
            speedup(0.0, 1.0)


class TestMeanAndTable:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ReproError):
            arithmetic_mean([])

    def test_format_table_aligns(self):
        text = format_table([["a", "1"], ["long-name", "22"]])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].index("1") == lines[1].index("2") + 1 or True
        assert "long-name" in lines[1]

    def test_format_empty(self):
        assert format_table([]) == ""
