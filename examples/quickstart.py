#!/usr/bin/env python3
"""Quickstart: pipeline an application across a heterogeneous SoC.

The 60-second tour of BetterTogether: pick a (virtual) platform, build
one of the paper's applications, run the fully automated flow -
interference-aware profiling, constraint-based schedule optimization,
on-device autotuning - and compare the deployed pipeline against the
homogeneous baselines.

Run:  python examples/quickstart.py
"""

from repro.apps import build_octree_application
from repro.baselines import measure_baselines
from repro.core import BetterTogether
from repro.soc import get_platform


def main() -> None:
    # 1. The target system (paper Fig. 2, input 2).  Four calibrated
    #    virtual SoCs ship with the library; see repro.soc.PLATFORM_NAMES.
    platform = get_platform("pixel7a")
    print(platform.describe())
    print()

    # 2. The application (input 1): a 7-stage octree-construction
    #    pipeline over streaming point clouds, every stage with a CPU
    #    and a GPU kernel.
    application = build_octree_application(n_points=100_000)
    print(f"application: {application.name} - "
          f"{', '.join(application.stage_names)}")
    print()

    # 3. The fully automated flow (Fig. 2, steps 3-5).
    framework = BetterTogether(platform)
    plan = framework.run(application)
    print(plan.summary())
    print()

    # 4. How much did heterogeneous pipelining buy?
    baselines = measure_baselines(application, platform)
    print(f"CPU-only (big cores): {baselines.cpu_latency_s * 1e3:8.3f} ms/task")
    print(f"GPU-only:             {baselines.gpu_latency_s * 1e3:8.3f} ms/task")
    print(f"BetterTogether:       {plan.measured_latency_s * 1e3:8.3f} ms/task")
    print(f"speedup over best baseline: "
          f"{baselines.best_latency_s / plan.measured_latency_s:.2f}x")

    # 5. Deploy: stream 30 point clouds through the pipeline.
    result = plan.execute(n_tasks=30)
    print(f"\nstreamed {result.n_tasks} tasks in "
          f"{result.total_s * 1e3:.1f} ms (virtual time), "
          f"throughput {result.throughput_tasks_per_s:.0f} tasks/s")


if __name__ == "__main__":
    main()
