"""Command-line interface: ``python -m repro <command>``.

Mirrors how the paper's C++ tool is driven: point it at an application
and a target system, get back profiling tables, candidate schedules, a
deployed plan, or the full evaluation report.

Commands:

* ``platforms`` / ``apps``     - list registered targets / workloads (``--json``)
* ``profile``                  - collect a profiling table (optionally save JSON)
* ``plan``                     - run the end-to-end flow, print the plan
* ``run``                      - checkpointed campaign with resume (``--session``)
* ``baselines``                - measure CPU-only / GPU-only baselines
* ``analyze``                  - affinity spreads, speedup bounds, schedule explanation
* ``gantt``                    - render the deployed pipeline's Gantt chart
* ``faultsim``                 - inject faults, exercise recovery, report
* ``serve``                    - boot the multi-tenant serving soak scenario
* ``fleet``                    - run the fleet soak: shards under seeded chaos
* ``traffic``                  - open-loop workload generation / replay / overload soak
* ``top``                      - fleet dashboard: shard health, attainment, burn rates, blame
* ``trace``                    - traced run, Perfetto/Chrome or Gantt export
* ``submit``                   - submit one job to a fresh server, report admission
* ``lint``                     - static invariant linter over the tree
* ``race``                     - dynamic concurrency checker (REPRO_CHECK)
* ``report``                   - regenerate every paper table/figure

Every command exits non-zero on failure and prints a structured
(JSON) error description to stderr, so campaign drivers and CI can
react to failures without scraping tracebacks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.apps import APPLICATION_BUILDERS
from repro.baselines import measure_baselines
from repro.core import BetterTogether, CampaignSession
from repro.core.profiler import INTERFERENCE, MODES, BTProfiler
from repro.errors import CampaignError, ReproError
from repro.eval.experiments import ExperimentScale
from repro.eval.metrics import format_table
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    PuDropoutSpec,
    RetryPolicy,
    SimulatedPipelineExecutor,
    ThreadedPipelineExecutor,
    format_gantt,
)
from repro.serialization import save, write_json_report
from repro.soc import PLATFORM_NAMES, get_platform
from repro.soc.platforms import _BUILDERS as _ALL_PLATFORMS


def _build_app(name: str):
    try:
        builder = APPLICATION_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATION_BUILDERS))
        raise ReproError(
            f"unknown application {name!r}; known: {known}"
        ) from None
    return builder()


def _platform(name: str):
    # PlatformError propagates to main()'s structured error handler.
    return get_platform(name)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _emit_listing(args: argparse.Namespace, payload: dict,
                  text_lines: List[str]) -> int:
    """Shared output plumbing for the listing commands: ``--json``
    prints machine-readable output, ``--out`` persists the same payload
    through the sanctioned atomic report sink."""
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for line in text_lines:
            print(line)
    if args.out:
        write_json_report(args.out, payload)
        print(f"listing saved to {args.out}", file=sys.stderr)
    return 0


def cmd_platforms(args: argparse.Namespace) -> int:
    """List registered platforms (paper grid starred)."""
    rows = []
    lines = []
    for name in _ALL_PLATFORMS:
        platform = get_platform(name)
        rows.append({
            "name": name,
            "display_name": platform.display_name,
            "soc_model": platform.soc_model,
            "paper_grid": name in PLATFORM_NAMES,
            "pu_classes": list(platform.pu_classes()),
            "schedulable_classes": list(platform.schedulable_classes()),
        })
        marker = "*" if name in PLATFORM_NAMES else " "
        lines.append(f"{marker} {name}: {platform.display_name} "
                     f"({platform.soc_model})")
    lines.append("")
    lines.append("* = part of the paper's evaluation grid")
    return _emit_listing(args, {"platforms": rows}, lines)


def cmd_apps(args: argparse.Namespace) -> int:
    """List registered applications."""
    rows = []
    lines = []
    for name, builder in APPLICATION_BUILDERS.items():
        app = builder()
        rows.append({
            "name": name,
            "stages": app.num_stages,
            "description": app.description,
            "input_kind": app.input_kind,
        })
        lines.append(f"{name}: {app.num_stages} stages - "
                     f"{app.description}")
    return _emit_listing(args, {"applications": rows}, lines)


def cmd_profile(args: argparse.Namespace) -> int:
    """Collect and print a profiling table; optionally save JSON."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    profiler = BTProfiler(platform, repetitions=args.repetitions)
    table = profiler.profile(application, mode=args.mode)
    print(f"profiling table ({args.mode}) for {application.name} on "
          f"{platform.display_name} (ms):")
    print(format_table(table.to_rows()))
    if args.out:
        save(table, args.out)
        print(f"saved to {args.out}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Run the end-to-end flow and print the deployment plan."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks,
    )
    plan = framework.run(application)
    print(plan.summary())
    if args.out:
        save(plan.schedule, args.out)
        print(f"schedule saved to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a checkpointed campaign; re-running the directory resumes.

    ``--session DIR`` checkpoints every unit of work (profiling cell,
    candidate log, autotune measurement) to DIR as it completes;
    ``--resume DIR`` is the same but requires DIR to already hold a
    session, catching mistyped paths on what was meant to be a resume.
    Without either, this is equivalent to ``plan`` (no checkpoints).
    """
    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks, time_budget_s=args.time_budget_s,
    )
    directory = args.resume or args.session
    if args.resume and not (args.resume / "manifest.json").exists():
        raise CampaignError(
            f"--resume {args.resume}: no session manifest found; "
            "use --session to start a new session"
        )
    if directory is None:
        plan = framework.run(application)
        print(plan.summary())
        return 0
    session = CampaignSession(directory, framework)
    on_unit = ((lambda unit: print(f"  done {unit}", file=sys.stderr))
               if args.verbose else None)
    plan = session.run(application, on_unit=on_unit)
    print(session.report.format())
    print()
    print(plan.summary())
    print(f"\nsession checkpoints in {session.directory}")
    return 0


def cmd_baselines(args: argparse.Namespace) -> int:
    """Measure the homogeneous CPU-only / GPU-only baselines."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    result = measure_baselines(application, platform,
                               n_tasks=args.eval_tasks)
    cpu, gpu = result.as_row()
    print(f"{application.name} on {platform.display_name}: "
          f"CPU-only {cpu} ms | GPU-only {gpu} ms "
          f"(best: {result.best_name})")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Affinity report, speedup bound, schedule explanation, memory."""
    from repro.eval.analysis import (
        explain_schedule,
        format_affinity_report,
        format_explanation,
        speedup_bounds,
        stage_affinity_report,
    )
    from repro.runtime import estimate_pipeline_memory

    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks,
    )
    table = framework.profile(application)
    print("per-stage PU affinities:")
    print(format_affinity_report(stage_affinity_report(application,
                                                       table)))
    bounds = speedup_bounds(
        application, table.restricted(platform.schedulable_classes())
    )
    print("\nspeedup ceiling on "
          f"{platform.display_name}: {bounds.max_speedup:.2f}x")
    optimization = framework.optimize(application, table)
    autotune = framework.autotune(application, optimization)
    winner = autotune.measured_best.candidate
    print(f"\ndeployed schedule (candidate #{winner.rank + 1}):")
    print(format_explanation(
        explain_schedule(application, winner.schedule, table)
    ))
    if application.make_task is not None:
        depth = len(winner.schedule.chunks()) + 1
        memory = estimate_pipeline_memory(application, depth)
        print(f"\nmemory: {memory.total_mib:.1f} MiB "
              f"({depth} TaskObjects x "
              f"{memory.per_task_bytes / 1024 / 1024:.1f} MiB)")
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    """Deploy a plan and render its execution Gantt chart."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks,
    )
    plan = framework.run(application)
    print(plan.summary())
    executor = SimulatedPipelineExecutor(
        application, plan.schedule.chunks(), platform
    )
    result = executor.run(args.tasks, record_trace=True)
    print()
    print(format_gantt(result.spans, width=args.width))
    return 0


def cmd_faultsim(args: argparse.Namespace) -> int:
    """Deploy a plan, inject faults, and report the recovery behaviour.

    Two phases mirror the two back-ends: seeded transient kernel faults
    against the threaded executor (retry + quarantine), then a
    permanent PU dropout against the adaptive simulated deployment
    (fallback to a cached candidate avoiding the dead PU).
    """
    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks,
    )
    plan = framework.run(application)
    print(plan.summary())
    structured = {}

    # Phase 1: transient kernel faults vs. the threaded back-end.
    fault_plan = FaultPlan.random(
        seed=args.seed, n_tasks=args.tasks,
        n_stages=application.num_stages,
        kernel_fault_rate=args.kernel_fault_rate,
        fail_attempts=args.fail_attempts,
    )
    injector = FaultInjector(fault_plan)
    executor = ThreadedPipelineExecutor(
        application, plan.schedule.chunks(),
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=args.max_attempts,
                                 base_backoff_s=1e-4),
        isolate_failures=True,
    )
    result = executor.run(
        args.tasks, validate=application.validate_task is not None
    )
    threaded_report = injector.report(result.failures)
    print(f"\nthreaded phase (seed {args.seed}, "
          f"{fault_plan.n_faults} faults planned): "
          f"{result.succeeded}/{result.n_tasks} tasks ok, "
          f"{len(result.failures)} quarantined")
    print(threaded_report.format())
    structured["threaded"] = threaded_report.to_dict()

    # Phase 2: permanent PU dropout vs. the adaptive deployment.
    dropout_pu = args.dropout_pu
    if dropout_pu is None and not args.no_dropout:
        for pu in plan.schedule.pu_classes_used:
            if any(pu not in c.schedule.pu_classes_used
                   for c in plan.optimization.candidates):
                dropout_pu = pu
                break
    if args.no_dropout or dropout_pu is None:
        if not args.no_dropout:
            print("\nno deployed PU has a cached fallback candidate; "
                  "skipping the dropout phase")
    else:
        adaptive = framework.deploy_adaptive(
            plan, window_tasks=max(args.eval_tasks, 2)
        )
        drop_injector = FaultInjector(FaultPlan(dropouts=[
            PuDropoutSpec(dropout_pu, after_task=args.dropout_after),
        ]))
        hit = adaptive.run_window(fault_injector=drop_injector)
        steady = adaptive.run_window(fault_injector=drop_injector)
        print(f"\ndropout phase: {dropout_pu!r} dies at task "
              f"{args.dropout_after}")
        print(f"  window 0: fallback={hit.fallback} -> "
              f"{hit.schedule.describe(application)} "
              f"({hit.measured_latency_s * 1e3:.3f} ms/task)")
        print(f"  window 1: keeps streaming at "
              f"{steady.measured_latency_s * 1e3:.3f} ms/task")
        dropout_report = drop_injector.report()
        print(dropout_report.format())
        structured["dropout"] = dropout_report.to_dict()

    if args.out:
        write_json_report(args.out, structured)
        print(f"\nstructured report saved to {args.out}")
    return 0


class _TextSink:
    """The single sink for a command's human-readable output.

    Commands with a ``--json`` mode route *every* human-oriented line
    through one of these instead of bare ``print`` calls; in JSON mode
    the sink swallows them, so stdout carries exactly one parseable
    JSON document and nothing else.  Status notes that must survive
    JSON mode (file-written confirmations) go to stderr via
    :meth:`note`.
    """

    def __init__(self, json_mode: bool = False):
        self.json_mode = json_mode

    def line(self, text: str = "") -> None:
        """Emit one human-readable line (dropped in ``--json`` mode)."""
        if not self.json_mode:
            print(text)

    @staticmethod
    def note(text: str) -> None:
        """Out-of-band status note; always stderr, never stdout."""
        print(text, file=sys.stderr)


def _print_serve_report(report, server, sink: _TextSink) -> None:
    """Human-readable summary of one serving run."""
    sink.line(f"served {report.ticks} ticks on {report.platform} "
              f"(seed {report.seed}, rescheduling "
              f"{'on' if report.rescheduling_enabled else 'off'})")
    sink.line(f"plan cache: {report.plan_cache}")
    sink.line()
    for name in sorted(report.tenants):
        m = report.tenants[name]
        line = (f"  {name:16s} {m.status:10s} "
                f"windows={m.windows_served:<3d} "
                f"reschedules={m.reschedules}")
        if m.windows_served:
            line += (f"  p50={m.p50_latency_s * 1e3:.3f}ms "
                     f"p95={m.p95_latency_s * 1e3:.3f}ms")
        record = server.records.get(name)
        if record is not None and record.status_detail:
            line += f"  ({record.status_detail})"
        sink.line(line)
    events = [e for e in report.timeline
              if e["event"] in ("admit", "queue", "reject",
                                "reschedule", "evict", "complete",
                                "fail")]
    sink.line()
    sink.line("control-plane events:")
    for event in events:
        extra = {k: v for k, v in event.items()
                 if k not in ("tick", "event", "tenant")}
        sink.line(f"  tick {event['tick']:>3}  {event['event']:<10} "
                  f"{event['tenant']:<16} {extra if extra else ''}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the multi-tenant serving layer on the soak scenario.

    Runs the same deterministic scenario the acceptance soak test and
    the CI smoke job use: three concurrent tenants packed onto
    disjoint PU partitions, injected interference drift mid-run, and a
    fourth submission the admission controller must reject.

    ``--json`` prints the serve report as the only stdout output;
    ``--trace-out`` runs the soak under observability capture and
    exports a Chrome/Perfetto trace of the whole run.
    """
    import repro.obs as obs
    from repro.serve import SoakScenario, build_soak_server

    scenario = SoakScenario(
        platform_name=args.platform,
        seed=args.seed,
        windows=args.windows,
        window_tasks=args.tasks,
        drift_start_tick=args.drift_tick,
    )
    server = build_soak_server(scenario,
                               reschedule=not args.frozen)
    sink = _TextSink(json_mode=args.json)
    if args.trace_out:
        with obs.capture() as cap:
            report = server.run(timeout_s=args.timeout_s)
            snapshot = cap.metrics.snapshot()
            payload = report.to_dict()
            payload["metrics"] = snapshot
            trace = obs.chrome_trace(cap.events, snapshot)
        obs.write_trace(args.trace_out, trace)
        sink.note(f"trace ({len(cap.events)} events) saved to "
                  f"{args.trace_out}")
    else:
        report = server.run(timeout_s=args.timeout_s)
        payload = report.to_dict()
    _print_serve_report(report, server, sink)
    if args.gantt:
        chart = format_gantt(server.trace_spans, width=args.width)
        sink.line()
        sink.line("last served window per tenant:")
        sink.line(chart)
        payload["gantt"] = chart
    if args.json:
        print(json.dumps(payload, indent=2))
    if args.out:
        write_json_report(args.out, payload)
        sink.note(f"serve report saved to {args.out}")
    return 0


def _print_fleet_report(report, sink: _TextSink) -> None:
    """Human-readable summary of one fleet run."""
    counts = report.counts
    sink.line(f"fleet of {report.n_shards} shards served "
              f"{report.ticks} ticks (seed {report.seed}, failover "
              f"{'on' if report.failover_enabled else 'off'})")
    sink.line(f"plan cache: {dict(report.plan_cache)}")
    sink.line(f"failovers={counts.get('failover', 0)} "
              f"migrations={counts.get('migrate', 0)} "
              f"shed={counts.get('shed', 0)} "
              f"breaker transitions={counts.get('breaker', 0)}")
    survivors = [m for m in report.tenants.values()
                 if m.status == "completed"]
    if survivors:
        sink.line(f"surviving p95: {report.surviving_p95_s * 1e3:.3f}ms "
                  f"(slowdown x{report.surviving_p95_slowdown:.3f}) "
                  f"over {len(survivors)} tenants")
    sink.line()
    sink.line("shards:")
    for name in sorted(report.shards):
        s = report.shards[name]
        sink.line(f"  {name:8s} {s['state']:10s} "
                  f"breaker={s['breaker']:<9s} "
                  f"generation={s['generation']} "
                  f"windows={s['windows_served']}")
    sink.line()
    sink.line("tenants:")
    for name in sorted(report.tenants):
        m = report.tenants[name]
        line = (f"  {name:12s} {m.status:10s} "
                f"windows={m.windows_served:<3d} "
                f"migrations={m.migrations}")
        if m.windows_served:
            line += (f"  p50={m.p50_latency_s * 1e3:.3f}ms "
                     f"p95={m.p95_latency_s * 1e3:.3f}ms")
        line += f"  via {'>'.join(m.shards) if m.shards else '-'}"
        sink.line(line)
    sink.line()
    sink.line("chaos events:")
    for event in report.chaos_events:
        sink.line(f"  tick {event['tick']:>3}  {event['kind']:<14} "
                  f"{event['shard']:<8} {event['detail']}")
    control = [e for e in report.timeline
               if e["event"] in ("failover", "shed", "breaker",
                                 "shard_state", "reject", "fail")]
    sink.line()
    sink.line("control-plane events:")
    for event in control:
        who = event.get("shard", event.get("tenant", ""))
        extra = {k: v for k, v in event.items()
                 if k not in ("tick", "event", "shard", "tenant")}
        sink.line(f"  tick {event['tick']:>3}  {event['event']:<12} "
                  f"{who:<10} {extra if extra else ''}")


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run the fleet soak: N SoC shards under seeded chaos.

    Runs the same deterministic scenario the fleet acceptance test and
    the CI ``fleet-chaos`` job use: twelve tenants on four shards with
    a mid-run gray failure, a shard crash + delayed rejoin, and a
    PU-class brownout that trips the SLO-breach failover.

    ``--no-failover`` strands dead shards' tenants instead of
    re-placing them (the baseline the chaos run is measured against);
    ``--json`` prints the fleet report as the only stdout output;
    ``--trace-out`` runs under observability capture and exports a
    Chrome/Perfetto trace.
    """
    import repro.obs as obs
    from repro.fleet import FleetSoakScenario, build_fleet

    scenario = FleetSoakScenario(
        seed=args.seed,
        n_shards=args.shards,
        n_tenants=args.tenants,
        platform_name=args.platform,
        max_ticks=args.max_ticks,
    )
    sink = _TextSink(json_mode=args.json)
    failover = not args.no_failover
    if args.trace_out:
        with obs.capture() as cap:
            router = build_fleet(scenario, failover=failover)
            report = router.run(timeout_s=args.timeout_s)
            snapshot = cap.metrics.snapshot()
            payload = report.to_dict()
            payload["metrics"] = snapshot
            trace = obs.chrome_trace(cap.events, snapshot)
        obs.write_trace(args.trace_out, trace)
        sink.note(f"trace ({len(cap.events)} events) saved to "
                  f"{args.trace_out}")
    else:
        router = build_fleet(scenario, failover=failover)
        report = router.run(timeout_s=args.timeout_s)
        payload = report.to_dict()
    _print_fleet_report(report, sink)
    if args.json:
        print(json.dumps(payload, indent=2))
    if args.out:
        write_json_report(args.out, payload)
        sink.note(f"fleet report saved to {args.out}")
    return 0


def _print_traffic_report(report, sink: _TextSink) -> None:
    """Human-readable summary of one open-loop traffic run."""
    sink.line(f"open-loop run: {report.arrivals} arrivals over "
              f"{report.ticks} ticks on {report.n_shards} shard(s) "
              f"(seed {report.seed})")
    sink.line(f"windows: offered={report.offered_windows} "
              f"served={report.served_windows} "
              f"goodput={report.goodput_windows} "
              f"(goodput tasks={report.goodput_tasks})")
    sink.line(f"tenants: admitted={report.admitted} "
              f"rejected={report.rejected} "
              f"completed={report.completed}")
    sink.line()
    sink.line("tiers:")
    for name in sorted(report.tiers):
        tier = report.tiers[name].to_dict()
        sink.line(f"  {name:8s} slo<=x{tier['slo_slowdown']:<5} "
                  f"served={tier['served_windows']:<4} "
                  f"attainment={tier['attainment']} "
                  f"p99=x{tier['p99_slowdown']}")
    if report.recoveries:
        sink.line()
        sink.line("burst recovery:")
        for recovery in report.recoveries:
            r = recovery.to_dict()
            sink.line(f"  burst [{r['start_tick']}, {r['end_tick']}): "
                      f"backlog {r['pre_burst_backlog']} -> peak "
                      f"{r['peak_backlog']}, recovered in "
                      f"{r['recovery_ticks']} tick(s)")


def cmd_traffic(args: argparse.Namespace) -> int:
    """Open-loop traffic: ``generate``, ``replay``, or ``soak``.

    All three modes run the seeded :class:`FleetOverloadScenario` -
    the same scenario the acceptance tests and the CI ``traffic-soak``
    job byte-diff:

    * ``generate`` materializes the arrival stream (a pure function of
      spec and seed) and optionally freezes it into a checksummed
      trace artifact (``--trace-out``);
    * ``replay`` re-runs a frozen trace through the fleet - replaying
      a recorded trace reproduces the recorded run byte-identically;
    * ``soak`` generates and drives in one step; ``--compare`` also
      runs the admit-everything baseline and exits 1 unless admission
      control strictly wins on goodput (the overload gate CI asserts).
    """
    from repro.traffic import (
        FleetOverloadScenario,
        TrafficTrace,
        overload_curve,
        run_overload_soak,
    )

    scenario = FleetOverloadScenario(
        seed=args.seed,
        n_shards=args.shards,
        ticks=args.ticks,
        load_multiplier=args.multiplier,
    )
    sink = _TextSink(json_mode=args.json)
    admission = not args.no_admission

    if args.mode == "generate":
        trace = TrafficTrace.record(scenario.spec(), scenario.seed)
        by_tier: dict = {}
        by_kind: dict = {}
        for event in trace.events:
            by_tier[event.tier] = by_tier.get(event.tier, 0) + 1
            by_kind[event.app_kind] = by_kind.get(event.app_kind, 0) + 1
        payload = {
            "seed": trace.seed,
            "ticks": trace.spec.ticks,
            "arrivals": len(trace.events),
            "offered_windows": trace.offered_windows(),
            "by_tier": {k: by_tier[k] for k in sorted(by_tier)},
            "by_app_kind": {k: by_kind[k] for k in sorted(by_kind)},
        }
        sink.line(f"generated {payload['arrivals']} arrivals "
                  f"({payload['offered_windows']} windows) over "
                  f"{trace.spec.ticks} ticks (seed {trace.seed})")
        sink.line(f"  tiers: {payload['by_tier']}")
        sink.line(f"  app kinds: {payload['by_app_kind']}")
        if args.trace_out:
            trace.save(args.trace_out)
            sink.note(f"traffic trace saved to {args.trace_out}")
        if args.json:
            print(json.dumps(payload, indent=2))
        if args.out:
            write_json_report(args.out, payload)
            sink.note(f"generation summary saved to {args.out}")
        return 0

    if args.mode == "replay":
        if not args.trace:
            raise ReproError("replay needs --trace <recorded trace>")
        trace = TrafficTrace.load(args.trace)
        _, report = run_overload_soak(scenario, admission=admission,
                                      trace=trace)
        payload = report.to_dict()
        sink.line(f"replayed {args.trace} "
                  f"(admission {'on' if admission else 'off'})")
        sink.line()
    else:  # soak
        if args.trace_out:
            trace = TrafficTrace.record(scenario.spec(), scenario.seed)
            trace.save(args.trace_out)
            sink.note(f"traffic trace saved to {args.trace_out}")
        _, report = run_overload_soak(scenario, admission=admission)
        payload = report.to_dict()

    _print_traffic_report(report, sink)
    exit_code = 0

    if args.mode == "soak" and args.compare:
        _, baseline = run_overload_soak(scenario, admission=False)
        payload["admit_everything"] = baseline.to_dict()
        gate = report.goodput_tasks > baseline.goodput_tasks
        sink.line()
        sink.line(f"admission gate: goodput {report.goodput_tasks} "
                  f"(admission on) vs {baseline.goodput_tasks} "
                  f"(admit everything) -> "
                  f"{'PASS' if gate else 'FAIL'}")
        if not gate:
            sink.note("admission control did not beat admit-"
                      "everything on goodput")
            exit_code = 1

    if args.mode == "soak" and args.curve:
        points = overload_curve(scenario, admission=admission)
        payload["curve"] = points
        sink.line()
        sink.line("goodput vs offered load:")
        for point in points:
            sink.line(f"  x{point['load_multiplier']:<4} "
                      f"offered={point['offered_windows']:<5} "
                      f"served={point['served_windows']:<5} "
                      f"goodput_tasks={point['goodput_tasks']}")

    if args.json:
        print(json.dumps(payload, indent=2))
    if args.out:
        write_json_report(args.out, payload)
        sink.note(f"traffic report saved to {args.out}")
    return exit_code


def _render_top(payload: dict, sink: _TextSink) -> None:
    """Render one ``repro top`` dashboard frame from its payload."""
    scenario = payload["scenario"]
    sink.line(f"repro top - overload soak seed {scenario['seed']}, "
              f"{scenario['shards']} shard(s), "
              f"{scenario['ticks']} ticks, "
              f"x{scenario['multiplier']} offered load, admission "
              f"{'on' if scenario['admission'] else 'off'}")
    windows = payload["windows"]
    sink.line(f"windows: offered={windows['offered']} "
              f"served={windows['served']} "
              f"goodput={windows['goodput']} "
              f"(goodput tasks={windows['goodput_tasks']})")
    sink.line()
    sink.line("shards:")
    for name in sorted(payload["shards"]):
        s = payload["shards"][name]
        sink.line(f"  {name:8s} {s['state']:10s} "
                  f"breaker={s['breaker']:<9s} "
                  f"windows={s['windows_served']}")
    sink.line()
    sink.line("tiers:")
    for name in sorted(payload["tiers"]):
        tier = payload["tiers"][name]
        burning = "BURNING" if name in payload["burning_tiers"] else "ok"
        sink.line(f"  {name:8s} slo<=x{tier['slo_slowdown']:<5} "
                  f"served={tier['served_windows']:<4} "
                  f"attainment={tier['attainment']} "
                  f"burn={burning}")
    alerts = payload["alerts"]
    sink.line()
    sink.line(f"burn-rate alerts: {len(alerts)}")
    for alert in alerts[:10]:
        sink.line(f"  tick {alert['tick']:>3}  {alert['key']:<10} "
                  f"fast=x{alert['fast_burn']} "
                  f"slow=x{alert['slow_burn']} "
                  f"(threshold x{alert['threshold']})")
    if len(alerts) > 10:
        sink.line(f"  ... and {len(alerts) - 10} more")
    sink.line()
    offenders = payload["top_offenders"]
    sink.line(f"top interference offenders "
              f"({payload['attribution']['windows']} windows "
              f"attributed):")
    if not offenders:
        sink.line("  (no attributable slowdown)")
    for entry in offenders:
        sink.line(f"  {entry['source']:<14} "
                  f"{entry['resource']:<10} "
                  f"share={entry['total_share']:<12} "
                  f"over {entry['windows']} window(s)")


def cmd_top(args: argparse.Namespace) -> int:
    """The fleet dashboard: one attributed overload soak, summarized.

    Runs the seeded :class:`FleetOverloadScenario` with blame
    decomposition and per-tier burn-rate alerting armed (the only CLI
    path that turns both on), then renders shard health, per-tier SLO
    attainment, burn-rate status, and the top-K interference offenders
    aggregated from the per-window blame matrices.

    Everything rendered derives from the deterministic seeded run, so
    ``repro top --json`` is byte-identical across repeats for a given
    (scenario, seed).  ``--watch`` additionally streams one trajectory
    line per control tick while the soak runs (the live view); the
    final dashboard is the same either way.
    """
    import repro.obs as obs
    from repro.obs.alerts import BurnRateRule
    from repro.traffic import FleetOverloadScenario, run_overload_soak

    scenario = FleetOverloadScenario(
        seed=args.seed,
        n_shards=args.shards,
        ticks=args.ticks,
        load_multiplier=args.multiplier,
    )
    sink = _TextSink(json_mode=args.json)
    admission = not args.no_admission
    burn = BurnRateRule(
        fast_window=args.burn_fast,
        slow_window=args.burn_slow,
        budget=args.burn_budget,
        threshold=args.burn_threshold,
    )

    def watch(entry: dict) -> None:
        sink.line(f"tick {entry['tick']:>3}  "
                  f"arrivals={entry['arrivals']:<3} "
                  f"served={entry['served_windows']:<4} "
                  f"goodput_tasks={entry['goodput_tasks']:<5} "
                  f"backlog={entry['backlog']}")

    # The soak runs under capture so the time-series store and flight
    # recorder are live (the dashboard is the instrumented path); the
    # rendered payload itself derives only from the seeded reports.
    with obs.capture():
        result, report = run_overload_soak(
            scenario, admission=admission,
            attribution=True, burn=burn,
            on_tick=watch if args.watch else None,
        )
    if args.watch:
        sink.line()

    fleet_report = result.fleet_report
    attribution = dict(report.attribution or {})
    offenders = list(attribution.get("top_offenders", ()))[:args.top_k]
    alerts = [dict(a) for a in (report.alerts or ())]
    burning = sorted({str(a["key"]) for a in alerts
                      if str(a["key"]) in report.tiers})
    payload = {
        "scenario": {
            "seed": scenario.seed,
            "shards": scenario.n_shards,
            "ticks": scenario.ticks,
            "multiplier": scenario.load_multiplier,
            "admission": admission,
        },
        "windows": {
            "offered": report.offered_windows,
            "served": report.served_windows,
            "goodput": report.goodput_windows,
            "goodput_tasks": report.goodput_tasks,
        },
        "shards": {
            name: dict(fleet_report.shards[name])
            for name in sorted(fleet_report.shards)
        },
        "tiers": {
            name: report.tiers[name].to_dict()
            for name in sorted(report.tiers)
        },
        "alerts": alerts,
        "burning_tiers": burning,
        "attribution": {
            "windows": attribution.get("windows", 0),
            "attributed_total": attribution.get(
                "attributed_total", 0.0),
        },
        "top_offenders": offenders,
    }
    _render_top(payload, sink)
    if args.json:
        print(json.dumps(payload, indent=2))
    if args.out:
        write_json_report(args.out, payload)
        sink.note(f"dashboard snapshot saved to {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a flow under observability capture and export its trace.

    ``--serve`` traces the multi-tenant soak scenario (spans from the
    profiler, solver, DES runtime and serving layers, correlated by
    parent links); the default traces the offline plan flow plus one
    traced simulated run.  Exports: ``perfetto``/``chrome`` (the same
    Chrome trace-event JSON, loadable by Perfetto) or ``gantt`` (the
    ASCII chart rendered from the same span tree).
    """
    import repro.obs as obs

    with obs.capture() as cap:
        if args.serve:
            from repro.serve import SoakScenario, build_soak_server

            scenario = SoakScenario(
                platform_name=args.platform,
                seed=args.seed,
                windows=args.windows,
                window_tasks=args.tasks,
            )
            server = build_soak_server(scenario, reschedule=True)
            server.run(timeout_s=args.timeout_s)
        else:
            platform = _platform(args.platform)
            application = _build_app(args.app)
            framework = BetterTogether(
                platform, repetitions=args.repetitions, k=args.k,
                eval_tasks=args.eval_tasks,
            )
            plan = framework.run(application)
            executor = SimulatedPipelineExecutor(
                application, plan.schedule.chunks(), platform
            )
            executor.run(args.tasks, record_trace=True)
        snapshot = cap.metrics.snapshot()
        events = cap.events
    if args.export == "gantt":
        print(obs.export_gantt(events, width=args.width))
        return 0
    payload = obs.chrome_trace(events, snapshot)
    if args.out:
        obs.write_trace(args.out, payload)
        _TextSink.note(f"trace ({len(events)} events) saved to "
                       f"{args.out}")
    else:
        print(json.dumps(payload, indent=2))
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a fresh server and report its admission fate.

    Boots an in-process :class:`~repro.serve.PipelineServer`, admits
    ``--co`` synthetic background tenants first (so the submission
    faces real contention), then submits the requested application and
    reports the admission decision and, if admitted, its measured
    serving latencies.
    """
    from repro.apps.synthetic import build_synthetic_application
    from repro.serve import PipelineServer, ServerConfig, TenantSpec

    platform = _platform(args.platform)
    server = PipelineServer(
        platform,
        seed=args.seed,
        config=ServerConfig(
            max_ticks=args.windows + 8,
            queue_capacity=args.queue_capacity,
            max_partition_classes=args.cap,
            reschedule=True,
        ),
    )
    for index in range(args.co):
        server.submit(TenantSpec(
            name=f"co-{index}",
            application=build_synthetic_application(
                seed=args.seed + 1 + index, stage_count=3,
            ),
            priority=0,
            windows=args.windows,
            window_tasks=args.tasks,
        ))
    server.submit(TenantSpec(
        name=args.name,
        application=_build_app(args.app),
        priority=args.priority,
        windows=args.windows,
        window_tasks=args.tasks,
        required_classes=frozenset(args.require or ()),
    ))
    report = server.run(timeout_s=args.timeout_s)
    record = server.records[args.name]
    print(f"submission {args.name!r} ({args.app}) on "
          f"{platform.display_name} with {args.co} co-tenants:")
    print(f"  outcome: {record.status}  ({record.status_detail})")
    if record.partition:
        print(f"  partition: {sorted(record.partition)}")
    metrics = report.tenants[args.name]
    if metrics.windows_served:
        print(f"  windows served: {metrics.windows_served}, "
              f"reschedules: {metrics.reschedules}")
        print(f"  per-item latency: p50 {metrics.p50_latency_s * 1e3:.3f} ms, "
              f"p95 {metrics.p95_latency_s * 1e3:.3f} ms")
    if args.out:
        write_json_report(args.out, report.to_dict())
        print(f"serve report saved to {args.out}", file=sys.stderr)
    return 0 if record.status in ("completed", "running") else 1


def _analysis_targets(args: argparse.Namespace) -> Optional[List[Path]]:
    """Paths to analyse, honouring ``--changed``.

    Returns ``None`` when ``--changed`` matched nothing (the caller
    should report clean and exit 0 without touching the tree).
    """
    from repro.analysis.linter import changed_files, default_lint_target

    if args.changed is not None:
        base = args.changed or "HEAD"
        files = changed_files(base=base)
        return files if files else None
    return [Path(p) for p in args.paths] or [default_lint_target()]


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static invariant linter (``--strict`` gates CI)."""
    from repro.analysis.linter import lint_paths
    from repro.analysis.report import (
        render_lint_json,
        render_lint_text,
        render_rule_catalog,
    )

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    paths = _analysis_targets(args)
    if paths is None:
        print("repro-lint: clean (no changed python files)",
              file=sys.stderr)
        return 0
    report = lint_paths(paths)
    if args.format == "json":
        print(json.dumps(render_lint_json(report), indent=2))
    else:
        print(render_lint_text(report))
    if args.out:
        write_json_report(args.out, render_lint_json(report))
        print(f"lint report saved to {args.out}", file=sys.stderr)
    return 1 if (args.strict and not report.clean) else 0


def cmd_flow(args: argparse.Namespace) -> int:
    """Run the whole-program determinism-flow analysis."""
    from repro.analysis.flow import analyze_paths
    from repro.analysis.report import (
        render_flow_catalog,
        render_flow_json,
        render_flow_text,
    )

    if args.list_rules:
        print(render_flow_catalog())
        return 0
    paths = _analysis_targets(args)
    if paths is None:
        print("repro-flow: clean (no changed python files)",
              file=sys.stderr)
        return 0
    report = analyze_paths(paths)
    if args.format == "json":
        print(json.dumps(render_flow_json(report), indent=2))
    else:
        print(render_flow_text(report))
    if args.out:
        write_json_report(args.out, render_flow_json(report))
        print(f"flow report saved to {args.out}", file=sys.stderr)
    return 1 if (args.strict and not report.clean) else 0


def cmd_race(args: argparse.Namespace) -> int:
    """Run the dynamic concurrency checker scenarios."""
    # Imported lazily: repro.analysis.race pulls in repro.runtime,
    # whose modules import the checker hooks at load time.
    from repro.analysis.race import run_race
    from repro.analysis.report import render_race_text

    data, exit_code = run_race(tasks=args.tasks, stages=args.stages,
                               selftest=args.selftest)
    if args.format == "json":
        print(json.dumps(data, indent=2))
    else:
        print(render_race_text(data))
    if args.out:
        write_json_report(args.out, data)
        print(f"race report saved to {args.out}", file=sys.stderr)
    return exit_code


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every paper table/figure as one text report."""
    from repro.eval.reporting import generate_report

    scale = (ExperimentScale.quick() if args.quick
             else ExperimentScale.paper())
    text = generate_report(scale=scale, progress=lambda line: print(
        line, file=sys.stderr))
    print(text)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", default="pixel7a",
                        help="target platform (see `platforms`)")
    parser.add_argument("--app", default="octree",
                        help="application (see `apps`)")
    parser.add_argument("--repetitions", type=int, default=30,
                        help="profiling repetitions per table entry")
    parser.add_argument("--k", type=int, default=20,
                        help="optimizer candidate count")
    parser.add_argument("--eval-tasks", type=int, default=30,
                        help="tasks per measurement run")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BetterTogether: interference-aware software "
                    "pipelining on heterogeneous SoCs (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("platforms", help="list registered platforms")
    p.add_argument("--json", action="store_true",
                   help="machine-readable listing on stdout")
    p.add_argument("--out",
                   help="save the listing as JSON (atomic write)")
    p.set_defaults(fn=cmd_platforms)

    p = sub.add_parser("apps", help="list registered applications")
    p.add_argument("--json", action="store_true",
                   help="machine-readable listing on stdout")
    p.add_argument("--out",
                   help="save the listing as JSON (atomic write)")
    p.set_defaults(fn=cmd_apps)

    p = sub.add_parser("profile", help="collect a profiling table")
    _add_target_args(p)
    p.add_argument("--mode", choices=MODES, default=INTERFERENCE)
    p.add_argument("--out", help="save the table as JSON")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("plan", help="run the end-to-end flow")
    _add_target_args(p)
    p.add_argument("--out", help="save the deployed schedule as JSON")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("run",
                       help="checkpointed campaign with resume support")
    _add_target_args(p)
    p.add_argument("--session", type=Path, default=None,
                   help="checkpoint every unit of work to this directory"
                        " (re-running it resumes)")
    p.add_argument("--resume", type=Path, default=None,
                   help="resume an existing session directory (must "
                        "already contain a manifest)")
    p.add_argument("--time-budget-s", type=float, default=None,
                   help="wall-clock budget for the optimizer search; on "
                        "expiry it degrades to a greedy schedule")
    p.add_argument("--verbose", action="store_true",
                   help="log each completed unit of work to stderr")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("baselines", help="measure homogeneous baselines")
    _add_target_args(p)
    p.set_defaults(fn=cmd_baselines)

    p = sub.add_parser("analyze",
                       help="affinity report, bounds, explanation")
    _add_target_args(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("gantt", help="render the deployed pipeline")
    _add_target_args(p)
    p.add_argument("--tasks", type=int, default=8)
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(fn=cmd_gantt)

    p = sub.add_parser("faultsim",
                       help="inject faults and report the recovery")
    _add_target_args(p)
    p.add_argument("--tasks", type=int, default=8,
                   help="tasks through the threaded back-end")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (same seed, same faults)")
    p.add_argument("--kernel-fault-rate", type=float, default=0.15,
                   help="per-(task, stage) transient fault probability")
    p.add_argument("--fail-attempts", type=int, default=1,
                   help="dispatch attempts each injected fault kills")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="retry budget per stage dispatch")
    p.add_argument("--dropout-pu", default=None,
                   help="PU class to kill mid-run (default: auto-pick)")
    p.add_argument("--dropout-after", type=int, default=2,
                   help="task index at which the PU dies")
    p.add_argument("--no-dropout", action="store_true",
                   help="skip the PU-dropout phase")
    p.add_argument("--out", help="save the structured report as JSON")
    p.set_defaults(fn=cmd_faultsim)

    p = sub.add_parser("serve",
                       help="boot the multi-tenant serving soak "
                            "scenario (deterministic)")
    p.add_argument("--platform", default="pixel7a",
                   help="target platform (see `platforms`)")
    p.add_argument("--seed", type=int, default=7,
                   help="scenario seed (same seed, same bytes)")
    p.add_argument("--windows", type=int, default=30,
                   help="execution windows per tenant (>= 8 so the "
                        "p95 is meaningful)")
    p.add_argument("--tasks", type=int, default=10,
                   help="tasks per window")
    p.add_argument("--drift-tick", type=int, default=4,
                   help="tick at which injected interference starts")
    p.add_argument("--frozen", action="store_true",
                   help="disable the online rescheduler (offline-"
                        "schedule baseline)")
    p.add_argument("--gantt", action="store_true",
                   help="render each tenant's last window as a "
                        "per-tenant Gantt chart")
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--json", action="store_true",
                   help="print the serve report as JSON on stdout "
                        "(suppresses all human-readable output)")
    p.add_argument("--trace-out",
                   help="run under observability capture and export a "
                        "Chrome/Perfetto trace of the soak to this file")
    p.add_argument("--timeout-s", type=float, default=300.0,
                   help="wall-clock drain deadline")
    p.add_argument("--out", help="save the serve report as JSON")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("fleet",
                       help="run the fleet soak: SoC shards under "
                            "seeded chaos (deterministic)")
    p.add_argument("--platform", default="pixel7a",
                   help="shard platform (see `platforms`)")
    p.add_argument("--seed", type=int, default=7,
                   help="fleet seed (same seed, same bytes)")
    p.add_argument("--shards", type=int, default=4,
                   help="number of SoC shards (>= 4)")
    p.add_argument("--tenants", type=int, default=12,
                   help="number of tenants (>= 12)")
    p.add_argument("--max-ticks", type=int, default=96,
                   help="fleet tick budget")
    p.add_argument("--no-failover", action="store_true",
                   help="strand dead shards' tenants instead of "
                        "re-placing them (chaos baseline)")
    p.add_argument("--json", action="store_true",
                   help="print the fleet report as JSON on stdout "
                        "(suppresses all human-readable output)")
    p.add_argument("--trace-out",
                   help="run under observability capture and export a "
                        "Chrome/Perfetto trace of the fleet run")
    p.add_argument("--timeout-s", type=float, default=600.0,
                   help="wall-clock drain deadline")
    p.add_argument("--out", help="save the fleet report as JSON")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser("traffic",
                       help="open-loop workload generation, trace "
                            "replay, and overload soak (deterministic)")
    p.add_argument("mode", choices=("generate", "replay", "soak"),
                   help="generate an arrival stream, replay a recorded "
                        "trace, or run the overload soak end to end")
    p.add_argument("--seed", type=int, default=7,
                   help="scenario seed (same seed, same bytes)")
    p.add_argument("--shards", type=int, default=2,
                   help="number of SoC shards behind the router")
    p.add_argument("--ticks", type=int, default=48,
                   help="open-loop horizon in control ticks")
    p.add_argument("--multiplier", type=float, default=1.5,
                   help="offered load as a multiple of the fleet's "
                        "saturation load (>= 1.5 is the overload "
                        "regime)")
    p.add_argument("--no-admission", action="store_true",
                   help="admit everything that physically fits (the "
                        "baseline the goodput gate is measured "
                        "against)")
    p.add_argument("--compare", action="store_true",
                   help="(soak) also run the admit-everything "
                        "baseline; exit 1 unless admission control "
                        "strictly wins on goodput")
    p.add_argument("--curve", action="store_true",
                   help="(soak) sweep goodput vs offered load over "
                        "0.5x/1x/1.5x/2x saturation")
    p.add_argument("--trace", default=None,
                   help="(replay) recorded traffic trace to replay")
    p.add_argument("--trace-out",
                   help="record the arrival stream as a checksummed "
                        "traffic trace artifact")
    p.add_argument("--json", action="store_true",
                   help="print the traffic report as JSON on stdout "
                        "(suppresses all human-readable output)")
    p.add_argument("--out", help="save the traffic report as JSON")
    p.set_defaults(fn=cmd_traffic)

    p = sub.add_parser("top",
                       help="fleet dashboard: shard health, per-tier "
                            "attainment, burn rates, top interference "
                            "offenders (deterministic)")
    p.add_argument("--seed", type=int, default=7,
                   help="scenario seed (same seed, same dashboard)")
    p.add_argument("--shards", type=int, default=2,
                   help="number of SoC shards behind the router")
    p.add_argument("--ticks", type=int, default=48,
                   help="open-loop horizon in control ticks")
    p.add_argument("--multiplier", type=float, default=1.5,
                   help="offered load as a multiple of saturation")
    p.add_argument("--no-admission", action="store_true",
                   help="admit everything that physically fits (shows "
                        "the overload regime burning)")
    p.add_argument("--top-k", type=int, default=5,
                   help="interference offenders to list")
    p.add_argument("--burn-fast", type=int, default=6,
                   help="fast burn-rate window in ticks")
    p.add_argument("--burn-slow", type=int, default=24,
                   help="slow burn-rate window in ticks")
    p.add_argument("--burn-budget", type=float, default=0.1,
                   help="error budget as a bad-window fraction")
    p.add_argument("--burn-threshold", type=float, default=2.0,
                   help="burn-rate multiple that fires an alert")
    p.add_argument("--watch", action="store_true",
                   help="stream one trajectory line per tick while "
                        "the soak runs")
    p.add_argument("--json", action="store_true",
                   help="print the dashboard payload as JSON on stdout "
                        "(suppresses all human-readable output)")
    p.add_argument("--out", help="save the dashboard snapshot as JSON")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("trace",
                       help="run a traced flow, export Perfetto/Chrome "
                            "trace or ASCII Gantt")
    _add_target_args(p)
    p.add_argument("--serve", action="store_true",
                   help="trace the multi-tenant soak scenario instead "
                        "of the offline plan flow")
    p.add_argument("--seed", type=int, default=7,
                   help="soak scenario seed (with --serve)")
    p.add_argument("--windows", type=int, default=8,
                   help="soak windows per tenant (with --serve)")
    p.add_argument("--tasks", type=int, default=10,
                   help="tasks per window / simulated run")
    p.add_argument("--timeout-s", type=float, default=300.0,
                   help="wall-clock drain deadline (with --serve)")
    p.add_argument("--export",
                   choices=("perfetto", "chrome", "gantt"),
                   default="perfetto",
                   help="output format (perfetto and chrome are the "
                        "same trace-event JSON)")
    p.add_argument("--width", type=int, default=72,
                   help="chart width (with --export gantt)")
    p.add_argument("--out", help="save the exported trace to a file")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("submit",
                       help="submit one job to a fresh server and "
                            "report its admission fate")
    p.add_argument("--platform", default="pixel7a",
                   help="target platform (see `platforms`)")
    p.add_argument("--app", default="octree",
                   help="application (see `apps`)")
    p.add_argument("--name", default="job",
                   help="tenant name for the submission")
    p.add_argument("--priority", type=int, default=1,
                   help="tenant priority (higher survives contention)")
    p.add_argument("--windows", type=int, default=8,
                   help="execution windows to serve")
    p.add_argument("--tasks", type=int, default=10,
                   help="tasks per window")
    p.add_argument("--co", type=int, default=2,
                   help="synthetic co-tenants admitted first")
    p.add_argument("--require", action="append", default=None,
                   metavar="PU_CLASS",
                   help="PU class the job insists on (repeatable)")
    p.add_argument("--queue-capacity", type=int, default=2,
                   help="backpressure queue depth (0 rejects instead)")
    p.add_argument("--cap", type=int, default=2,
                   help="per-tenant partition width cap")
    p.add_argument("--seed", type=int, default=7,
                   help="seed for the synthetic co-tenants")
    p.add_argument("--timeout-s", type=float, default=300.0,
                   help="wall-clock drain deadline")
    p.add_argument("--out", help="save the serve report as JSON")
    p.set_defaults(fn=cmd_submit)

    for (name, help_text, fn) in (
        ("lint", "static invariant linter over the tree", cmd_lint),
        ("flow", "whole-program determinism-flow analysis "
                 "(taint sources -> report sinks, clock domains)",
         cmd_flow),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("paths", nargs="*", default=[],
                       help="files/directories to analyse (default: "
                            "the installed repro package)")
        p.add_argument("--strict", action="store_true",
                       help="exit 1 when any finding survives")
        p.add_argument("--changed", nargs="?", const="HEAD",
                       default=None, metavar="BASE",
                       help="analyse only python files changed vs the "
                            "given git ref (default: HEAD)")
        p.add_argument("--format", choices=("text", "json"),
                       default="text")
        p.add_argument("--list-rules", action="store_true",
                       help="print the rule catalog and exit")
        p.add_argument("--out", help="save the JSON report to a file")
        p.set_defaults(fn=fn)

    p = sub.add_parser("race",
                       help="dynamic concurrency checker (clean pipeline "
                            "run; --selftest seeds violations)")
    p.add_argument("--tasks", type=int, default=8,
                   help="tasks through the instrumented pipeline")
    p.add_argument("--stages", type=int, default=4,
                   help="stages in the counting pipeline")
    p.add_argument("--selftest", action="store_true",
                   help="also seed one violation of each kind and "
                        "verify the checker catches them")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--out", help="save the JSON report to a file")
    p.set_defaults(fn=cmd_race)

    p = sub.add_parser("report",
                       help="regenerate every paper table/figure")
    p.add_argument("--quick", action="store_true",
                   help="reduced scale for a fast smoke run")
    p.set_defaults(fn=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes are uniform across subcommands: 0 = success (or findings
    without ``--strict``), 1 = findings under ``--strict`` (or a failed
    selftest/run), 2 = tool failure - a :class:`ReproError`/``OSError``
    rendered as a one-line JSON envelope on stderr
    (``{"error": <class>, "message": <text>}``) so drivers and CI can
    react to the failure kind without scraping tracebacks.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(json.dumps(exc.payload()), file=sys.stderr)
        return 2
    except OSError as exc:
        print(json.dumps({"error": type(exc).__name__,
                          "message": str(exc)}), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
