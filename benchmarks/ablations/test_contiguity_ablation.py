"""Ablation: what the contiguity constraint (C2) costs in model terms.

C2 exists because the implementer runs one dispatcher per chunk and each
PU hosts one chunk; without it, the model could split a PU's stages into
multiple fragments.  We compare the best contiguous predicted latency
against a relaxed lower bound (each stage independently on its fastest
PU, chunked greedily) to quantify the modeling gap the constraint
accepts in exchange for an executable pipeline.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_octree_application
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.soc import get_platform


def test_contiguity_cost_is_bounded(benchmark):
    platform = get_platform("pixel7a")
    application = build_octree_application()
    table = BTProfiler(platform, repetitions=10).profile(application)
    restricted = table.restricted(platform.schedulable_classes())

    def ablate():
        contiguous = BTOptimizer(application, restricted, k=1).optimize()
        # Relaxed lower bound on ANY (even non-contiguous, even
        # fractional) assignment's bottleneck: no PU can beat the
        # fastest single stage it must host, and the total best-case
        # work spread perfectly over all M PUs.
        pus = restricted.pu_classes
        per_stage_best = [
            min(restricted.latency(stage, pu) for pu in pus)
            for stage in application.stage_names
        ]
        relaxed = max(max(per_stage_best),
                      sum(per_stage_best) / len(pus))
        return contiguous.best.predicted_latency_s, relaxed

    contiguous_latency, relaxed_bound = run_once(benchmark, ablate)
    print(f"\ncontiguous best: {contiguous_latency * 1e3:.3f} ms, "
          f"relaxed (non-contiguous) bound: {relaxed_bound * 1e3:.3f} ms, "
          f"ratio {contiguous_latency / relaxed_bound:.2f}x")
    # Contiguity can never beat the relaxation...
    assert contiguous_latency >= relaxed_bound * 0.999
    # ...but on the evaluated pipelines it costs well under 2x, which is
    # why the paper accepts it for its much simpler runtime.
    assert contiguous_latency < 2.0 * relaxed_bound
