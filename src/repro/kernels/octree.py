"""Stages 5 and 7 of the Octree pipeline: edge counting and octree build.

Following Karras (HPG 2012, section 4): once the binary radix tree over
the Morton codes exists, each radix-tree node owns the octree cells whose
prefix lengths are the multiples of 3 in ``(delta(parent), delta(node)]``
(a Morton level consumes 3 bits).  Edge counting computes that per-node
cell count; a prefix sum turns counts into allocation offsets; the build
stage then materializes the cells and links them - parent links found by
chasing radix-tree parent pointers until a cell-owning ancestor appears,
the classic pointer-chasing pattern that makes this stage CPU-friendly.

Counts are expressed on the 30 *Morton* bits (codes are stored in uint32,
so raw prefix lengths include ``CODE_BITS - MORTON_BITS`` always-common
leading zero bits that must be subtracted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.kernels.base import GPU_BLOCK, GPU_GRID
from repro.kernels.radix_tree import CODE_BITS, MORTON_BITS, RadixTree
from repro.soc.workprofile import WorkProfile

_PAD = CODE_BITS - MORTON_BITS


def _morton_depth(delta_node: np.ndarray) -> np.ndarray:
    """Clamp raw prefix lengths to the Morton payload bits."""
    return np.clip(delta_node - _PAD, 0, MORTON_BITS)


# ----------------------------------------------------------------------
# Stage 5: edge counting
# ----------------------------------------------------------------------
def _edge_counts(tree: RadixTree) -> np.ndarray:
    depth = _morton_depth(tree.delta_node)
    parent_depth = np.where(
        tree.parent >= 0, depth[np.maximum(tree.parent, 0)], 0
    )
    counts = depth // 3 - parent_depth // 3
    if tree.num_internal > 0:
        # The root additionally owns the octree root cell (level 0).
        counts[0] = depth[0] // 3 + 1
    return counts.astype(np.int64)


def count_edges_cpu(tree: RadixTree, counts: np.ndarray) -> None:
    """Host variant: vectorized gather of parent depths."""
    if len(counts) != tree.num_internal:
        raise KernelError("counts must have one entry per internal node")
    np.copyto(counts, _edge_counts(tree))


def count_edges_gpu(tree: RadixTree, counts: np.ndarray) -> None:
    """Device variant: grid-stride chunks (same math per node)."""
    if len(counts) != tree.num_internal:
        raise KernelError("counts must have one entry per internal node")
    full = _edge_counts(tree)
    stride = GPU_BLOCK * GPU_GRID
    for start in range(0, max(tree.num_internal, 1), stride):
        stop = min(start + stride, tree.num_internal)
        counts[start:stop] = full[start:stop]


def edge_count_work_profile(n: int) -> WorkProfile:
    """Parent-pointer gathers: light arithmetic, scattered reads."""
    return WorkProfile(
        flops=8.0 * max(n, 1),
        bytes_moved=24.0 * max(n, 1),
        parallelism=float(max(n, 1)),
        parallel_fraction=1.0,
        divergence=0.3,
        irregularity=0.6,
        cpu_efficiency=0.45,
        gpu_efficiency=0.3,
        gpu_cuda_efficiency=0.5,
        gpu_launches=1,
    )


# ----------------------------------------------------------------------
# Stage 7: octree construction
# ----------------------------------------------------------------------
@dataclass
class Octree:
    """The final spatial hierarchy.

    Attributes:
        level: Morton level of each cell (0 = root, up to 10).
        code: The cell's Morton prefix, left-aligned to its level
            (``code >> 3 * (10 - level)`` bits are significant).
        parent: Parent cell index (-1 for the root).
        children: ``(num_cells, 8)`` child cell indices, -1 when absent.
        num_cells: Number of cells actually materialized.
    """

    level: np.ndarray
    code: np.ndarray
    parent: np.ndarray
    children: np.ndarray
    num_cells: int


def allocate_octree(max_cells: int) -> Octree:
    """Pre-allocate octree storage for up to ``max_cells`` cells."""
    if max_cells < 1:
        raise KernelError("octree needs room for at least one cell")
    return Octree(
        level=np.zeros(max_cells, dtype=np.int64),
        code=np.zeros(max_cells, dtype=np.uint32),
        parent=np.full(max_cells, -1, dtype=np.int64),
        children=np.full((max_cells, 8), -1, dtype=np.int64),
        num_cells=0,
    )


def _node_first_code(tree: RadixTree, codes: np.ndarray) -> np.ndarray:
    """Smallest Morton code under each internal node.

    Karras node i covers the contiguous key range
    ``[range_left, range_right]`` recorded during the build; the smallest
    covered code is simply ``codes[range_left]``.
    """
    return codes[tree.range_left]


def build_octree_cpu(
    tree: RadixTree,
    codes: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    octree: Octree,
) -> None:
    """Host variant of the octree materialization.

    For each radix node owning ``c > 0`` cells, creates a chain of ``c``
    cells at consecutive Morton levels ending at the node's own depth,
    then links the chain's top cell to the nearest cell-owning ancestor's
    *bottom* cell (pointer chase).  Children slots are filled from the
    3-bit Morton digit under the parent cell.
    """
    _build_octree(tree, codes, counts, offsets, octree)


def build_octree_gpu(
    tree: RadixTree,
    codes: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    octree: Octree,
) -> None:
    """Device variant: identical semantics (the construction is specified
    per radix node and parallel; the Python loop is the per-thread body)."""
    _build_octree(tree, codes, counts, offsets, octree)


def _build_octree(
    tree: RadixTree,
    codes: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    octree: Octree,
) -> None:
    n_internal = tree.num_internal
    if n_internal == 0:
        # Degenerate single-point cloud: just the root cell.
        octree.level[0] = 0
        octree.code[0] = 0
        octree.parent[0] = -1
        octree.num_cells = 1
        return
    if len(counts) != n_internal or len(offsets) != n_internal:
        raise KernelError("counts/offsets must match internal node count")
    total = int(offsets[-1] + counts[-1])
    if total > len(octree.level):
        raise KernelError(
            f"octree over capacity: need {total}, have {len(octree.level)}"
        )

    depth = _morton_depth(tree.delta_node)
    first_code = _node_first_code(tree, codes)

    # Pass 1: materialize each node's chain of cells.
    for i in range(n_internal):
        c = int(counts[i])
        if c == 0:
            continue
        base = int(offsets[i])
        node_level = int(depth[i]) // 3
        for k in range(c):
            cell = base + k
            level = node_level - (c - 1 - k)
            octree.level[cell] = level
            shift = 3 * (MORTON_BITS // 3 - level)
            octree.code[cell] = (
                (int(first_code[i]) >> shift) << shift
            ) & 0xFFFFFFFF
            if k > 0:
                octree.parent[cell] = cell - 1

    # Pass 2: link each chain's top cell to its nearest owning ancestor.
    for i in range(n_internal):
        c = int(counts[i])
        if c == 0:
            continue
        top = int(offsets[i])
        if i == 0:
            octree.parent[top] = -1
        else:
            ancestor = int(tree.parent[i])
            while ancestor > 0 and counts[ancestor] == 0:
                ancestor = int(tree.parent[ancestor])
            # The ancestor's bottom cell is its chain's last slot.
            octree.parent[top] = int(
                offsets[ancestor] + counts[ancestor] - 1
            )

    # Pass 3: children links from parent pointers.
    for cell in range(total):
        parent = int(octree.parent[cell])
        if parent < 0:
            continue
        level = int(octree.level[cell])
        digit = (int(octree.code[cell]) >> (3 * (MORTON_BITS // 3 - level))) & 0x7
        octree.children[parent, digit] = cell
    octree.num_cells = total


def octree_build_work_profile(n: int) -> WorkProfile:
    """Scattered cell writes plus ancestor pointer chasing.

    Memory-bound with irregular access: the big and medium CPU clusters
    and the GPU end up in the same ballpark (Fig. 1's octree-construct
    bars), while little cores fall behind on the pointer chases.
    """
    return WorkProfile(
        flops=14.0 * max(n, 1),
        bytes_moved=60.0 * max(n, 1),
        parallelism=float(max(n // 2, 1)),
        parallel_fraction=1.0,
        divergence=0.4,
        irregularity=0.5,
        cpu_efficiency=0.4,
        gpu_efficiency=0.35,
        gpu_cuda_efficiency=0.45,
        gpu_launches=2,
    )
