"""Seeded violations that travel through container mutation.

The taint never flows through a return value: a helper mutates a list
the caller owns, so only mutation-aware summaries catch it.
"""

import random
import threading


def collect_samples(out):
    # Mutates the caller's list with a global-RNG draw.
    out.append(random.random())


def checksum_samples():
    samples = []
    collect_samples(samples)
    # FLOW-GLOBAL-RNG: the tainted container feeds the checksum.
    return artifact_sha256(samples)


def dump_pu_names(pu_classes):
    names = set(pu_classes)
    lines = []
    for name in names:
        # Position in `lines` depends on set iteration order.
        lines.append(name)
    # FLOW-UNORDERED-ITER: unordered iteration order is serialized.
    atomic_write_text("pus.txt", "\n".join(lines))


def save_worker_state(state):
    state["worker"] = threading.get_ident()
    # FLOW-THREAD-ID: thread identity lands in a saved artifact.
    save(state)
