"""Thread-affinity maps (paper Fig. 2, input 2).

BetterTogether requires a *target system specification* including an
affinity map of threads to CPU types.  The map records, for each PU class,
which OS core ids belong to it and whether the OS allows pinning threads to
those cores - on the paper's OnePlus 11 only 5 of the 8 cores could be
pinned, which removes the little cluster from the schedulable set and is
one reason the Pixel (fully pinnable) saw larger speedups (section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import PlatformError
from repro.soc.pu import GPU


@dataclass(frozen=True)
class AffinityEntry:
    """Core ids and pinnability for one PU class."""

    core_ids: Tuple[int, ...]
    pinnable: bool = True


class AffinityMap:
    """Maps PU classes to core ids and pinnability.

    The GPU participates as a schedulable class but has no CPU core ids.
    """

    def __init__(self, entries: Mapping[str, AffinityEntry], has_gpu: bool = True):
        self._entries: Dict[str, AffinityEntry] = dict(entries)
        self._has_gpu = has_gpu
        seen: set = set()
        for pu_class, entry in self._entries.items():
            for core in entry.core_ids:
                if core in seen:
                    raise PlatformError(
                        f"core id {core} appears in multiple clusters "
                        f"(second: {pu_class})"
                    )
                seen.add(core)

    @property
    def cpu_classes(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def core_ids(self, pu_class: str) -> Tuple[int, ...]:
        """OS core ids of a PU class (empty for the GPU)."""
        if pu_class == GPU:
            return ()
        try:
            return self._entries[pu_class].core_ids
        except KeyError:
            raise PlatformError(f"unknown PU class: {pu_class!r}") from None

    def is_pinnable(self, pu_class: str) -> bool:
        """Whether dispatcher threads can bind to this class.

        The GPU is always "pinnable": dispatch happens through the driver's
        queue, not through ``sched_setaffinity``.
        """
        if pu_class == GPU:
            return self._has_gpu
        try:
            return self._entries[pu_class].pinnable
        except KeyError:
            raise PlatformError(f"unknown PU class: {pu_class!r}") from None

    def schedulable_classes(self) -> Tuple[str, ...]:
        """PU classes BT-Optimizer may assign stages to.

        Unpinnable clusters are excluded: without affinity control the
        framework cannot guarantee a chunk actually runs there, so the
        profiling table entry would not describe the deployed behaviour.
        """
        classes = [
            pu_class
            for pu_class, entry in self._entries.items()
            if entry.pinnable
        ]
        if self._has_gpu:
            classes.append(GPU)
        return tuple(classes)

    def total_cores(self) -> int:
        """CPU cores across every cluster."""
        return sum(len(e.core_ids) for e in self._entries.values())

    def pinnable_cores(self) -> int:
        """CPU cores the OS allows pinning to."""
        return sum(
            len(e.core_ids) for e in self._entries.values() if e.pinnable
        )

    def describe(self) -> str:
        """Human-readable one-line-per-class summary."""
        lines = []
        for pu_class, entry in self._entries.items():
            pin = "pinnable" if entry.pinnable else "NOT pinnable"
            lines.append(
                f"{pu_class}: cores {list(entry.core_ids)} ({pin})"
            )
        if self._has_gpu:
            lines.append("gpu: driver-scheduled")
        return "\n".join(lines)
