"""Tests for JSON persistence of framework artifacts."""

import json

import pytest

from repro.apps import build_octree_application
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.core.schedule import Schedule
from repro.serialization import (
    CHECKSUM_KEY,
    SerializationError,
    artifact_sha256,
    atomic_write_text,
    load,
    read_artifact,
    optimization_from_dict,
    optimization_to_dict,
    profiling_table_from_dict,
    profiling_table_to_dict,
    save,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.soc import get_platform


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


@pytest.fixture(scope="module")
def table(pixel, app):
    return BTProfiler(pixel, repetitions=3).profile(app)


@pytest.fixture(scope="module")
def optimization(pixel, app, table):
    return BTOptimizer(
        app, table.restricted(pixel.schedulable_classes()), k=6
    ).optimize()


class TestProfilingTableRoundTrip:
    def test_round_trip_preserves_entries(self, table):
        restored = profiling_table_from_dict(profiling_table_to_dict(table))
        assert restored.stage_names == table.stage_names
        assert restored.pu_classes == table.pu_classes
        assert restored.mode == table.mode
        for stage in table.stage_names:
            for pu in table.pu_classes:
                assert restored.latency(stage, pu) == table.latency(
                    stage, pu
                )

    def test_file_round_trip(self, table, tmp_path):
        path = tmp_path / "table.json"
        save(table, path)
        restored = load(path)
        assert restored.latency(
            table.stage_names[0], table.pu_classes[0]
        ) == table.latency(table.stage_names[0], table.pu_classes[0])

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            profiling_table_from_dict(
                {"kind": "profiling_table", "version": 1}
            )

    def test_wrong_kind_rejected(self, table):
        data = profiling_table_to_dict(table)
        data["kind"] = "schedule"
        with pytest.raises(SerializationError):
            profiling_table_from_dict(data)

    def test_wrong_version_rejected(self, table):
        data = profiling_table_to_dict(table)
        data["version"] = 99
        with pytest.raises(SerializationError):
            profiling_table_from_dict(data)


class TestScheduleRoundTrip:
    def test_round_trip(self):
        schedule = Schedule.from_assignments(
            ["big", "big", "gpu", "little"]
        )
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.assignments == schedule.assignments

    def test_contiguity_enforced_on_load(self):
        data = schedule_to_dict(Schedule.homogeneous(3, "big"))
        data["assignments"] = ["big", "gpu", "big"]
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            schedule_from_dict(data)


class TestOptimizationRoundTrip:
    def test_round_trip_preserves_candidates(self, optimization):
        restored = optimization_from_dict(
            optimization_to_dict(optimization)
        )
        assert len(restored.candidates) == len(optimization.candidates)
        for a, b in zip(restored.candidates, optimization.candidates):
            assert a.rank == b.rank
            assert a.schedule.assignments == b.schedule.assignments
            assert a.predicted_latency_s == b.predicted_latency_s
        assert restored.gap_threshold_s == optimization.gap_threshold_s

    def test_restored_candidates_feed_autotuner(self, optimization, app,
                                                pixel, tmp_path):
        """A cached campaign can be resumed on-device (the operational
        point of serialization)."""
        from repro.core.autotuner import Autotuner

        path = tmp_path / "opt.json"
        save(optimization, path)
        restored = load(path)
        tuned = Autotuner(app, pixel, eval_tasks=8).tune(restored, top=3)
        assert len(tuned.entries) == 3


class TestFileDispatch:
    def test_load_dispatches_on_kind(self, table, tmp_path):
        table_path = tmp_path / "t.json"
        schedule_path = tmp_path / "s.json"
        save(table, table_path)
        save(Schedule.homogeneous(2, "gpu"), schedule_path)
        from repro.core.profiler import ProfilingTable

        assert isinstance(load(table_path), ProfilingTable)
        assert isinstance(load(schedule_path), Schedule)

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save(object(), tmp_path / "x.json")

    def test_untagged_file_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(SerializationError):
            load(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "mystery", "version": 1}))
        with pytest.raises(SerializationError):
            load(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load(tmp_path / "missing.json")


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "out.json", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("precious")

        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # write() rejects non-str
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_save_is_atomic_over_existing_artifact(self, table,
                                                   tmp_path):
        path = tmp_path / "t.json"
        save(table, path)
        before = path.read_bytes()
        save(table, path)
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["t.json"]


class TestChecksums:
    def test_saved_artifacts_carry_checksum(self, table, tmp_path):
        path = tmp_path / "t.json"
        save(table, path)
        data = json.loads(path.read_text())
        assert data[CHECKSUM_KEY] == artifact_sha256(data)

    def test_checksum_ignores_key_order(self, table):
        data = profiling_table_to_dict(table)
        shuffled = dict(reversed(list(data.items())))
        assert artifact_sha256(data) == artifact_sha256(shuffled)

    def test_flipped_checksum_rejected_with_both_values(self, table,
                                                        tmp_path):
        path = tmp_path / "t.json"
        save(table, path)
        data = json.loads(path.read_text())
        good = data[CHECKSUM_KEY]
        bad = ("0" if good[0] != "0" else "1") + good[1:]
        data[CHECKSUM_KEY] = bad
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError) as excinfo:
            load(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert f"expected {good}" in message
        assert f"found {bad}" in message

    def test_tampered_payload_rejected(self, table, tmp_path):
        path = tmp_path / "t.json"
        save(table, path)
        data = json.loads(path.read_text())
        data["mode"] = "isolated"  # silent flip of a semantic field
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError, match="checksum mismatch"):
            load(path)

    def test_truncated_file_rejected_with_path(self, table, tmp_path):
        path = tmp_path / "t.json"
        save(table, path)
        path.write_text(path.read_text()[:60])
        with pytest.raises(SerializationError) as excinfo:
            load(path)
        assert str(path) in str(excinfo.value)

    def test_legacy_file_without_checksum_loads(self, table, tmp_path):
        """Artifacts written before checksumming stay readable."""
        path = tmp_path / "t.json"
        data = profiling_table_to_dict(table)
        assert CHECKSUM_KEY not in data  # dicts are checksum-free
        path.write_text(json.dumps(data))
        restored = load(path)
        assert restored.mode == table.mode


class TestErrorMessagesNamePath:
    def test_wrong_kind_names_path_and_values(self, table, tmp_path):
        path = tmp_path / "t.json"
        save(table, path)
        data = json.loads(path.read_text())
        data["kind"] = "schedule"
        del data[CHECKSUM_KEY]
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError) as excinfo:
            read_artifact(path, kind="profiling_table")
        message = str(excinfo.value)
        assert str(path) in message
        assert "expected kind 'profiling_table'" in message
        assert "found 'schedule'" in message

    def test_wrong_version_names_both_versions(self, table, tmp_path):
        path = tmp_path / "t.json"
        data = profiling_table_to_dict(table)
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError) as excinfo:
            read_artifact(path, kind="profiling_table")
        assert "version 1" in str(excinfo.value)
        assert "found 99" in str(excinfo.value)

    def test_missing_file_names_path(self, tmp_path):
        missing = tmp_path / "gone.json"
        with pytest.raises(SerializationError) as excinfo:
            read_artifact(missing)
        assert str(missing) in str(excinfo.value)


class TestDegradedFlagRoundTrip:
    def test_degraded_survives_round_trip(self, optimization):
        data = optimization_to_dict(optimization)
        assert data["degraded"] is False
        data["degraded"] = True
        restored = optimization_from_dict(data)
        assert restored.degraded is True

    def test_legacy_dict_defaults_to_exact(self, optimization):
        data = optimization_to_dict(optimization)
        del data["degraded"]
        assert optimization_from_dict(data).degraded is False


class TestJsonReportMetricsSnapshot:
    """write_json_report attaches the obs metrics snapshot only while a
    capture is active, so uninstrumented reports stay byte-identical."""

    def test_disabled_registry_leaves_bytes_untouched(self, tmp_path):
        from repro.serialization import write_json_report

        plain, again = tmp_path / "a.json", tmp_path / "b.json"
        write_json_report(plain, {"x": 1})
        write_json_report(again, {"x": 1})
        assert plain.read_bytes() == again.read_bytes()
        assert "metrics" not in json.loads(plain.read_text())

    def test_enabled_registry_snapshot_rides_along(self, tmp_path):
        from repro.obs import capture
        from repro.serialization import write_json_report

        path = tmp_path / "r.json"
        with capture() as cap:
            cap.metrics.counter("solver.nodes", 5)
            write_json_report(path, {"x": 1})
        data = json.loads(path.read_text())
        assert data["x"] == 1
        assert data["metrics"]["counters"]["solver.nodes"] == 5

    def test_explicit_metrics_key_not_overwritten(self, tmp_path):
        from repro.obs import capture
        from repro.serialization import write_json_report

        path = tmp_path / "r.json"
        with capture():
            write_json_report(path, {"metrics": "mine"})
        assert json.loads(path.read_text())["metrics"] == "mine"

    def test_caller_payload_not_mutated(self):
        from repro.obs import capture
        from repro.serialization import write_json_report
        import tempfile, os

        payload = {"x": 1}
        with capture():
            handle, name = tempfile.mkstemp()
            os.close(handle)
            try:
                write_json_report(name, payload)
            finally:
                os.unlink(name)
        assert payload == {"x": 1}
