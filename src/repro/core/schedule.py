"""Pipeline schedules: stage-to-PU assignments and their predicted cost.

A :class:`Schedule` is the optimizer's output (paper Fig. 2 step 4): one
PU class per stage, with the contiguity property (constraint C2) that all
stages on a PU form a single chunk.  The class computes everything the
optimizer reasons about: the chunk decomposition, per-chunk predicted
runtimes from a profiling table, the bottleneck latency ``T_max``, and
the *gapness* ``T_max - T_min`` (objective O1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.profiler import ProfilingTable
from repro.core.stage import Application, Chunk
from repro.errors import ScheduleValidationError, SchedulingError


@dataclass(frozen=True)
class Schedule:
    """An assignment of pipeline stages to PU classes.

    Attributes:
        assignments: ``assignments[i]`` is the PU class of stage ``i``.
    """

    assignments: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise SchedulingError("a schedule needs at least one stage")
        if not self.is_contiguous():
            raise SchedulingError(
                f"assignment {self.assignments} violates contiguity (C2): "
                "stages on one PU must form a single chunk"
            )

    @classmethod
    def from_assignments(cls, assignments: Sequence[str]) -> "Schedule":
        return cls(assignments=tuple(assignments))

    @classmethod
    def homogeneous(cls, num_stages: int, pu_class: str) -> "Schedule":
        """All stages on one PU (the paper's CPU-only / GPU-only
        baselines)."""
        if num_stages < 1:
            raise SchedulingError("num_stages must be >= 1")
        return cls(assignments=(pu_class,) * num_stages)

    # ------------------------------------------------------------------
    def is_contiguous(self) -> bool:
        """Each PU class appears as one contiguous run (constraint C2)."""
        seen: List[str] = []
        for pu_class in self.assignments:
            if seen and seen[-1] == pu_class:
                continue
            if pu_class in seen:
                return False
            seen.append(pu_class)
        return True

    @property
    def num_stages(self) -> int:
        return len(self.assignments)

    @property
    def pu_classes_used(self) -> Tuple[str, ...]:
        """Distinct PUs in pipeline order."""
        out: List[str] = []
        for pu_class in self.assignments:
            if not out or out[-1] != pu_class:
                out.append(pu_class)
        return tuple(out)

    def chunks(self) -> List[Chunk]:
        """Maximal contiguous runs, in pipeline order."""
        chunks: List[Chunk] = []
        start = 0
        for index in range(1, self.num_stages + 1):
            boundary = (
                index == self.num_stages
                or self.assignments[index] != self.assignments[start]
            )
            if boundary:
                chunks.append(
                    Chunk(start=start, stop=index,
                          pu_class=self.assignments[start])
                )
                start = index
        return chunks

    # ------------------------------------------------------------------
    # Model predictions from a profiling table
    # ------------------------------------------------------------------
    def chunk_times(self, application: Application,
                    table: ProfilingTable) -> Dict[Chunk, float]:
        """Predicted runtime of each chunk: the sum of its stages'
        profiled latencies on the chunk's PU."""
        self._check_application(application)
        times: Dict[Chunk, float] = {}
        for chunk in self.chunks():
            times[chunk] = sum(
                table.latency(application.stages[i].name, chunk.pu_class)
                for i in chunk.stage_indices
            )
        return times

    def predicted_latency(self, application: Application,
                          table: ProfilingTable) -> float:
        """``T_max``: the bottleneck chunk's runtime - the pipeline's
        steady-state per-task latency under the model."""
        return max(self.chunk_times(application, table).values())

    def gapness(self, application: Application,
                table: ProfilingTable) -> float:
        """``T_max - T_min`` (objective O1): low gapness means every PU in
        the pipeline stays busy, i.e. high utilization."""
        times = self.chunk_times(application, table).values()
        return max(times) - min(times)

    def predicted_serial_latency(self, application: Application,
                                 table: ProfilingTable) -> float:
        """Sum of all stage latencies - the unpipelined execution time."""
        self._check_application(application)
        return sum(
            table.latency(stage.name, pu_class)
            for stage, pu_class in zip(application.stages, self.assignments)
        )

    def _check_application(self, application: Application) -> None:
        if application.num_stages != self.num_stages:
            raise SchedulingError(
                f"schedule has {self.num_stages} stages, application "
                f"{application.name!r} has {application.num_stages}"
            )

    # ------------------------------------------------------------------
    def describe(self, application: Application = None) -> str:
        """Compact rendering like ``[morton..sort]@big | [unique]@gpu``."""
        parts = []
        for chunk in self.chunks():
            if application is not None:
                names = [
                    application.stages[i].name for i in chunk.stage_indices
                ]
                label = (
                    names[0] if len(names) == 1
                    else f"{names[0]}..{names[-1]}"
                )
            else:
                label = (
                    str(chunk.start) if len(chunk) == 1
                    else f"{chunk.start}-{chunk.stop - 1}"
                )
            parts.append(f"[{label}]@{chunk.pu_class}")
        return " | ".join(parts)

    def __str__(self) -> str:
        return "-".join(self.assignments)


def validate_schedule(
    schedule: Union["Schedule", Sequence[str]],
    application: Optional[Application] = None,
    table: Optional[ProfilingTable] = None,
    available_pus: Optional[Iterable[str]] = None,
    max_chunk_time_s: Optional[float] = None,
    min_chunk_time_s: Optional[float] = None,
) -> "Schedule":
    """Check a schedule against the model constraints before deployment.

    Accepts either a :class:`Schedule` or a raw assignment sequence (so
    hand-crafted or deserialized assignments can be vetted *before* the
    ``Schedule`` constructor is trusted with them).  Each violated rule
    raises a distinct :class:`~repro.errors.ScheduleValidationError`
    whose ``constraint`` attribute names it:

    * ``C1`` - every stage carries exactly one PU class (non-empty
      assignment, one entry per application stage);
    * ``C2`` - stages on one PU form a single contiguous chunk;
    * ``C3a`` / ``C3b`` - per-chunk predicted runtime within the upper /
      lower bound (requires ``application`` and ``table``);
    * ``availability`` - only PUs from ``available_pus`` are used.

    Returns:
        The validated :class:`Schedule` (constructed when raw
        assignments were passed).
    """
    assignments = tuple(
        schedule.assignments if isinstance(schedule, Schedule)
        else schedule
    )
    # C1: exactly one PU class per stage.
    if not assignments:
        raise ScheduleValidationError(
            "C1", "schedule assigns no stages"
        )
    for index, pu_class in enumerate(assignments):
        if not isinstance(pu_class, str) or not pu_class:
            raise ScheduleValidationError(
                "C1",
                f"stage {index} has no PU class (got {pu_class!r})"
            )
    if (
        application is not None
        and len(assignments) != application.num_stages
    ):
        raise ScheduleValidationError(
            "C1",
            f"schedule assigns {len(assignments)} stages, application "
            f"{application.name!r} has {application.num_stages}"
        )
    # C2: contiguity.
    seen: List[str] = []
    for pu_class in assignments:
        if seen and seen[-1] == pu_class:
            continue
        if pu_class in seen:
            raise ScheduleValidationError(
                "C2",
                f"PU class {pu_class!r} appears in two separate chunks "
                f"in {assignments}"
            )
        seen.append(pu_class)
    # PU availability (dead PUs, unpinnable clusters, foreign platforms).
    if available_pus is not None:
        unavailable = sorted(set(assignments) - set(available_pus))
        if unavailable:
            raise ScheduleValidationError(
                "availability",
                f"schedule uses unavailable PU classes {unavailable}"
            )
    validated = (
        schedule if isinstance(schedule, Schedule)
        else Schedule.from_assignments(assignments)
    )
    # C3a / C3b: per-chunk runtime bounds, from the profiling table.
    if (max_chunk_time_s is not None or min_chunk_time_s is not None):
        if application is None or table is None:
            raise SchedulingError(
                "per-chunk bound checks (C3) need an application and a "
                "profiling table"
            )
        times = validated.chunk_times(application, table)
        for chunk, runtime in times.items():
            if (
                max_chunk_time_s is not None
                and runtime > max_chunk_time_s + 1e-12
            ):
                raise ScheduleValidationError(
                    "C3a",
                    f"chunk {chunk.pu_class!r} (stages "
                    f"{chunk.start}-{chunk.stop - 1}) runs "
                    f"{runtime:.6f}s > max {max_chunk_time_s:.6f}s"
                )
            if (
                min_chunk_time_s is not None
                and runtime < min_chunk_time_s - 1e-12
            ):
                raise ScheduleValidationError(
                    "C3b",
                    f"chunk {chunk.pu_class!r} (stages "
                    f"{chunk.start}-{chunk.stop - 1}) runs "
                    f"{runtime:.6f}s < min {min_chunk_time_s:.6f}s"
                )
    return validated


def enumerate_schedules(num_stages: int,
                        pu_classes: Sequence[str]) -> List[Schedule]:
    """Every contiguity-respecting schedule (exhaustive reference).

    Used by tests to validate the solver-based optimizer: a schedule is a
    composition of the stage sequence into k contiguous chunks labelled
    with k distinct PU classes, so the space is small even though the raw
    assignment space is ``M^N`` (the paper's 262K example for N=9, M=4).
    """
    if num_stages < 1:
        raise SchedulingError("num_stages must be >= 1")
    pus = list(dict.fromkeys(pu_classes))
    results: List[Schedule] = []

    def extend(position: int, remaining: List[str],
               acc: List[Tuple[int, str]]) -> None:
        if position == num_stages:
            assignments: List[str] = []
            for length, pu_class in acc:
                assignments.extend([pu_class] * length)
            results.append(Schedule.from_assignments(assignments))
            return
        for length in range(1, num_stages - position + 1):
            for index, pu_class in enumerate(remaining):
                rest = remaining[:index] + remaining[index + 1:]
                extend(position + length, rest,
                       acc + [(length, pu_class)])

    extend(0, pus, [])
    return results
