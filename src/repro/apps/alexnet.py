"""The AlexNet-dense and AlexNet-sparse applications (paper section 4.1).

Both share one architecture: four convolution(+ReLU) stages, each followed
by 2x2 max pooling, and a final fully-connected layer - nine stages, the
paper's pipeline granularity.  The CIFAR-sized network is scaled the way
AlexNet-for-CIFAR implementations are (large early kernels, widths
96/192/384/384).

* **Dense** processes one image per task: regular dense linear algebra,
  the GPU-dominant workload class.
* **Sparse** prunes the convolution weights with magnitude pruning (the
  Condensa stand-in) to CSR and processes a *batch* of images per task
  (128 in the paper) because per-image cost collapses after pruning:
  irregular sparse computation, the workload where isolated performance
  models mispredict the most (paper Figs. 5-6).

Weights are deterministic (seeded) and shared by every task: they are the
paper's "persistent data", captured by the stage kernels by reference so
recycled TaskObjects never copy them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.apps.datasets import CIFAR_CLASSES, cifar_like_batch, cifar_like_image
from repro.core.stage import Application, Stage
from repro.kernels import (
    ConvSpec,
    CsrMatrix,
    conv2d_relu_cpu,
    conv2d_relu_gpu,
    conv_work_profile,
    linear_cpu,
    linear_gpu,
    linear_work_profile,
    maxpool2x2_cpu,
    maxpool2x2_gpu,
    maxpool_work_profile,
    prune_to_csr,
    sparse_conv2d_relu_cpu,
    sparse_conv2d_relu_gpu,
    sparse_conv_work_profile,
)
from repro.kernels.base import CPU, GPU

#: (spec, input HW) for the four convolution stages.
CONV_LAYERS: Tuple[Tuple[ConvSpec, int], ...] = (
    (ConvSpec(in_channels=3, out_channels=96, kernel_size=5, padding=2), 32),
    (ConvSpec(in_channels=96, out_channels=192, kernel_size=5, padding=2), 16),
    (ConvSpec(in_channels=192, out_channels=384, kernel_size=3, padding=1), 8),
    (ConvSpec(in_channels=384, out_channels=384, kernel_size=3, padding=1), 4),
)
#: Flattened feature count feeding the classifier.
FC_IN = 384 * 2 * 2
#: Default pruning level for AlexNet-sparse (Condensa-style aggressive
#: magnitude pruning; the paper reports per-image cost collapsing enough
#: to batch 128 images per task).
DEFAULT_SPARSITY = 0.995
#: Paper batch size for the sparse variant.
DEFAULT_SPARSE_BATCH = 128

_WEIGHT_SEED = 42


@dataclass(frozen=True)
class AlexNetWeights:
    """Deterministic network parameters shared across tasks."""

    conv_weights: Tuple[np.ndarray, ...]
    conv_biases: Tuple[np.ndarray, ...]
    fc_weights: np.ndarray
    fc_bias: np.ndarray


def make_weights(seed: int = _WEIGHT_SEED) -> AlexNetWeights:
    """He-style initialized float32 weights, deterministic per seed."""
    rng = np.random.default_rng(seed)
    conv_weights, conv_biases = [], []
    for spec, _ in CONV_LAYERS:
        fan_in = spec.in_channels * spec.kernel_size**2
        scale = np.sqrt(2.0 / fan_in)
        conv_weights.append(
            (rng.standard_normal(
                (spec.out_channels, spec.in_channels,
                 spec.kernel_size, spec.kernel_size)
            ) * scale).astype(np.float32)
        )
        conv_biases.append(
            (rng.standard_normal(spec.out_channels) * 0.01).astype(np.float32)
        )
    fc_weights = (
        rng.standard_normal((CIFAR_CLASSES, FC_IN))
        * np.sqrt(2.0 / FC_IN)
    ).astype(np.float32)
    fc_bias = np.zeros(CIFAR_CLASSES, dtype=np.float32)
    return AlexNetWeights(
        conv_weights=tuple(conv_weights),
        conv_biases=tuple(conv_biases),
        fc_weights=fc_weights,
        fc_bias=fc_bias,
    )


def _buffer_plan(batch: int) -> List[Tuple[str, Tuple[int, ...]]]:
    """Names and shapes of all activation buffers, in stage order."""
    plan: List[Tuple[str, Tuple[int, ...]]] = []

    def shaped(shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (batch,) + shape if batch > 1 else shape

    plan.append(("input", shaped((3, 32, 32))))
    for layer, (spec, hw) in enumerate(CONV_LAYERS):
        plan.append((f"act{layer + 1}", shaped((spec.out_channels, hw, hw))))
        plan.append(
            (f"pool{layer + 1}",
             shaped((spec.out_channels, hw // 2, hw // 2)))
        )
    plan.append(("logits", shaped((CIFAR_CLASSES,))))
    return plan


def _per_image(batch: int, fn: Callable[[np.ndarray, np.ndarray], None],
               src: np.ndarray, dst: np.ndarray) -> None:
    """Apply an image kernel over a (possibly absent) batch dimension."""
    if batch > 1:
        for b in range(batch):
            fn(src[b], dst[b])
    else:
        fn(src, dst)


def _dense_stages(weights: AlexNetWeights, batch: int) -> List[Stage]:
    stages: List[Stage] = []
    prev = "input"
    for layer, (spec, hw) in enumerate(CONV_LAYERS):
        w, b = weights.conv_weights[layer], weights.conv_biases[layer]
        act, pool = f"act{layer + 1}", f"pool{layer + 1}"

        def conv_kernel(fn, src=prev, dst=act, w=w, b=b, spec=spec):
            def kernel(task):
                _per_image(
                    batch,
                    lambda x, out: fn(x, w, b, out, spec),
                    task[src], task[dst],
                )
            return kernel

        stages.append(
            Stage(
                name=f"conv{layer + 1}",
                work=conv_work_profile(spec, hw, hw, batch=batch),
                kernels={CPU: conv_kernel(conv2d_relu_cpu),
                         GPU: conv_kernel(conv2d_relu_gpu)},
            )
        )

        def pool_kernel(fn, src=act, dst=pool):
            def kernel(task):
                _per_image(batch, fn, task[src], task[dst])
            return kernel

        stages.append(
            Stage(
                name=f"pool{layer + 1}",
                work=maxpool_work_profile(spec.out_channels, hw, hw,
                                          batch=batch),
                kernels={CPU: pool_kernel(maxpool2x2_cpu),
                         GPU: pool_kernel(maxpool2x2_gpu)},
            )
        )
        prev = pool
    stages.append(_linear_stage(weights, batch, src=prev))
    return stages


def _linear_stage(weights: AlexNetWeights, batch: int, src: str) -> Stage:
    def linear_kernel(fn):
        def kernel(task):
            _per_image(
                batch,
                lambda x, out: fn(x, weights.fc_weights, weights.fc_bias,
                                  out),
                task[src], task["logits"],
            )
        return kernel

    return Stage(
        name="linear",
        work=linear_work_profile(FC_IN, CIFAR_CLASSES, batch=batch),
        kernels={CPU: linear_kernel(linear_cpu),
                 GPU: linear_kernel(linear_gpu)},
    )


def _sparse_stages(weights: AlexNetWeights, csr_layers: Tuple[CsrMatrix, ...],
                   batch: int) -> List[Stage]:
    stages: List[Stage] = []
    prev = "input"
    for layer, (spec, hw) in enumerate(CONV_LAYERS):
        csr, bias = csr_layers[layer], weights.conv_biases[layer]
        act, pool = f"act{layer + 1}", f"pool{layer + 1}"

        def conv_kernel(fn, src=prev, dst=act, csr=csr, bias=bias,
                        spec=spec):
            def kernel(task):
                _per_image(
                    batch,
                    lambda x, out: fn(x, csr, bias, out, spec),
                    task[src], task[dst],
                )
            return kernel

        stages.append(
            Stage(
                name=f"sparse-conv{layer + 1}",
                work=sparse_conv_work_profile(spec, hw, hw, nnz=csr.nnz,
                                              batch=batch),
                kernels={CPU: conv_kernel(sparse_conv2d_relu_cpu),
                         GPU: conv_kernel(sparse_conv2d_relu_gpu)},
            )
        )

        def pool_kernel(fn, src=act, dst=pool):
            def kernel(task):
                _per_image(batch, fn, task[src], task[dst])
            return kernel

        stages.append(
            Stage(
                name=f"pool{layer + 1}",
                work=maxpool_work_profile(spec.out_channels, hw, hw,
                                          batch=batch),
                kernels={CPU: pool_kernel(maxpool2x2_cpu),
                         GPU: pool_kernel(maxpool2x2_gpu)},
            )
        )
        prev = pool
    stages.append(_linear_stage(weights, batch, src=prev))
    return stages


def _make_task_factory(batch: int) -> Callable[[int], Dict[str, np.ndarray]]:
    plan = _buffer_plan(batch)

    def make_task(seed: int) -> Dict[str, np.ndarray]:
        task: Dict[str, np.ndarray] = {}
        for name, shape in plan:
            if name == "input":
                task[name] = (
                    cifar_like_batch(seed, batch)
                    if batch > 1 else cifar_like_image(seed)
                )
            else:
                task[name] = np.zeros(shape, dtype=np.float32)
        return task

    return make_task


def _validate_logits(task: Dict[str, np.ndarray]) -> None:
    logits = np.asarray(task["logits"])
    if not np.all(np.isfinite(logits)):
        raise ValueError("non-finite logits")


def build_alexnet_dense(weight_seed: int = _WEIGHT_SEED) -> Application:
    """The AlexNet-dense application: 9 stages, one image per task."""
    weights = make_weights(weight_seed)
    return Application(
        name="alexnet-dense",
        stages=_dense_stages(weights, batch=1),
        make_task=_make_task_factory(batch=1),
        validate_task=_validate_logits,
        description="Dense CNN image classification (regular dense "
                    "linear algebra)",
        input_kind="Image",
    )


def build_alexnet_sparse(
    sparsity: float = DEFAULT_SPARSITY,
    batch: int = DEFAULT_SPARSE_BATCH,
    weight_seed: int = _WEIGHT_SEED,
) -> Application:
    """The AlexNet-sparse application: CSR-pruned, ``batch`` images/task."""
    weights = make_weights(weight_seed)
    csr_layers = tuple(
        prune_to_csr(w, sparsity=sparsity) for w in weights.conv_weights
    )
    return Application(
        name="alexnet-sparse",
        stages=_sparse_stages(weights, csr_layers, batch=batch),
        make_task=_make_task_factory(batch=batch),
        validate_task=_validate_logits,
        description="Pruned (CSR) CNN image classification (irregular "
                    "sparse linear algebra)",
        input_kind="Image",
    )
