"""Unit tests for individual constraint propagation rules."""

import pytest

from repro.errors import ModellingError
from repro.solver import (
    UNASSIGNED,
    AtMostOne,
    Clause,
    ExactlyOne,
    LinearGE,
    LinearLE,
    Model,
    implication,
)


@pytest.fixture
def model():
    return Model()


def make_vars(model, n):
    return [model.new_bool(f"v{i}") for i in range(n)]


class TestClause:
    def test_satisfied_when_any_literal_true(self, model):
        a, b = make_vars(model, 2)
        clause = Clause([a, b])
        consistent, forced = clause.propagate([1, UNASSIGNED])
        assert consistent
        assert forced == []

    def test_unit_propagation_forces_last_literal(self, model):
        a, b = make_vars(model, 2)
        clause = Clause([a, b])
        consistent, forced = clause.propagate([0, UNASSIGNED])
        assert consistent
        assert forced == [(1, 1)]

    def test_conflict_when_all_false(self, model):
        a, b = make_vars(model, 2)
        clause = Clause([a, b])
        consistent, forced = clause.propagate([0, 0])
        assert not consistent

    def test_negated_literal_forced_to_zero(self, model):
        a, b = make_vars(model, 2)
        clause = Clause([a, ~b])
        consistent, forced = clause.propagate([0, UNASSIGNED])
        assert consistent
        assert forced == [(1, 0)]

    def test_empty_clause_rejected(self):
        with pytest.raises(ModellingError):
            Clause([])

    def test_satisfied_by_complete_assignment(self, model):
        a, b = make_vars(model, 2)
        clause = Clause([a, ~b])
        assert clause.satisfied_by([1, 1])
        assert clause.satisfied_by([0, 0])
        assert not clause.satisfied_by([0, 1])


class TestExactlyOne:
    def test_forces_rest_false_once_one_true(self, model):
        a, b, c = make_vars(model, 3)
        con = ExactlyOne([a, b, c])
        consistent, forced = con.propagate([1, UNASSIGNED, UNASSIGNED])
        assert consistent
        assert sorted(forced) == [(1, 0), (2, 0)]

    def test_forces_last_candidate_true(self, model):
        a, b, c = make_vars(model, 3)
        con = ExactlyOne([a, b, c])
        consistent, forced = con.propagate([0, 0, UNASSIGNED])
        assert consistent
        assert forced == [(2, 1)]

    def test_conflict_two_true(self, model):
        a, b, c = make_vars(model, 3)
        con = ExactlyOne([a, b, c])
        consistent, _ = con.propagate([1, 1, UNASSIGNED])
        assert not consistent

    def test_conflict_all_false(self, model):
        a, b = make_vars(model, 2)
        con = ExactlyOne([a, b])
        consistent, _ = con.propagate([0, 0])
        assert not consistent

    def test_satisfied_by(self, model):
        a, b = make_vars(model, 2)
        con = ExactlyOne([a, b])
        assert con.satisfied_by([1, 0])
        assert not con.satisfied_by([1, 1])
        assert not con.satisfied_by([0, 0])


class TestAtMostOne:
    def test_no_force_when_all_unassigned(self, model):
        a, b = make_vars(model, 2)
        con = AtMostOne([a, b])
        consistent, forced = con.propagate([UNASSIGNED, UNASSIGNED])
        assert consistent
        assert forced == []

    def test_all_false_is_fine(self, model):
        a, b = make_vars(model, 2)
        con = AtMostOne([a, b])
        assert con.satisfied_by([0, 0])

    def test_conflict_two_true(self, model):
        a, b = make_vars(model, 2)
        con = AtMostOne([a, b])
        consistent, _ = con.propagate([1, 1])
        assert not consistent


class TestLinearLE:
    def test_exceeding_bound_is_conflict(self, model):
        a, b = make_vars(model, 2)
        con = LinearLE([(a, 3.0), (b, 4.0)], bound=5.0)
        consistent, _ = con.propagate([1, 1])
        assert not consistent

    def test_forces_heavy_pending_literal_false(self, model):
        a, b = make_vars(model, 2)
        con = LinearLE([(a, 3.0), (b, 4.0)], bound=5.0)
        consistent, forced = con.propagate([1, UNASSIGNED])
        assert consistent
        assert forced == [(1, 0)]

    def test_negative_weight_rejected(self, model):
        a = model.new_bool("a")
        with pytest.raises(ModellingError):
            LinearLE([(a, -1.0)], bound=0.0)

    def test_boundary_exact_bound_ok(self, model):
        a, b = make_vars(model, 2)
        con = LinearLE([(a, 2.0), (b, 3.0)], bound=5.0)
        assert con.satisfied_by([1, 1])


class TestLinearGE:
    def test_conflict_when_unreachable(self, model):
        a, b = make_vars(model, 2)
        con = LinearGE([(a, 1.0), (b, 1.0)], bound=2.0)
        consistent, _ = con.propagate([0, UNASSIGNED])
        assert not consistent

    def test_forces_needed_literal_true(self, model):
        a, b, c = make_vars(model, 3)
        con = LinearGE([(a, 1.0), (b, 2.0), (c, 1.0)], bound=3.0)
        # With a false, need b and c both true.
        consistent, forced = con.propagate([0, UNASSIGNED, UNASSIGNED])
        assert consistent
        assert sorted(forced) == [(1, 1), (2, 1)]

    def test_satisfied_by(self, model):
        a, b = make_vars(model, 2)
        con = LinearGE([(a, 1.0), (b, 2.0)], bound=2.0)
        assert con.satisfied_by([0, 1])
        assert not con.satisfied_by([1, 0])


class TestImplication:
    def test_compiles_to_clause(self, model):
        a, b, c = make_vars(model, 3)
        clause = implication([a, b], c)
        # a & b true forces c true
        consistent, forced = clause.propagate([1, 1, UNASSIGNED])
        assert consistent
        assert forced == [(2, 1)]

    def test_vacuous_when_antecedent_false(self, model):
        a, b, c = make_vars(model, 3)
        clause = implication([a, b], c)
        assert clause.satisfied_by([0, 1, 0])
