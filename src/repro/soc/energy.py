"""Energy accounting for the virtual SoC (extension beyond the paper).

The paper motivates edge processing with *reduced energy consumption*
(section 1) but never measures it.  This module closes that gap for the
reproduction: a simple activity-based power model per PU class turns the
discrete-event simulator's busy/idle accounting into per-run energy, and
enables energy-aware schedule comparison (see
``benchmarks/ablations/test_energy_ablation.py``).

Model: while a PU executes, it draws ``active_w``; otherwise ``idle_w``.
Values are calibrated to public platform TDPs (the Jetson's 7 W / 25 W
modes anchor the scale; phone SoCs sustain a few watts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import PlatformError

#: Default per-class power draws (watts) by platform family.  Keyed by
#: platform name; ``default`` covers unknown/custom platforms.
_POWER_TABLES: Dict[str, Dict[str, "PowerSpec"]] = {}


@dataclass(frozen=True)
class PowerSpec:
    """Active/idle power draw of one PU class."""

    active_w: float
    idle_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.active_w < self.idle_w:
            raise PlatformError(
                f"need 0 <= idle ({self.idle_w}) <= active "
                f"({self.active_w})"
            )


def _register(platform: str, table: Mapping[str, PowerSpec]) -> None:
    _POWER_TABLES[platform] = dict(table)


_register("pixel7a", {
    "big": PowerSpec(active_w=3.2, idle_w=0.15),
    "medium": PowerSpec(active_w=1.6, idle_w=0.10),
    "little": PowerSpec(active_w=0.8, idle_w=0.05),
    "gpu": PowerSpec(active_w=3.5, idle_w=0.20),
})
_register("oneplus11", {
    "big": PowerSpec(active_w=3.8, idle_w=0.15),
    "medium": PowerSpec(active_w=2.6, idle_w=0.12),
    "little": PowerSpec(active_w=0.7, idle_w=0.05),
    "gpu": PowerSpec(active_w=4.5, idle_w=0.25),
})
_register("jetson_orin_nano", {
    "big": PowerSpec(active_w=7.5, idle_w=0.60),
    "gpu": PowerSpec(active_w=12.0, idle_w=1.00),
})
_register("jetson_orin_nano_lp", {
    "big": PowerSpec(active_w=2.4, idle_w=0.40),
    "gpu": PowerSpec(active_w=3.6, idle_w=0.60),
})
_register("default", {
    "big": PowerSpec(active_w=3.0, idle_w=0.15),
    "medium": PowerSpec(active_w=1.5, idle_w=0.10),
    "little": PowerSpec(active_w=0.7, idle_w=0.05),
    "gpu": PowerSpec(active_w=4.0, idle_w=0.25),
})


def power_table(platform_name: str) -> Dict[str, PowerSpec]:
    """The per-class power specs for a platform (falls back to defaults)."""
    return dict(_POWER_TABLES.get(platform_name, _POWER_TABLES["default"]))


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one simulated pipeline run.

    Attributes:
        per_pu_j: Joules drawn per PU class over the whole run (active +
            idle portions; idle PUs of the platform still leak).
        total_j: Sum over PU classes.
        per_task_j: Total energy divided by the tasks completed.
    """

    per_pu_j: Mapping[str, float]
    total_j: float
    per_task_j: float


def estimate_energy(result, platform) -> EnergyReport:
    """Energy of a :class:`~repro.runtime.simulator.SimulatedRunResult`.

    Each chunk's PU draws active power for its busy seconds and idle
    power for the rest of the run; platform PUs not used by the schedule
    contribute idle power for the full duration (they exist and leak
    whether scheduled or not - relevant when comparing schedules that
    use different PU subsets).
    """
    specs = power_table(platform.name)
    duration = result.total_s
    busy_by_pu: Dict[str, float] = {}
    for index, pu_class in result.chunk_pu.items():
        busy_by_pu[pu_class] = (
            busy_by_pu.get(pu_class, 0.0) + result.chunk_busy_s[index]
        )
    per_pu: Dict[str, float] = {}
    for pu_class in platform.pu_classes():
        spec = specs.get(pu_class)
        if spec is None:
            raise PlatformError(
                f"no power spec for PU class {pu_class!r} on "
                f"{platform.name}"
            )
        busy = min(busy_by_pu.get(pu_class, 0.0), duration)
        per_pu[pu_class] = (
            spec.active_w * busy + spec.idle_w * (duration - busy)
        )
    total = sum(per_pu.values())
    return EnergyReport(
        per_pu_j=per_pu,
        total_j=total,
        per_task_j=total / max(result.n_tasks, 1),
    )
