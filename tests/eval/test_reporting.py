"""Smoke test for the all-artifacts report generator."""

import pytest

from repro.eval.experiments import ExperimentScale
from repro.eval.reporting import generate_report


@pytest.fixture(scope="module")
def tiny_scale():
    """Far below quick scale: just enough to exercise every driver."""
    return ExperimentScale(
        n_points=5_000, sparse_batch=8, k=4, repetitions=2, eval_tasks=6
    )


def test_generate_report_covers_every_artifact(tiny_scale):
    lines = []
    report = generate_report(scale=tiny_scale, progress=lines.append)
    # Every experiment announced progress (including its timing, which
    # must stay out of the report body) and produced a section.
    for name in ("table1", "table2", "fig1", "table3", "fig4", "fig5",
                 "fig6", "table4", "fig7"):
        assert any(name in line for line in lines), name
        assert any(line.startswith(f"{name} done in")
                   for line in lines), name
        assert f"[{name}]" in report
    # No wall-clock timing leaks into the deterministic report text.
    assert "done in" not in report
    # The headline artifacts render their key content.
    assert "winners matching paper" in report
    assert "geomean" in report
    assert "correlation heatmap" in report
    assert "interference-heavy / isolated" in report


def test_progress_callback_optional(tiny_scale):
    report = generate_report(scale=tiny_scale)
    assert "Table 1" in report
