"""Shared machinery for the per-figure/table experiment drivers.

Every experiment module exposes ``run_*`` (returns structured data) and
``format_*`` (renders the paper-style table/figure series as text).  The
benchmarks under ``benchmarks/`` and the EXPERIMENTS.md generator both
call these, so the numbers in the docs and the numbers in the bench
output come from one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import (
    build_alexnet_dense,
    build_alexnet_sparse,
    build_octree_application,
)
from repro.core.autotuner import Autotuner
from repro.core.optimizer import OptimizationResult, ScheduleCandidate
from repro.core.stage import Application
from repro.soc import PLATFORM_NAMES, Platform, get_platform

#: Paper display names, in evaluation order.
PLATFORM_LABELS: Dict[str, str] = {
    "pixel7a": "Google",
    "oneplus11": "OnePlus",
    "jetson_orin_nano": "Jetson",
    "jetson_orin_nano_lp": "Jetson (LP)",
}

#: Paper's short workload labels (Fig. 6 rows).
APP_LABELS: Dict[str, str] = {
    "alexnet-dense": "CIFAR-D",
    "alexnet-sparse": "CIFAR-S",
    "octree": "Tree",
}

APP_ORDER = ("alexnet-dense", "alexnet-sparse", "octree")


@dataclass
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    ``paper()`` reproduces the full configuration; ``quick()`` shrinks
    inputs and candidate counts for CI-speed smoke runs.
    """

    n_points: int = 100_000
    sparse_batch: int = 128
    k: int = 20
    repetitions: int = 30
    eval_tasks: int = 30

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentScale":
        return cls(n_points=20_000, sparse_batch=32, k=8, repetitions=5,
                   eval_tasks=12)


def build_applications(scale: ExperimentScale) -> Dict[str, Application]:
    """The three evaluated applications at a given scale, paper order."""
    return {
        "alexnet-dense": build_alexnet_dense(),
        "alexnet-sparse": build_alexnet_sparse(batch=scale.sparse_batch),
        "octree": build_octree_application(n_points=scale.n_points),
    }


def evaluation_platforms(seed: int = 2025) -> List[Platform]:
    return [get_platform(name, seed) for name in PLATFORM_NAMES]


def measure_candidates(
    application: Application,
    platform: Platform,
    optimization: "OptimizationResult | Sequence[ScheduleCandidate]",
    eval_tasks: int,
    top: Optional[int] = None,
) -> Tuple[List[float], List[float]]:
    """(predicted, measured) latency pairs for candidates, in rank order."""
    tuner = Autotuner(application, platform, eval_tasks=eval_tasks)
    result = tuner.tune(optimization, top=top)
    predicted = [e.predicted_latency_s for e in result.entries]
    measured = [e.measured_latency_s for e in result.entries]
    return predicted, measured
