"""Health classification and the admission circuit breaker.

Everything here runs on the logical tick clock: state transitions are
driven by heartbeat *counts* and window latency ratios, never wall
time, so these tests feed the monitor synthetic beats directly.
"""

import pytest

from repro.errors import FleetError
from repro.fleet.health import (
    CLOSED,
    DEAD,
    DEGRADED,
    HALF_OPEN,
    HEALTHY,
    OPEN,
    RECOVERING,
    SHARD_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
)


@pytest.fixture
def monitor():
    monitor = HealthMonitor(HealthConfig(
        miss_degraded=2, miss_dead=4, slo_factor=2.0,
        slo_breach_ticks=3,
    ))
    monitor.register("s")
    return monitor


class TestHeartbeatClassification:
    def test_beating_shard_stays_healthy(self, monitor):
        for tick in range(1, 6):
            assert monitor.assess("s", beats=tick, crashed=False) is None
        assert monitor.state("s") == HEALTHY

    def test_gray_failure_degrades_then_dies(self, monitor):
        # The gray pattern: beats freeze while the shard keeps serving.
        monitor.assess("s", beats=5, crashed=False)
        assert monitor.assess("s", beats=5, crashed=False) is None
        transition = monitor.assess("s", beats=5, crashed=False)
        assert transition == (HEALTHY, DEGRADED)
        assert monitor.assess("s", beats=5, crashed=False) is None
        transition = monitor.assess("s", beats=5, crashed=False)
        assert transition == (DEGRADED, DEAD)

    def test_crash_is_immediately_dead(self, monitor):
        assert (monitor.assess("s", beats=1, crashed=True)
                == (HEALTHY, DEAD))

    def test_dead_shard_recovers_only_on_beats(self, monitor):
        monitor.assess("s", beats=1, crashed=True)
        # Still crashed, still dead.
        assert monitor.assess("s", beats=1, crashed=True) is None
        # Alive again but not yet beating: stays dead.
        assert monitor.assess("s", beats=1, crashed=False) is None
        # Beats resume -> recovering, which then holds until the
        # breaker closes (an external set_state).
        assert (monitor.assess("s", beats=2, crashed=False)
                == (DEAD, RECOVERING))
        assert monitor.assess("s", beats=3, crashed=False) is None
        assert monitor.state("s") == RECOVERING
        monitor.set_state("s", HEALTHY)
        assert monitor.state("s") == HEALTHY

    def test_missed_beats_reset_on_resumption(self, monitor):
        monitor.assess("s", beats=1, crashed=False)
        monitor.assess("s", beats=1, crashed=False)  # miss 1
        monitor.assess("s", beats=2, crashed=False)  # beat again
        # The degraded counter restarted; one more miss is not enough.
        assert monitor.assess("s", beats=2, crashed=False) is None
        assert monitor.state("s") == HEALTHY


class TestRelativeSlo:
    def test_first_window_sets_the_baseline(self, monitor):
        assert monitor.note_window("s", "t", 0.010) == 1.0
        assert monitor.note_window("s", "t", 0.025) == pytest.approx(2.5)

    def test_sustained_breach_flags_the_shard(self, monitor):
        monitor.note_window("s", "t", 0.010)
        monitor.assess("s", beats=1, crashed=False)
        for tick in range(2, 5):
            monitor.note_window("s", "t", 0.030)  # 3x baseline
            monitor.assess("s", beats=tick, crashed=False)
        assert monitor.slo_breached("s")
        assert monitor.state("s") == DEGRADED

    def test_single_spike_is_forgiven(self, monitor):
        monitor.note_window("s", "t", 0.010)
        monitor.assess("s", beats=1, crashed=False)
        monitor.note_window("s", "t", 0.030)
        monitor.assess("s", beats=2, crashed=False)
        monitor.note_window("s", "t", 0.011)  # back to normal
        monitor.assess("s", beats=3, crashed=False)
        assert not monitor.slo_breached("s")

    def test_streak_holds_when_no_windows_serve(self, monitor):
        monitor.note_window("s", "t", 0.010)
        monitor.assess("s", beats=1, crashed=False)
        for tick in range(2, 5):
            monitor.note_window("s", "t", 0.030)
            monitor.assess("s", beats=tick, crashed=False)
        # Serving nothing must not launder the breach away.
        monitor.assess("s", beats=5, crashed=False)
        assert monitor.slo_breached("s")
        monitor.reset_slo("s")
        assert not monitor.slo_breached("s")

    def test_forget_tenant_drops_the_baseline(self, monitor):
        monitor.note_window("s", "t", 0.010)
        monitor.forget_tenant("s", "t")
        # Re-noting starts a fresh baseline, ratio 1.0 again.
        assert monitor.note_window("s", "t", 0.030) == 1.0


class TestMonitorRegistry:
    def test_unknown_shard_rejected(self, monitor):
        with pytest.raises(FleetError, match="unknown shard"):
            monitor.state("ghost")

    def test_duplicate_registration_rejected(self, monitor):
        with pytest.raises(FleetError, match="already registered"):
            monitor.register("s")

    def test_unknown_state_rejected(self, monitor):
        with pytest.raises(FleetError, match="unknown shard state"):
            monitor.set_state("s", "zombie")

    def test_state_codes_cover_all_states(self):
        assert set(SHARD_STATE_CODES) == {
            HEALTHY, DEGRADED, RECOVERING, DEAD,
        }


class TestCircuitBreaker:
    CONFIG = BreakerConfig(cooldown_ticks=3, probe_probability=1.0,
                           probe_ticks=2)

    def test_full_cycle_closed_open_half_open_closed(self):
        breaker = CircuitBreaker("s", self.CONFIG, seed=1)
        assert breaker.state == CLOSED
        assert breaker.allows_placement()
        assert breaker.trip(tick=5) == (CLOSED, OPEN)
        assert not breaker.allows_placement()
        # Cooldown not elapsed: stays open even while beating.
        assert breaker.advance(tick=6, beating=True) is None
        assert breaker.advance(tick=7, beating=True) is None
        assert breaker.advance(tick=8, beating=True) == (OPEN, HALF_OPEN)
        # probe_probability=1.0: every half-open tick is a probe window.
        assert breaker.allows_placement()
        # probe_ticks=2: one healthy tick is not enough to close.
        assert breaker.advance(tick=9, beating=True) is None
        assert breaker.advance(tick=10, beating=True) == (HALF_OPEN,
                                                          CLOSED)
        assert breaker.allows_placement()
        assert breaker.transitions == 3

    def test_open_waits_for_beats_not_just_cooldown(self):
        breaker = CircuitBreaker("s", self.CONFIG, seed=1)
        breaker.trip(tick=0)
        for tick in range(1, 8):
            assert breaker.advance(tick, beating=False) is None
        assert breaker.state == OPEN

    def test_half_open_relapse_reopens_and_rearms_cooldown(self):
        breaker = CircuitBreaker("s", self.CONFIG, seed=1)
        breaker.trip(tick=0)
        assert breaker.advance(3, beating=True) == (OPEN, HALF_OPEN)
        assert breaker.advance(4, beating=False) == (HALF_OPEN, OPEN)
        # The cooldown restarted at the relapse tick.
        assert breaker.advance(5, beating=True) is None
        assert breaker.advance(6, beating=True) is None
        assert breaker.advance(7, beating=True) == (OPEN, HALF_OPEN)

    def test_double_trip_is_idempotent(self):
        breaker = CircuitBreaker("s", self.CONFIG, seed=1)
        assert breaker.trip(0) == (CLOSED, OPEN)
        assert breaker.trip(1) is None
        assert breaker.transitions == 1

    def test_probe_windows_are_seeded_and_deterministic(self):
        config = BreakerConfig(cooldown_ticks=1,
                               probe_probability=0.5, probe_ticks=8)
        def windows(seed):
            breaker = CircuitBreaker("s", config, seed=seed)
            breaker.trip(0)
            breaker.advance(1, beating=True)  # -> half-open
            out = [breaker.allows_placement()]
            for tick in range(2, 8):
                if breaker.advance(tick, beating=True) is not None:
                    break
                out.append(breaker.allows_placement())
            return out

        assert windows(seed=11) == windows(seed=11)
        # Some seed pair must disagree somewhere; fixed seeds chosen so
        # this stays a real assertion, not a coin flip.
        assert windows(seed=11) != windows(seed=17)
