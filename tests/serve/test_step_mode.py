"""Step mode: the externally-clocked server surface the fleet drives.

In step mode the server never spawns its loop thread - the caller owns
the clock - so these tests run every tick inline and can observe each
admission, withdrawal, and rollback synchronously.
"""

import pytest

from repro.errors import ServeError
from repro.serve.admission import ADMIT
from repro.serve.server import PipelineServer, ServerConfig
from repro.serve.tenant import (
    COMPLETED,
    EVICTED,
    FAILED,
    RUNNING,
    TenantSpec,
)

CONFIG = ServerConfig(max_ticks=64, queue_capacity=0)


@pytest.fixture
def server(platform, plan_cache):
    server = PipelineServer(platform, seed=5, config=CONFIG,
                            plan_cache=plan_cache)
    server.open_stepped()
    return server


def _spec(app, name="t", **kwargs):
    kwargs.setdefault("windows", 2)
    kwargs.setdefault("window_tasks", 4)
    return TenantSpec(name=name, application=app, **kwargs)


class TestLifecycle:
    def test_admit_step_complete(self, server, app):
        decision = server.try_admit(_spec(app), tick=0)
        assert decision.action == ADMIT
        record = server.records["t"]
        assert record.status == RUNNING
        drained = server.step(0)
        assert not drained
        assert server.step(1)
        assert record.status == COMPLETED
        assert record.windows_done == 2
        report = server.close_stepped()
        events = [e["event"] for e in report.timeline
                  if e["tenant"] == "t"]
        assert events == ["admit", "window", "window", "complete"]

    def test_close_detail_fails_live_tenants(self, server, app):
        server.try_admit(_spec(app, windows=30), tick=0)
        server.step(0)
        report = server.close_stepped("shard crashed at tick 1")
        assert report.tenants["t"].status == FAILED
        assert (server.records["t"].status_detail
                == "shard crashed at tick 1")

    def test_step_mode_never_spawns_the_loop_thread(self, server):
        assert server._thread is None


class TestGuards:
    def test_step_requires_open(self, platform, plan_cache):
        server = PipelineServer(platform, config=CONFIG,
                                plan_cache=plan_cache)
        with pytest.raises(ServeError, match="open_stepped"):
            server.step(0)
        with pytest.raises(ServeError, match="open_stepped"):
            server.close_stepped()

    def test_try_admit_requires_open(self, platform, plan_cache, app):
        server = PipelineServer(platform, config=CONFIG,
                                plan_cache=plan_cache)
        with pytest.raises(ServeError, match="open_stepped"):
            server.try_admit(_spec(app), tick=0)
        with pytest.raises(ServeError, match="open_stepped"):
            server.withdraw("t", "nope", tick=0)
        with pytest.raises(ServeError, match="open_stepped"):
            server.rescind("t")

    def test_open_after_start_rejected(self, server):
        with pytest.raises(ServeError, match="already started"):
            server.open_stepped()
        server.close_stepped()

    def test_duplicate_name_rejected_within_a_generation(
        self, server, app
    ):
        server.try_admit(_spec(app), tick=0)
        with pytest.raises(ServeError, match="already known"):
            server.try_admit(_spec(app), tick=1)


class TestWithdraw:
    def test_withdraw_releases_the_partition(self, server, app):
        server.try_admit(_spec(app, windows=10), tick=0)
        server.step(0)
        record = server.withdraw("t", "fleet failover", tick=1)
        assert record.status == EVICTED
        assert record.status_detail == "fleet failover"
        assert "t" not in server.placement.partitions
        assert server.running_records() == {}
        # The name stays burned for this generation.
        assert server.knows_tenant("t")

    def test_withdraw_unknown_tenant_rejected(self, server):
        with pytest.raises(ServeError, match="not a live tenant"):
            server.withdraw("ghost", "nope", tick=0)

    def test_withdraw_completed_tenant_rejected(self, server, app):
        server.try_admit(_spec(app), tick=0)
        server.step(0)
        server.step(1)
        with pytest.raises(ServeError, match="not a live tenant"):
            server.withdraw("t", "too late", tick=2)


class TestRescind:
    def test_rescind_erases_the_admission(self, server, app):
        server.try_admit(_spec(app), tick=0)
        server.rescind("t")
        assert "t" not in server.records
        assert "t" not in server.placement.partitions
        assert not server.knows_tenant("t")
        # Unlike withdraw, rescind frees the name for reuse: the fleet
        # retries smaller failover batches against the same shard.
        decision = server.try_admit(_spec(app), tick=0)
        assert decision.action == ADMIT

    def test_rescind_unknown_tenant_rejected(self, server):
        with pytest.raises(ServeError, match="unknown tenant"):
            server.rescind("ghost")
