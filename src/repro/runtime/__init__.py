"""BT-Implementer runtime (paper section 3.4).

Two interchangeable back-ends execute pipeline schedules:

* :class:`ThreadedPipelineExecutor` - real dispatcher threads, SPSC
  queues, and compute kernels; validates functional correctness.
* :class:`SimulatedPipelineExecutor` - rate-based discrete-event
  simulation on the virtual SoC; produces all performance measurements,
  with interference emerging from the instantaneous co-run state.

Shared infrastructure: unified-memory buffers (:class:`UsmBuffer`),
recyclable :class:`TaskObject` containers, and the :class:`SpscQueue`
dispatchers communicate through.  A deterministic fault-injection layer
(:mod:`repro.runtime.faults`) plugs into both back-ends to exercise the
recovery machinery: retry with backoff, per-task quarantine, and
PU-dropout fallback via :class:`AdaptivePipeline`.
"""

from repro.runtime.adaptive import AdaptivePipeline, WindowRecord
from repro.runtime.faults import (
    FAILURE_FATAL,
    FAILURE_TRANSIENT,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultReport,
    KernelFaultSpec,
    PuDropoutSpec,
    RetryPolicy,
    SlowdownSpec,
    TaskFailure,
    classify_failure,
)
from repro.runtime.memory import (
    MemoryReport,
    estimate_pipeline_memory,
    max_depth_within,
)
from repro.runtime.pipeline import ThreadedPipelineExecutor, ThreadedRunResult
from repro.runtime.simulator import (
    ENGINE_ENV,
    ENGINE_REFERENCE,
    ENGINE_VECTOR,
    SimBatchOutcome,
    SimWindow,
    SimulatedPipelineExecutor,
    SimulatedRunResult,
    simulate_batch,
)
from repro.runtime.spsc import SpscQueue
from repro.runtime.trace import (Span, format_gantt,
                                pipeline_bubbles, record_span)
from repro.runtime.task_object import TaskObject
from repro.runtime.usm import UsmBuffer
from repro.runtime.watchdog import (
    Heartbeat,
    Watchdog,
    WatchdogConfig,
    supervised_thread,
)

__all__ = [
    "AdaptivePipeline",
    "ENGINE_ENV",
    "ENGINE_REFERENCE",
    "ENGINE_VECTOR",
    "FAILURE_FATAL",
    "FAILURE_TRANSIENT",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "Heartbeat",
    "KernelFaultSpec",
    "MemoryReport",
    "PuDropoutSpec",
    "RetryPolicy",
    "SimBatchOutcome",
    "SimWindow",
    "SimulatedPipelineExecutor",
    "SimulatedRunResult",
    "SlowdownSpec",
    "Span",
    "SpscQueue",
    "TaskFailure",
    "TaskObject",
    "ThreadedPipelineExecutor",
    "ThreadedRunResult",
    "UsmBuffer",
    "Watchdog",
    "WatchdogConfig",
    "WindowRecord",
    "classify_failure",
    "estimate_pipeline_memory",
    "format_gantt",
    "max_depth_within",
    "pipeline_bubbles",
    "record_span",
    "simulate_batch",
    "supervised_thread",
]
