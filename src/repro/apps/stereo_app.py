"""The Stereo-depth application (extension workload).

Six stages: rectify, census, cost volume, aggregate, WTA, median - the
kind of edge perception pipeline the paper's introduction motivates.
Inputs are synthetic stereo pairs with *known* ground-truth disparity
(the right image is the left shifted by a plane-plus-steps disparity
field), which gives the functional validator something real to check:
the recovered disparity must match the ground truth over most of the
frame.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.stage import Application, Stage
from repro.errors import KernelError
from repro.kernels.base import CPU, GPU
from repro.kernels.stereo import (
    aggregate_cpu,
    aggregate_gpu,
    aggregate_work_profile,
    census_cpu,
    census_gpu,
    census_work_profile,
    cost_volume_cpu,
    cost_volume_gpu,
    cost_volume_work_profile,
    median3x3_cpu,
    median3x3_gpu,
    median_work_profile,
    rectify_cpu,
    rectify_gpu,
    rectify_work_profile,
    wta_cpu,
    wta_gpu,
    wta_work_profile,
)

#: Default frame geometry (a QVGA-ish stereo head).
DEFAULT_H, DEFAULT_W = 120, 160
DEFAULT_MAX_DISPARITY = 32


def synthetic_stereo_pair(seed: int, h: int, w: int,
                          max_disparity: int):
    """A textured left image, a disparity plane with a step, and the
    corresponding right image (left warped by the disparity)."""
    rng = np.random.default_rng(300_000 + seed)
    # Rich texture so census matching is well-posed.
    texture = rng.random((h, w + max_disparity)).astype(np.float32)
    for _ in range(2):  # cheap smoothing for spatial correlation
        texture[:, 1:] = 0.6 * texture[:, 1:] + 0.4 * texture[:, :-1]
        texture[1:, :] = 0.6 * texture[1:, :] + 0.4 * texture[:-1, :]
    texture += 0.08 * rng.random((h, w + max_disparity)).astype(np.float32)

    # Ground truth: a fronto-parallel background plus a nearer box.
    truth = np.full((h, w), max_disparity // 4, dtype=np.int32)
    truth[h // 4 : 3 * h // 4, w // 4 : 3 * w // 4] = max_disparity // 2

    # Sample both views from the shared texture so that a left pixel at
    # column c matches the right pixel at column c - truth[r, c]:
    #   left[r, c]  = T[r, M + c]
    #   right[r, x] = T[r, M + x + d(x)]  with d taken from the (mostly
    # piecewise-constant) truth field - exact except within a few
    # columns of the box boundary, which the validator tolerates.
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    left = texture[:, max_disparity : max_disparity + w].copy()
    right_source = np.clip(
        max_disparity + cols + truth, 0, texture.shape[1] - 1
    )
    right = texture[rows, right_source].astype(np.float32)
    return left, right, truth


def build_stereo_application(
    h: int = DEFAULT_H,
    w: int = DEFAULT_W,
    max_disparity: int = DEFAULT_MAX_DISPARITY,
) -> Application:
    """Construct the 6-stage stereo-depth application."""
    if h < 16 or w <= max_disparity:
        raise KernelError("frame too small for the disparity range")

    stages = [
        Stage("rectify", rectify_work_profile(h, w), {
            CPU: lambda t: rectify_cpu(
                t["left"], t["right"], t["left_rect"], t["right_rect"],
                shear=0.0),
            GPU: lambda t: rectify_gpu(
                t["left"], t["right"], t["left_rect"], t["right_rect"],
                shear=0.0),
        }),
        Stage("census", census_work_profile(h, w), {
            CPU: lambda t: census_cpu(
                t["left_rect"], t["right_rect"],
                t["left_census"], t["right_census"]),
            GPU: lambda t: census_gpu(
                t["left_rect"], t["right_rect"],
                t["left_census"], t["right_census"]),
        }),
        Stage("cost-volume", cost_volume_work_profile(h, w, max_disparity), {
            CPU: lambda t: cost_volume_cpu(
                t["left_census"], t["right_census"], t["cost"],
                max_disparity),
            GPU: lambda t: cost_volume_gpu(
                t["left_census"], t["right_census"], t["cost"],
                max_disparity),
        }),
        Stage("aggregate", aggregate_work_profile(h, w, max_disparity), {
            CPU: lambda t: aggregate_cpu(t["cost"], t["aggregated"]),
            GPU: lambda t: aggregate_gpu(t["cost"], t["aggregated"]),
        }),
        Stage("wta", wta_work_profile(h, w, max_disparity), {
            CPU: lambda t: wta_cpu(t["aggregated"], t["disparity"]),
            GPU: lambda t: wta_gpu(t["aggregated"], t["disparity"]),
        }),
        Stage("median", median_work_profile(h, w), {
            CPU: lambda t: median3x3_cpu(t["disparity"], t["cleaned"]),
            GPU: lambda t: median3x3_gpu(t["disparity"], t["cleaned"]),
        }),
    ]

    def make_task(seed: int) -> Dict[str, np.ndarray]:
        left, right, truth = synthetic_stereo_pair(seed, h, w,
                                                   max_disparity)
        return {
            "left": left,
            "right": right,
            "truth": truth,
            "left_rect": np.zeros((h, w), dtype=np.float32),
            "right_rect": np.zeros((h, w), dtype=np.float32),
            "left_census": np.zeros((h, w), dtype=np.uint32),
            "right_census": np.zeros((h, w), dtype=np.uint32),
            "cost": np.zeros((max_disparity, h, w), dtype=np.uint8),
            "aggregated": np.zeros((max_disparity, h, w),
                                   dtype=np.float32),
            "disparity": np.zeros((h, w), dtype=np.int32),
            "cleaned": np.zeros((h, w), dtype=np.int32),
        }

    def validate_task(task) -> None:
        cleaned = np.asarray(task["cleaned"])
        truth = np.asarray(task["truth"])
        # Ignore the left occlusion band (no match exists there).
        valid = np.zeros_like(truth, dtype=bool)
        valid[:, max_disparity:] = True
        close = np.abs(cleaned - truth) <= 1
        accuracy = float(close[valid].mean())
        if accuracy < 0.8:
            raise ValueError(
                f"stereo accuracy {accuracy:.2f} below 0.8 - pipeline "
                "corrupted"
            )

    return Application(
        name="stereo-depth",
        stages=stages,
        make_task=make_task,
        validate_task=validate_task,
        description="Census-based local stereo matching (dense compute "
                    "+ bandwidth-heavy aggregation)",
        input_kind="Stereo pair",
    )
