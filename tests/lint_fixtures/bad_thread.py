"""Lint fixture (never imported): UNSUPERVISED-THREAD violation."""

import threading


def spawn(fn):
    worker = threading.Thread(target=fn)
    worker.start()
    return worker
