"""Blame decomposition: unit behaviour and the conservation property.

The acceptance bar for attribution is *conservation*: for every
simulated window, the per-(co-tenant, resource) blame shares plus the
model residual must sum exactly to the measured excess slowdown
(``slowdown - 1``), across seeds and both simulator engines - that is
what makes the BlameMatrix an attribution rather than a heuristic.
"""

import pytest

from repro.apps.synthetic import build_synthetic_application
from repro.obs.attribution import (
    BANDWIDTH,
    COMPUTE,
    BlameMatrix,
    BlameShare,
    ChunkLoad,
    decompose,
    steady_interval,
    top_offenders,
)
from repro.serve import PipelineServer, ServerConfig, TenantSpec
from repro.soc import get_platform
from repro.soc.interference import ExternalLoad

SEEDS = (3, 7, 11)
ENGINES = ("vector", "reference")


@pytest.fixture(scope="module")
def platform():
    return get_platform("pixel7a")


def _chunks():
    # A two-chunk pipeline shape: one compute-lean, one memory-heavy.
    return (
        ChunkLoad(pu_class="big", overhead_s=1e-4, work_s=2e-3,
                  memory_boundedness=0.2, demand_gbps=1.5),
        ChunkLoad(pu_class="gpu", overhead_s=2e-4, work_s=3e-3,
                  memory_boundedness=0.7, demand_gbps=4.0),
    )


def _load(busy=None, demand=0.0):
    return ExternalLoad(busy=dict(busy or {}), demand_gbps=demand)


class TestSteadyInterval:
    def test_no_external_load_is_the_isolated_interval(self, platform):
        isolated = steady_interval(_chunks(), platform,
                                   ExternalLoad.none())
        assert isolated > 0.0

    def test_external_load_slows_the_interval(self, platform):
        isolated = steady_interval(_chunks(), platform,
                                   ExternalLoad.none())
        loaded = steady_interval(
            _chunks(), platform,
            _load(busy={"big": 1, "gpu": 1}, demand=8.0),
        )
        assert loaded > isolated

    def test_interval_is_deterministic(self, platform):
        load = _load(busy={"big": 0.8}, demand=6.0)
        assert (steady_interval(_chunks(), platform, load)
                == steady_interval(_chunks(), platform, load))


class TestDecompose:
    def test_shares_plus_residual_equal_excess(self, platform):
        sources = [
            ("tenant-a", _load(busy={"big": 1}, demand=2.0)),
            ("tenant-b", _load(busy={"gpu": 1}, demand=3.0)),
        ]
        blame = decompose(
            tenant="victim", window_index=0, slowdown=1.4,
            chunks=_chunks(), platform=platform, sources=sources,
        )
        assert isinstance(blame, BlameMatrix)
        total = sum(s.share for s in blame.shares) + blame.residual
        assert total == pytest.approx(0.4, abs=1e-12)

    def test_no_excess_means_no_shares(self, platform):
        sources = [("tenant-a", _load(busy={"big": 1}))]
        blame = decompose(
            tenant="victim", window_index=0, slowdown=1.0,
            chunks=_chunks(), platform=platform, sources=sources,
        )
        assert blame.shares == ()
        assert blame.residual == pytest.approx(0.0)

    def test_no_sources_puts_everything_in_residual(self, platform):
        blame = decompose(
            tenant="victim", window_index=2, slowdown=1.3,
            chunks=_chunks(), platform=platform, sources=[],
        )
        assert blame.shares == ()
        assert blame.residual == pytest.approx(0.3)

    def test_bandwidth_only_source_blamed_on_bandwidth(self, platform):
        sources = [("streamer", _load(demand=12.0))]
        blame = decompose(
            tenant="victim", window_index=0, slowdown=1.5,
            chunks=_chunks(), platform=platform, sources=sources,
        )
        resources = {s.resource for s in blame.shares}
        assert resources <= {BANDWIDTH}

    def test_to_dict_is_stable(self, platform):
        sources = [("tenant-a", _load(busy={"big": 1}, demand=2.0))]
        blame = decompose(
            tenant="victim", window_index=1, slowdown=1.2,
            chunks=_chunks(), platform=platform, sources=sources,
        )
        d = blame.to_dict()
        assert d["tenant"] == "victim"
        assert d["window"] == 1
        assert d == blame.to_dict()


class TestTopOffenders:
    def test_aggregates_and_ranks(self):
        matrices = [
            BlameMatrix(tenant="v", window_index=i, slowdown=1.2,
                        shares=(BlameShare("a", COMPUTE, 0.1),
                                BlameShare("b", BANDWIDTH, 0.05)),
                        residual=0.05)
            for i in range(3)
        ]
        ranked = top_offenders(matrices, k=2)
        assert [r["source"] for r in ranked] == ["a", "b"]
        assert ranked[0]["total_share"] == pytest.approx(0.3)
        assert ranked[0]["windows"] == 3

    def test_empty_input(self):
        assert top_offenders([], k=5) == []


def _serve_with_attribution(seed):
    platform = get_platform("pixel7a")
    server = PipelineServer(
        platform,
        seed=seed,
        config=ServerConfig(max_ticks=24, attribution=True,
                            reschedule=True),
    )
    for index in range(3):
        server.submit(TenantSpec(
            name=f"tenant-{index}",
            application=build_synthetic_application(
                seed=seed + index, stage_count=3,
            ),
            priority=1,
            windows=4,
            window_tasks=4,
        ))
    server.run(timeout_s=300.0)
    return server


class TestConservationProperty:
    """Attributed components sum to the measured excess, exactly."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_conservation_across_seeds_and_engines(
        self, seed, engine, monkeypatch,
    ):
        monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
        server = _serve_with_attribution(seed)
        checked = 0
        for record in server.records.values():
            for window in record.history:
                if window.blame is None:
                    continue
                blame = window.blame
                excess = blame.slowdown - 1.0
                total = (sum(s.share for s in blame.shares)
                         + blame.residual)
                assert total == pytest.approx(excess, abs=1e-9)
                checked += 1
        assert checked > 0

    def test_blame_present_on_every_window(self):
        server = _serve_with_attribution(7)
        for record in server.records.values():
            assert record.history
            assert all(w.blame is not None for w in record.history)

    def test_blame_absent_when_attribution_off(self):
        platform = get_platform("pixel7a")
        server = PipelineServer(
            platform, seed=7,
            config=ServerConfig(max_ticks=12),
        )
        server.submit(TenantSpec(
            name="solo",
            application=build_synthetic_application(
                seed=7, stage_count=2,
            ),
            priority=1, windows=2, window_tasks=4,
        ))
        report = server.run(timeout_s=300.0)
        assert "attribution" not in report.to_dict()
        for record in server.records.values():
            assert all(w.blame is None for w in record.history)
