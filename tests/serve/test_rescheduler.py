"""Online rescheduler: drift classification, scoring, re-ranking."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    EVICT,
    HOLD,
    RUNNING,
    SWITCH,
    OnlineRescheduler,
    TenantRecord,
    TenantSpec,
)
from repro.soc.interference import ExternalLoad

from tests.serve.conftest import single_class_schedule


@pytest.fixture
def rescheduler(platform):
    return OnlineRescheduler(platform)


def deployed_record(plan, app, pu_class="big", **spec_kwargs):
    schedule = single_class_schedule(plan, pu_class)
    return TenantRecord(
        spec=TenantSpec(name="t", application=app, **spec_kwargs),
        status=RUNNING,
        plan=plan,
        schedule=schedule,
        partition=frozenset({pu_class}),
        baseline_latency_s=plan.isolated_prediction(schedule),
    )


class TestValidation:
    def test_threshold_must_exceed_one(self, platform):
        with pytest.raises(ServeError, match="drift_threshold"):
            OnlineRescheduler(platform, drift_threshold=1.0)

    def test_min_gain_range(self, platform):
        with pytest.raises(ServeError, match="min_gain"):
            OnlineRescheduler(platform, min_gain=1.0)

    def test_patience_floor(self, platform):
        with pytest.raises(ServeError, match="patience"):
            OnlineRescheduler(platform, patience=0)


class TestClassify:
    def test_isolated_measurement(self, rescheduler, plan, app):
        record = deployed_record(plan, app)
        isolated = plan.isolated_prediction(record.schedule)
        assert rescheduler.classify(record, isolated) == "isolated"

    def test_saturated_measurement(self, rescheduler, plan, app):
        record = deployed_record(plan, app)
        heavy = plan.interference_prediction(record.schedule)
        assert rescheduler.classify(record, heavy) == "interference"

    def test_undeployed_record_rejected(self, rescheduler, app):
        bare = TenantRecord(
            spec=TenantSpec(name="t", application=app)
        )
        with pytest.raises(ServeError, match="no deployed plan"):
            rescheduler.classify(bare, 0.01)


class TestDrifted:
    def test_no_baseline_never_drifts(self, rescheduler, plan, app):
        record = deployed_record(plan, app)
        record.baseline_latency_s = None
        assert not rescheduler.drifted(record, 1e9)

    def test_threshold_is_strict(self, platform, plan, app):
        resched = OnlineRescheduler(platform, drift_threshold=1.5)
        record = deployed_record(plan, app)
        base = record.baseline_latency_s
        assert not resched.drifted(record, base * 1.5)
        assert resched.drifted(record, base * 1.51)


class TestScore:
    def test_no_external_load_is_the_isolated_time(
        self, rescheduler, plan, app
    ):
        schedule = single_class_schedule(plan, "big")
        score = rescheduler.score(plan, schedule, ExternalLoad.none())
        assert score == pytest.approx(
            plan.isolated_prediction(schedule)
        )

    def test_load_on_own_class_raises_the_score(
        self, rescheduler, plan, app
    ):
        schedule = single_class_schedule(plan, "big")
        idle = rescheduler.score(plan, schedule, ExternalLoad.none())
        loaded = rescheduler.score(
            plan, schedule,
            ExternalLoad(busy={"big": 0.8}, demand_gbps=4.0),
        )
        assert loaded > idle


class TestRerank:
    def test_undeployed_record_rejected(self, rescheduler, app):
        bare = TenantRecord(
            spec=TenantSpec(name="t", application=app)
        )
        with pytest.raises(ServeError, match="not deployed"):
            rescheduler.rerank(bare, ExternalLoad.none(), frozenset())

    def test_holds_when_nothing_is_better(
        self, rescheduler, plan, app, platform
    ):
        # Deployed on the offline-best schedule with the whole SoC
        # free and no external load: nothing can beat it.
        best = plan.optimization.candidates[0]
        record = deployed_record(plan, app)
        record.schedule = best.schedule
        record.partition = frozenset(best.schedule.pu_classes_used)
        action = rescheduler.rerank(
            record, ExternalLoad.none(),
            frozenset(platform.schedulable_classes()),
        )
        assert action.kind == HOLD

    def test_switches_away_from_a_contended_class(
        self, rescheduler, plan, app, platform
    ):
        # Pinned to one heavily-contended class with everything else
        # free: the offline-best multi-class candidate wins easily.
        record = deployed_record(plan, app, pu_class="big")
        free = frozenset(platform.schedulable_classes()) - {"big"}
        action = rescheduler.rerank(
            record,
            ExternalLoad(busy={"big": 0.9}, demand_gbps=4.0),
            free,
        )
        assert action.kind == SWITCH
        assert action.candidate is not None
        current = rescheduler.score(
            plan, record.schedule,
            ExternalLoad(busy={"big": 0.9}, demand_gbps=4.0),
        )
        assert action.predicted_latency_s < current

    def test_huge_min_gain_holds(self, platform, plan, app):
        picky = OnlineRescheduler(platform, min_gain=0.99)
        record = deployed_record(plan, app, pu_class="big")
        free = frozenset(platform.schedulable_classes()) - {"big"}
        action = picky.rerank(
            record, ExternalLoad(busy={"big": 0.9}), free,
        )
        assert action.kind == HOLD

    def test_no_fitting_candidate_asks_for_eviction(
        self, rescheduler, plan, app
    ):
        # Requires a class outside its partition while nothing is
        # free: no cached candidate can legally run.
        record = deployed_record(
            plan, app, pu_class="big",
            required_classes={"gpu"},
        )
        action = rescheduler.rerank(
            record, ExternalLoad.none(), frozenset(),
        )
        assert action.kind == EVICT
        assert "no cached candidate fits" in action.reason
