"""Tests for the Octree application wiring and its data sets."""

import numpy as np
import pytest

from repro.apps import (
    build_octree_application,
    point_cloud,
    validate_octree_task,
)
from repro.core import Chunk
from repro.errors import KernelError
from repro.runtime import ThreadedPipelineExecutor


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=600)


def run_once(app, chunks):
    captured = {}

    def capture(task, index):
        captured["cells"] = int(np.asarray(task["oc_num_cells"])[0])
        captured["unique"] = int(np.asarray(task["unique_count"])[0])
        n = captured["cells"]
        captured["levels"] = np.asarray(task["oc_level"])[:n].copy()
        captured["parents"] = np.asarray(task["oc_parent"])[:n].copy()

    ThreadedPipelineExecutor(app, chunks).run(
        1, on_complete=capture, validate=True
    )
    return captured


class TestStructure:
    def test_seven_stages_in_paper_order(self, app):
        assert app.stage_names == (
            "morton", "sort", "unique", "radix-tree", "edge-count",
            "prefix-sum", "build-octree",
        )

    def test_rejects_tiny_cloud(self):
        with pytest.raises(KernelError):
            build_octree_application(n_points=1)

    def test_description_matches_table1(self, app):
        assert app.input_kind == "PC"
        assert "octree" in app.name


class TestFunctional:
    def test_builds_valid_octree(self, app):
        result = run_once(app, [Chunk(0, 7, "big")])
        assert result["cells"] >= 1
        assert result["unique"] <= 600
        assert (result["parents"] < 0).sum() == 1

    def test_schedule_invariance(self, app):
        a = run_once(app, [Chunk(0, 7, "big")])
        b = run_once(
            app,
            [Chunk(0, 2, "medium"), Chunk(2, 5, "gpu"),
             Chunk(5, 7, "little")],
        )
        assert a["cells"] == b["cells"]
        np.testing.assert_array_equal(a["levels"], b["levels"])
        np.testing.assert_array_equal(a["parents"], b["parents"])

    def test_duplicate_heavy_cloud_shrinks_unique(self):
        app = build_octree_application(n_points=500)
        result = run_once(app, [Chunk(0, 7, "big")])
        # Structured (surface-heavy) clouds quantize with collisions.
        assert result["unique"] < 500 or result["unique"] == 500

    def test_streaming_multiple_clouds(self, app):
        counts = []
        ThreadedPipelineExecutor(app, [Chunk(0, 7, "big")]).run(
            3,
            on_complete=lambda task, i: counts.append(
                int(np.asarray(task["oc_num_cells"])[0])
            ),
            validate=True,
        )
        assert len(counts) == 3
        assert all(c >= 1 for c in counts)
        # Different clouds produce different octrees.
        assert len(set(counts)) > 1


class TestValidator:
    def test_rejects_empty_octree(self):
        task = {
            "oc_num_cells": np.zeros(1, dtype=np.int64),
            "oc_level": np.zeros(4, dtype=np.int64),
            "oc_parent": np.full(4, -1, dtype=np.int64),
        }
        with pytest.raises(ValueError):
            validate_octree_task(task)

    def test_rejects_two_roots(self):
        task = {
            "oc_num_cells": np.array([2], dtype=np.int64),
            "oc_level": np.array([0, 0], dtype=np.int64),
            "oc_parent": np.array([-1, -1], dtype=np.int64),
        }
        with pytest.raises(ValueError):
            validate_octree_task(task)

    def test_rejects_level_skip(self):
        task = {
            "oc_num_cells": np.array([2], dtype=np.int64),
            "oc_level": np.array([0, 2], dtype=np.int64),
            "oc_parent": np.array([-1, 0], dtype=np.int64),
        }
        with pytest.raises(ValueError):
            validate_octree_task(task)


class TestPointCloud:
    def test_deterministic(self):
        np.testing.assert_array_equal(
            point_cloud(3, 100), point_cloud(3, 100)
        )

    def test_within_unit_cube(self):
        cloud = point_cloud(0, 1000)
        assert cloud.min() >= 0.0 and cloud.max() <= 1.0
        assert cloud.shape == (1000, 3)

    def test_structured_not_uniform(self):
        """Surface concentration: some Morton cells are crowded."""
        from repro.kernels import morton_encode_cpu

        cloud = point_cloud(1, 5000)
        codes = np.zeros(5000, dtype=np.uint32)
        morton_encode_cpu(cloud, codes)
        _, counts = np.unique(codes >> np.uint32(15), return_counts=True)
        uniform_expectation = 5000 / len(counts)
        assert counts.max() > 3 * uniform_expectation

    def test_rejects_zero_points(self):
        with pytest.raises(KernelError):
            point_cloud(0, 0)


class TestWorkProfiles:
    def test_profiles_scale_with_cloud_size(self):
        small = build_octree_application(n_points=1000)
        large = build_octree_application(n_points=4000)
        assert (
            large.stage("sort").work.flops
            > small.stage("sort").work.flops
        )

    def test_sort_is_gpu_hostile_profile(self, app):
        sort = app.stage("sort").work
        assert sort.gpu_launches > 10
        assert sort.gpu_efficiency < 0.2

    def test_radix_tree_is_parallel_profile(self, app):
        tree = app.stage("radix-tree").work
        assert tree.parallel_fraction == 1.0
        assert tree.parallelism > 100
