"""Seeded attribution violation: wall clock in an alert decision.

Burn-rate alerting must run entirely on the deterministic tick clock -
the :class:`BurnAlert` records ride in serialized reports, so any wall
time reaching an alert decision makes the report nondeterministic.
This fixture measures a "burn rate" from process wall time and lets it
reach the alert record one call-hop later - exactly the regression the
``BurnAlert``/``BlameMatrix`` sink registrations must keep out of
``repro.obs.alerts`` and its callers.
"""

import time


def measure_burn(key):
    # Wall clock enters the alert decision: every run "burns"
    # differently.
    observed = time.time()
    return {"key": key, "rate": observed}


def record_alert(key):
    # FLOW-WALL-CLOCK: wall-clock-derived burn rate in a report sink.
    return BurnAlert(measure_burn(key))
