"""Unified shared memory buffers (paper section 3.1, ``UsmBuffer``).

The paper targets UMA SoCs: one DRAM pool, one physical address space, so
a buffer allocated once is visible to host and device with zero copies
(``std::pmr::vector`` fronted by ``cudaMallocManaged`` / ``VkBuffer``
allocators in the C++ implementation).  In Python the single numpy array
*is* the unified allocation; ``host_view``/``device_view`` return the same
storage, and the class additionally tracks the coherence hints the real
runtime issues (``cudaStreamAttachMemAsync`` prefetches, Vulkan pipeline
barriers) so tests can assert the dispatcher synchronizes correctly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import PipelineError


class UsmBuffer:
    """A named, pre-allocated unified-memory buffer.

    Args:
        name: Buffer identifier within its TaskObject.
        shape: Numpy shape.
        dtype: Numpy dtype.
        scope: ``unified`` (default), ``host`` or ``device`` - the paper's
            TaskObjects may also contain host- or device-only scratch
            (e.g. GPU radix-sort histograms).  Scoped buffers refuse views
            from the wrong side.
    """

    SCOPES = ("unified", "host", "device")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype,
                 scope: str = "unified"):
        if scope not in self.SCOPES:
            raise PipelineError(f"bad buffer scope {scope!r}")
        self.name = name
        self.scope = scope
        self._data = np.zeros(shape, dtype=dtype)
        self._attach_log: List[str] = []

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def host_view(self) -> np.ndarray:
        """The host-side pointer (zero-copy: same storage as the device)."""
        if self.scope == "device":
            raise PipelineError(
                f"buffer {self.name!r} is device-only; no host view"
            )
        return self._data

    def device_view(self) -> np.ndarray:
        """The device-side pointer (same storage - UMA)."""
        if self.scope == "host":
            raise PipelineError(
                f"buffer {self.name!r} is host-only; no device view"
            )
        return self._data

    def view_for(self, pu_class: str) -> np.ndarray:
        """The appropriate view for the executing PU class."""
        return self.device_view() if pu_class == "gpu" else self.host_view()

    # ------------------------------------------------------------------
    def attach_async(self, pu_class: str) -> None:
        """Record a coherence/prefetch hint for the given PU.

        Mirrors ``cudaStreamAttachMemAsync`` (CUDA) / the memory-barrier
        recording into a ``VkCommandBuffer`` (Vulkan) issued by the
        dispatcher before launching a chunk (paper section 3.4).
        """
        self._attach_log.append(pu_class)

    @property
    def attach_log(self) -> Tuple[str, ...]:
        return tuple(self._attach_log)

    def fill(self, value) -> None:
        """Fill the buffer with a constant."""
        self._data.fill(value)

    def zero(self) -> None:
        """Zero the buffer."""
        self._data.fill(0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"UsmBuffer({self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, scope={self.scope})"
        )
