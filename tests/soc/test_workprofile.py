"""Tests for WorkProfile validation and algebra."""

import pytest

from repro.errors import KernelError
from repro.soc import WorkProfile


def profile(**overrides):
    base = dict(flops=1e6, bytes_moved=1e5, parallelism=1024.0)
    base.update(overrides)
    return WorkProfile(**base)


class TestValidation:
    def test_rejects_negative_flops(self):
        with pytest.raises(KernelError):
            profile(flops=-1.0)

    def test_rejects_parallelism_below_one(self):
        with pytest.raises(KernelError):
            profile(parallelism=0.5)

    @pytest.mark.parametrize(
        "field", ["parallel_fraction", "divergence", "irregularity"]
    )
    def test_rejects_out_of_range_fractions(self, field):
        with pytest.raises(KernelError):
            profile(**{field: 1.5})
        with pytest.raises(KernelError):
            profile(**{field: -0.1})

    def test_rejects_zero_efficiency(self):
        with pytest.raises(KernelError):
            profile(cpu_efficiency=0.0)

    def test_rejects_zero_launches(self):
        with pytest.raises(KernelError):
            profile(gpu_launches=0)

    def test_accepts_boundary_values(self):
        p = profile(divergence=1.0, irregularity=0.0, parallel_fraction=1.0)
        assert p.divergence == 1.0


class TestScaled:
    def test_scales_totals_not_structure(self):
        p = profile(divergence=0.3)
        doubled = p.scaled(2.0)
        assert doubled.flops == pytest.approx(2 * p.flops)
        assert doubled.bytes_moved == pytest.approx(2 * p.bytes_moved)
        assert doubled.divergence == p.divergence

    def test_scaling_keeps_parallelism_at_least_one(self):
        p = profile(parallelism=2.0)
        shrunk = p.scaled(0.01)
        assert shrunk.parallelism >= 1.0

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(KernelError):
            profile().scaled(0.0)


class TestCombined:
    def test_totals_add(self):
        a = profile(flops=1e6, bytes_moved=2e5, gpu_launches=2)
        b = profile(flops=3e6, bytes_moved=1e5, gpu_launches=3)
        c = a.combined(b)
        assert c.flops == pytest.approx(4e6)
        assert c.bytes_moved == pytest.approx(3e5)
        assert c.gpu_launches == 5

    def test_structure_is_flops_weighted(self):
        a = profile(flops=3e6, divergence=0.0)
        b = profile(flops=1e6, divergence=1.0)
        c = a.combined(b)
        assert c.divergence == pytest.approx(0.25)

    def test_combining_zero_flops_profiles(self):
        a = profile(flops=0.0)
        b = profile(flops=0.0)
        c = a.combined(b)
        assert c.flops == 0.0


class TestDerived:
    def test_arithmetic_intensity(self):
        p = profile(flops=4e6, bytes_moved=1e6)
        assert p.arithmetic_intensity == pytest.approx(4.0)

    def test_arithmetic_intensity_no_bytes(self):
        p = profile(bytes_moved=0.0)
        assert p.arithmetic_intensity == float("inf")

    def test_as_dict_round_trip(self):
        p = profile(divergence=0.2)
        d = p.as_dict()
        assert d["divergence"] == pytest.approx(0.2)
        assert WorkProfile(**d).divergence == pytest.approx(0.2)
