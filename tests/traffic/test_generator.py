"""Generator determinism: a workload is a pure function of (spec, seed).

The coordinate-keyed RNG discipline is the load-bearing property: every
arrival count is keyed by its tick and every arrival's attributes by
its global index, so no draw ever depends on what a consumer did with
the previous one.
"""

from dataclasses import replace

import pytest

from repro.errors import TrafficError
from repro.traffic import TrafficGenerator, TrafficSpec
from repro.traffic.generator import (
    APP_KINDS,
    BANDWIDTH_BOUND,
    MEMORY_BOUND,
    SYNTHETIC,
    ArrivalEvent,
)


class TestDeterminism:
    def test_same_seed_same_stream(self, small_spec):
        first = TrafficGenerator(small_spec, seed=5).events()
        second = TrafficGenerator(small_spec, seed=5).events()
        assert first == second
        assert len(first) > 0

    def test_different_seed_different_stream(self, small_spec):
        first = TrafficGenerator(small_spec, seed=5).events()
        second = TrafficGenerator(small_spec, seed=6).events()
        assert first != second

    def test_per_tick_queries_match_full_stream(self, small_spec):
        """arrivals_at is coordinate-keyed: querying ticks out of
        order, twice, or standalone yields the same stream."""
        generator = TrafficGenerator(small_spec, seed=5)
        full = generator.events()
        rebuilt = []
        for tick in reversed(range(small_spec.ticks)):
            count_before = sum(1 for e in full if e.tick < tick)
            rebuilt[:0] = generator.arrivals_at(
                tick, first_index=count_before
            )
        assert rebuilt == full

    def test_attributes_keyed_by_global_index(self, small_spec):
        """Arrival #k has identical attributes under any rate shape
        that still produces a #k (draw-count invariance)."""
        calm = TrafficGenerator(small_spec, seed=5).events()
        surged = TrafficGenerator(
            replace(small_spec, load_multiplier=3.0), seed=5
        ).events()
        for event, other in zip(calm, surged):
            # Same global index -> same identity, tier, session shape,
            # application; only the landing tick may differ.
            assert event.name == other.name
            assert event.tier == other.tier
            assert event.windows == other.windows
            assert event.app_kind == other.app_kind
            assert event.app_seed == other.app_seed


class TestRateShapes:
    def test_load_multiplier_scales_intensity(self, small_spec):
        base = TrafficGenerator(small_spec, seed=5)
        doubled = TrafficGenerator(
            replace(small_spec, load_multiplier=2.0), seed=5
        )
        for tick in range(small_spec.ticks):
            assert doubled.intensity(tick) == pytest.approx(
                2.0 * base.intensity(tick)
            )

    def test_burst_multiplies_rate(self, small_spec):
        generator = TrafficGenerator(
            replace(small_spec, diurnal_amplitude=0.0), seed=5
        )
        burst = small_spec.bursts[0]
        inside = generator.intensity(burst.start_tick)
        outside = generator.intensity(burst.end_tick)
        assert inside == pytest.approx(burst.multiplier * outside)

    def test_mmpp_surges_above_poisson(self, small_spec):
        spec = replace(small_spec, arrival_process="mmpp",
                       mmpp_enter_surge=0.9, mmpp_exit_surge=0.05,
                       ticks=40)
        mmpp = TrafficGenerator(spec, seed=5)
        poisson = TrafficGenerator(
            replace(spec, arrival_process="poisson"), seed=5
        )
        surged = [tick for tick in range(spec.ticks)
                  if mmpp.intensity(tick) > poisson.intensity(tick)]
        assert surged, "chain never entered its surge state"
        for tick in surged:
            assert mmpp.intensity(tick) == pytest.approx(
                spec.mmpp_surge_factor * poisson.intensity(tick)
            )

    def test_out_of_horizon_tick_rejected(self, small_spec):
        generator = TrafficGenerator(small_spec, seed=5)
        with pytest.raises(TrafficError, match="horizon"):
            generator.arrivals_at(small_spec.ticks, first_index=0)


class TestPopulation:
    @pytest.fixture()
    def stream(self, small_spec):
        spec = replace(small_spec, ticks=60, arrivals_per_tick=2.0,
                       app_pool_size=6)
        return spec, TrafficGenerator(spec, seed=5).events()

    def test_sessions_respect_bounds(self, stream):
        spec, events = stream
        for event in events:
            assert (spec.session_windows_min <= event.windows
                    <= spec.session_windows_max)
        # Heavy tail: minimum-length sessions are the modal mass,
        # and far longer ones still exist.
        short = sum(1 for e in events
                    if e.windows == spec.session_windows_min)
        assert short > len(events) / 3
        assert any(e.windows > 2 * spec.session_windows_min
                   for e in events)

    def test_all_tiers_and_app_kinds_appear(self, stream):
        spec, events = stream
        assert {e.tier for e in events} == {t.name for t in spec.tiers}
        assert {e.app_kind for e in events} == set(APP_KINDS)
        assert set(APP_KINDS) == {
            SYNTHETIC, MEMORY_BOUND, BANDWIDTH_BOUND,
        }

    def test_tier_weights_shape_the_mix(self, stream):
        spec, events = stream
        by_tier = {t.name: sum(1 for e in events if e.tier == t.name)
                   for t in spec.tiers}
        # bronze (weight 3) should clearly outnumber gold (weight 1).
        assert by_tier["bronze"] > by_tier["gold"]

    def test_offered_windows_sums_stream(self, small_spec):
        generator = TrafficGenerator(small_spec, seed=5)
        assert generator.offered_windows() == sum(
            e.windows for e in generator.events()
        )


class TestArrivalEvent:
    def test_dict_round_trip(self, small_spec):
        event = TrafficGenerator(small_spec, seed=5).events()[0]
        assert ArrivalEvent.from_dict(event.to_dict()) == event

    def test_malformed_dict_raises(self):
        with pytest.raises(TrafficError, match="malformed arrival"):
            ArrivalEvent.from_dict({"tick": 0, "name": "user-0"})
