"""Shared fixtures for the serving-layer tests.

Profiling is the expensive step, so the plan cache and its artifacts
are built once per test session and shared read-only.
"""

import pytest

from repro.apps.synthetic import build_synthetic_application
from repro.core.plan_cache import PlanCache
from repro.soc import get_platform


@pytest.fixture(scope="session")
def platform():
    return get_platform("pixel7a", seed=7)


@pytest.fixture(scope="session")
def plan_cache(platform):
    return PlanCache(platform, repetitions=3, k=8)


@pytest.fixture(scope="session")
def app():
    return build_synthetic_application(seed=11, stage_count=3)


@pytest.fixture(scope="session")
def plan(plan_cache, app):
    return plan_cache.plan_for(app)


def single_class_schedule(plan, pu_class):
    """The packing candidate pinned to one PU class."""
    for candidate in plan.optimization.candidates:
        if set(candidate.schedule.pu_classes_used) == {pu_class}:
            return candidate.schedule
    raise AssertionError(f"no single-class candidate for {pu_class!r}")
