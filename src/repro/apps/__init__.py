"""The three evaluated applications (paper section 4.1, Table 1).

============== ======= ======== =================================
Application    Input   Stages   Characteristics
============== ======= ======== =================================
AlexNet-Dense  Image   9        Dense linear algebra
AlexNet-Sparse Image   9        Sparse linear algebra (CSR, batch)
Octree         PC      7        Mixed sparse & dense (Karras)
============== ======= ======== =================================
"""

from repro.apps.alexnet import (
    CONV_LAYERS,
    DEFAULT_SPARSE_BATCH,
    DEFAULT_SPARSITY,
    build_alexnet_dense,
    build_alexnet_sparse,
    make_weights,
)
from repro.apps.datasets import (
    CIFAR_SHAPE,
    cifar_like_batch,
    cifar_like_image,
    point_cloud,
)
from repro.apps.octree_app import (
    DEFAULT_N_POINTS,
    build_octree_application,
    validate_octree_task,
)
from repro.apps.stereo_app import (
    build_stereo_application,
    synthetic_stereo_pair,
)
from repro.apps.synthetic import (
    build_bandwidth_bound_application,
    build_synthetic_application,
)

#: Paper evaluation order first; extension workloads after.
APPLICATION_BUILDERS = {
    "alexnet-dense": build_alexnet_dense,
    "alexnet-sparse": build_alexnet_sparse,
    "octree": build_octree_application,
    "stereo-depth": build_stereo_application,
}

__all__ = [
    "APPLICATION_BUILDERS",
    "CIFAR_SHAPE",
    "CONV_LAYERS",
    "DEFAULT_N_POINTS",
    "DEFAULT_SPARSE_BATCH",
    "DEFAULT_SPARSITY",
    "build_alexnet_dense",
    "build_alexnet_sparse",
    "build_bandwidth_bound_application",
    "build_octree_application",
    "build_stereo_application",
    "build_synthetic_application",
    "cifar_like_batch",
    "cifar_like_image",
    "make_weights",
    "point_cloud",
    "synthetic_stereo_pair",
    "validate_octree_task",
]
