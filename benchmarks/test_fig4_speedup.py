"""Benchmark + shape check for Fig. 4 (BetterTogether speedups)."""

from benchmarks.conftest import run_once
from repro.eval.experiments import format_fig4, run_fig4


def test_fig4_speedups(benchmark, paper_scale):
    result = run_once(benchmark, run_fig4, paper_scale)
    print("\n" + format_fig4(result))

    # Every cell at least matches its best homogeneous baseline (the
    # paper saw one slight slowdown out of 12; we tolerate 5%).
    assert all(c.speedup > 0.95 for c in result.cells.values())
    # At least 11 of 12 strictly improve.
    assert sum(c.speedup > 1.0 for c in result.cells.values()) >= 11

    # Platform ordering: the fully-pinnable, 4-PU-class Pixel gains the
    # most; the 2-PU-class Jetsons gain the least (paper section 5.1).
    pixel = result.platform_geomean("pixel7a")
    oneplus = result.platform_geomean("oneplus11")
    jetson = result.platform_geomean("jetson_orin_nano")
    jetson_lp = result.platform_geomean("jetson_orin_nano_lp")
    assert pixel >= oneplus >= max(jetson, jetson_lp)
    assert pixel > 2.0
    assert max(jetson, jetson_lp) < 2.0

    # The grid maximum is Octree on the Pixel (paper: 8.40x there).
    (max_app, max_platform), max_speed = result.max_speedup
    assert (max_app, max_platform) == ("octree", "pixel7a")
    assert max_speed > 3.0

    # Overall geomean in the paper's band (2.17x section 5.1 / 2.72x
    # abstract); ours must land meaningfully above 1.5x.
    assert result.overall_geomean > 1.5
