"""Processing-unit descriptions for the virtual SoC.

Two PU families exist on the paper's platforms (section 2.1): CPU clusters
(big / medium / little, modelled as :class:`CpuCluster`) and integrated GPUs
(:class:`Gpu`).  These are *static* hardware descriptions; execution-time
math lives in :mod:`repro.soc.cost_model` and contention effects in
:mod:`repro.soc.interference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import PlatformError

# Canonical PU class names used throughout the framework.
BIG = "big"
MEDIUM = "medium"
LITTLE = "little"
GPU = "gpu"

CPU_CLASSES = (BIG, MEDIUM, LITTLE)
ALL_CLASSES = CPU_CLASSES + (GPU,)


@dataclass(frozen=True)
class CpuCluster:
    """A homogeneous cluster of CPU cores (one big.LITTLE tier).

    Attributes:
        pu_class: One of ``big``, ``medium``, ``little``.
        model: Marketing name, e.g. ``Cortex-X1``.
        cores: Number of cores in the cluster.
        freq_ghz: Sustained clock under load.
        flops_per_cycle: Per-core arithmetic throughput (NEON SIMD lanes x
            FMA); big cores have two 128-bit FMA pipes (16 flop/cycle),
            little in-order cores one (4-8).
        irregularity_tolerance: [0, 1] - how well the microarchitecture
            hides irregular access and branches (out-of-order window,
            prefetchers).  1 = unaffected.
        dispatch_overhead_s: Fixed per-stage software overhead (OpenMP fork
            / barrier, queue handoff).
        stream_bw_gbps: Peak DRAM bandwidth the cluster can draw by itself
            (bounded by the platform's total DRAM bandwidth).
        sustained_efficiency: Fraction of nominal peak the cluster sustains
            in steady state (thermal envelope, OS scheduling quality);
            passively-cooled phones sustain far less than a fan-cooled
            Jetson devkit.
        core_ids: OS core identifiers for affinity pinning.
        pinnable: Whether the OS allows pinning to this cluster (the
            OnePlus only exposes 5 of 8 cores; see section 5.1).
    """

    pu_class: str
    model: str
    cores: int
    freq_ghz: float
    flops_per_cycle: float
    irregularity_tolerance: float
    dispatch_overhead_s: float
    stream_bw_gbps: float
    core_ids: Tuple[int, ...]
    sustained_efficiency: float = 1.0
    pinnable: bool = True

    def __post_init__(self) -> None:
        if self.pu_class not in CPU_CLASSES:
            raise PlatformError(f"bad CPU class: {self.pu_class!r}")
        if self.cores < 1 or len(self.core_ids) != self.cores:
            raise PlatformError(
                f"cluster {self.model}: cores={self.cores} but "
                f"{len(self.core_ids)} core ids"
            )
        if not 0.0 <= self.irregularity_tolerance <= 1.0:
            raise PlatformError("irregularity_tolerance must be in [0, 1]")

    @property
    def peak_gflops(self) -> float:
        """Cluster-wide peak arithmetic throughput in GFLOP/s."""
        return self.cores * self.freq_ghz * self.flops_per_cycle

    @property
    def sustained_gflops(self) -> float:
        """Throughput actually sustainable in steady state."""
        return self.peak_gflops * self.sustained_efficiency


@dataclass(frozen=True)
class Gpu:
    """An integrated GPU (shares DRAM with the CPU clusters).

    Attributes:
        model: Marketing name, e.g. ``Mali-G710 MP7``.
        vendor: ``arm``, ``qualcomm`` or ``nvidia``.
        api: ``vulkan`` or ``cuda`` - determines launch overheads and which
            interference pathology the platform exhibits (section 5.3).
        compute_units: Shader cores / SMs.
        lanes_per_unit: SIMT lanes per unit (warp width x pipes).
        freq_ghz: Shader clock.
        flops_per_lane_cycle: Usually 2 (FMA).
        divergence_penalty: Multiplier strength for divergent control flow;
            effective throughput is divided by ``1 + penalty * divergence``.
        irregularity_penalty: Same idea for scattered memory access.
        launch_overhead_s: Per-kernel-launch host+driver cost (higher for
            Vulkan command-buffer submission than CUDA stream launch).
        min_parallelism: Threads needed to cover latency; below this the
            GPU is proportionally underutilized.
        stream_bw_gbps: Peak DRAM bandwidth the GPU can draw by itself.
        sustained_efficiency: Fraction of nominal peak sustained in steady
            state (thermal/power envelope).
    """

    model: str
    vendor: str
    api: str
    compute_units: int
    lanes_per_unit: int
    freq_ghz: float
    flops_per_lane_cycle: float
    divergence_penalty: float
    irregularity_penalty: float
    launch_overhead_s: float
    min_parallelism: float
    stream_bw_gbps: float
    sustained_efficiency: float = 1.0

    pu_class: str = GPU

    def __post_init__(self) -> None:
        if self.api not in ("vulkan", "cuda"):
            raise PlatformError(f"bad GPU api: {self.api!r}")
        if self.vendor not in ("arm", "qualcomm", "nvidia"):
            raise PlatformError(f"bad GPU vendor: {self.vendor!r}")
        if self.compute_units < 1 or self.lanes_per_unit < 1:
            raise PlatformError("GPU must have at least one unit and lane")

    @property
    def peak_gflops(self) -> float:
        """Device-wide peak arithmetic throughput in GFLOP/s."""
        return (
            self.compute_units
            * self.lanes_per_unit
            * self.freq_ghz
            * self.flops_per_lane_cycle
        )

    @property
    def sustained_gflops(self) -> float:
        """Throughput actually sustainable in steady state."""
        return self.peak_gflops * self.sustained_efficiency

    @property
    def hardware_threads(self) -> float:
        """Resident threads needed for full occupancy."""
        return float(self.compute_units * self.lanes_per_unit)
