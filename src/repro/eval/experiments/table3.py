"""Table 3: raw homogeneous baseline latencies, CPU | GPU, per device.

Shape target (the reproduction contract): the *winner* of every cell
matches the paper - GPUs win dense CNNs everywhere, big CPUs win Octree
on the two phones, the Jetson's CUDA GPU wins Octree, and AlexNet-sparse
sits near CPU/GPU parity on the Pixel while the GPU wins elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.homogeneous import BaselineResult, measure_baselines
from repro.eval.experiments.common import (
    APP_ORDER,
    PLATFORM_LABELS,
    ExperimentScale,
    build_applications,
    evaluation_platforms,
)
from repro.eval.metrics import format_table

#: The paper's Table 3 winners: (app, platform) -> 'cpu' or 'gpu'.
PAPER_WINNERS: Dict[Tuple[str, str], str] = {
    ("alexnet-dense", "pixel7a"): "gpu",
    ("alexnet-dense", "oneplus11"): "gpu",
    ("alexnet-dense", "jetson_orin_nano"): "gpu",
    ("alexnet-dense", "jetson_orin_nano_lp"): "gpu",
    ("alexnet-sparse", "pixel7a"): "gpu",
    ("alexnet-sparse", "oneplus11"): "gpu",
    ("alexnet-sparse", "jetson_orin_nano"): "gpu",
    ("alexnet-sparse", "jetson_orin_nano_lp"): "gpu",
    ("octree", "pixel7a"): "cpu",
    ("octree", "oneplus11"): "cpu",
    ("octree", "jetson_orin_nano"): "gpu",
    ("octree", "jetson_orin_nano_lp"): "gpu",
}


@dataclass
class Table3Result:
    """(app, platform) -> measured homogeneous baselines."""

    cells: Dict[Tuple[str, str], BaselineResult]

    def winner(self, app: str, platform: str) -> str:
        return self.cells[(app, platform)].best_name

    def winners_matching_paper(self) -> int:
        return sum(
            1
            for key, paper in PAPER_WINNERS.items()
            if key in self.cells and self.winner(*key) == paper
        )

    @property
    def total_cells(self) -> int:
        return len(self.cells)


def run_table3(scale: ExperimentScale = None,
               n_tasks: int = 30) -> Table3Result:
    scale = scale or ExperimentScale.paper()
    applications = build_applications(scale)
    cells: Dict[Tuple[str, str], BaselineResult] = {}
    for platform in evaluation_platforms():
        for app_name in APP_ORDER:
            cells[(app_name, platform.name)] = measure_baselines(
                applications[app_name], platform, n_tasks=n_tasks
            )
    return Table3Result(cells=cells)


def format_table3(result: Table3Result) -> str:
    header = ["Device"] + [f"{a} (CPU|GPU ms)" for a in APP_ORDER]
    rows: List[List[str]] = [header]
    platforms = sorted({p for _, p in result.cells}, key=list(
        PLATFORM_LABELS).index)
    for platform in platforms:
        row = [PLATFORM_LABELS[platform]]
        for app in APP_ORDER:
            cell = result.cells[(app, platform)]
            cpu, gpu = cell.as_row()
            marker_cpu = "*" if cell.best_name == "cpu" else " "
            marker_gpu = "*" if cell.best_name == "gpu" else " "
            row.append(f"{cpu}{marker_cpu}| {gpu}{marker_gpu}")
        rows.append(row)
    summary = (
        f"winners matching paper: "
        f"{result.winners_matching_paper()}/{result.total_cells}"
    )
    return (
        "Table 3 - homogeneous baselines (lower is better, * = winner)\n"
        + format_table(rows) + "\n" + summary
    )
