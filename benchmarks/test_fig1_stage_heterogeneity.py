"""Benchmark + shape check for Fig. 1 (stage/PU heterogeneity, Pixel)."""

from benchmarks.conftest import run_once
from repro.eval.experiments import format_fig1, run_fig1


def test_fig1_stage_heterogeneity(benchmark, paper_scale):
    result = run_once(benchmark, run_fig1, paper_scale)
    print("\n" + format_fig1(result))

    # Paper shapes: GPU is the worst PU for sorting, the best for the
    # radix tree, and competitive with the big/medium CPUs for the
    # octree construction stage.
    assert result.gpu_is_worst_at_sort()
    assert result.gpu_is_best_at_radix_tree()
    assert result.octree_build_is_balanced()
    # The motivating spread: at least an order of magnitude between the
    # best and worst (stage, PU) pairings.
    flat = [t for row in result.times_s.values() for t in row.values()]
    assert max(flat) > 10 * min(flat)
