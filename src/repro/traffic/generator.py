"""The seeded open-loop workload generator.

Every random decision is drawn from its own *coordinate-keyed* RNG:
the per-tick arrival count from a generator keyed by (seed, stream,
tick), the per-arrival attributes (tier, session length, application)
from one keyed by (seed, stream, arrival index).  No decision ever
consumes draws from another decision's stream, so the arrival sequence
is a pure function of (spec, seed) and - crucially for the
draw-count-invariance tests - cannot shift when the *fleet* admits,
queues, or rejects a tenant.  The generator is open-loop by
construction: it never observes fleet state at all.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from repro.errors import TrafficError
from repro.traffic.spec import MMPP, TierSpec, TrafficSpec


def _stable_seed(*parts: object) -> int:
    """A 64-bit seed derived deterministically from arbitrary key
    parts (``hash()`` is randomized per interpreter run, so blake2b -
    the same idiom as :mod:`repro.soc.timer`)."""
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"),
        digest_size=8,
    )
    return int.from_bytes(digest.digest(), "little")

#: Generated application flavours (cycled across the app pool, so the
#: population mixes compute-bound, memory-bound, and DRAM-saturating
#: pipelines; the last flavour is what makes deep packing collapse and
#: admission control earn its keep).
SYNTHETIC = "synthetic"
MEMORY_BOUND = "memory_bound"
BANDWIDTH_BOUND = "bandwidth_bound"
APP_KINDS = (SYNTHETIC, MEMORY_BOUND, BANDWIDTH_BOUND)


@dataclass(frozen=True)
class ArrivalEvent:
    """One tenant arrival, as pure data.

    The driver materializes the actual
    :class:`~repro.serve.tenant.TenantSpec` (application object
    included) from these fields; keeping the event itself plain makes
    the trace format trivially JSON-serializable.
    """

    tick: int
    name: str
    tier: str
    priority: int
    windows: int
    window_tasks: int
    app_kind: str
    app_seed: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "name": self.name,
            "tier": self.tier,
            "priority": self.priority,
            "windows": self.windows,
            "window_tasks": self.window_tasks,
            "app_kind": self.app_kind,
            "app_seed": self.app_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArrivalEvent":
        try:
            return cls(
                tick=int(data["tick"]),
                name=str(data["name"]),
                tier=str(data["tier"]),
                priority=int(data["priority"]),
                windows=int(data["windows"]),
                window_tasks=int(data["window_tasks"]),
                app_kind=str(data["app_kind"]),
                app_seed=int(data["app_seed"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TrafficError(
                f"malformed arrival event: {exc}"
            ) from exc


class TrafficGenerator:
    """Generate the arrival stream a spec and seed describe."""

    def __init__(self, spec: TrafficSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        # The MMPP modulating chain is inherently sequential (state at
        # tick t depends on t-1), but each *transition* draw is keyed
        # by its tick, so the whole path is still a pure function of
        # (spec, seed).  Precomputed once.
        self._surge: List[bool] = []
        if spec.arrival_process == MMPP:
            surge = False
            for tick in range(spec.ticks):
                rng = self._rng("mmpp", tick)
                flip = float(rng.random())
                if surge:
                    surge = flip >= spec.mmpp_exit_surge
                else:
                    surge = flip < spec.mmpp_enter_surge
                self._surge.append(surge)

    def _rng(self, *key: object) -> np.random.Generator:
        return np.random.default_rng(
            _stable_seed(self.seed, "traffic", *key)
        )

    # ------------------------------------------------------------------
    # Offered-rate shape
    # ------------------------------------------------------------------
    def intensity(self, tick: int) -> float:
        """The modulated arrival intensity (tenants/tick) at a tick."""
        spec = self.spec
        rate = spec.arrivals_per_tick * spec.load_multiplier
        if spec.diurnal_amplitude > 0.0:
            phase = 2.0 * math.pi * tick / spec.diurnal_period_ticks
            rate *= 1.0 + spec.diurnal_amplitude * math.sin(phase)
        for burst in spec.bursts:
            if burst.active_at(tick):
                rate *= burst.multiplier
        if spec.arrival_process == MMPP and self._surge[tick]:
            rate *= spec.mmpp_surge_factor
        return rate

    # ------------------------------------------------------------------
    # Arrival stream
    # ------------------------------------------------------------------
    def _session_windows(self, rng: np.random.Generator) -> int:
        """Bounded-Pareto session length, in execution windows."""
        spec = self.spec
        u = float(rng.random())
        # Inverse-CDF of a Pareto with scale w_min, truncated above.
        u = min(u, 1.0 - 1e-12)
        raw = spec.session_windows_min / (
            (1.0 - u) ** (1.0 / spec.session_alpha)
        )
        return max(spec.session_windows_min,
                   min(spec.session_windows_max, int(raw)))

    def _pick_tier(self, rng: np.random.Generator) -> TierSpec:
        tiers = self.spec.tiers
        total = sum(tier.weight for tier in tiers)
        point = float(rng.random()) * total
        cumulative = 0.0
        for tier in tiers:
            cumulative += tier.weight
            if point < cumulative:
                return tier
        return tiers[-1]

    def arrivals_at(self, tick: int, first_index: int) -> List[ArrivalEvent]:
        """The arrivals landing at one tick.

        ``first_index`` is the global index of the first arrival at
        this tick (the caller threads it through), which keys each
        arrival's attribute stream - so the attributes of arrival #17
        are identical whether it lands alone or in a burst.
        """
        if not 0 <= tick < self.spec.ticks:
            raise TrafficError(
                f"tick {tick} outside the spec horizon "
                f"[0, {self.spec.ticks})"
            )
        count = int(self._rng("arrivals", tick).poisson(
            self.intensity(tick)
        ))
        events: List[ArrivalEvent] = []
        for offset in range(count):
            index = first_index + offset
            rng = self._rng("arrival", index)
            tier = self._pick_tier(rng)
            windows = self._session_windows(rng)
            app_slot = int(rng.integers(self.spec.app_pool_size))
            app_kind = APP_KINDS[app_slot % len(APP_KINDS)]
            events.append(ArrivalEvent(
                tick=tick,
                name=f"user-{index:05d}",
                tier=tier.name,
                priority=tier.priority,
                windows=windows,
                window_tasks=tier.window_tasks,
                app_kind=app_kind,
                app_seed=self.seed + app_slot,
            ))
        return events

    def events(self) -> List[ArrivalEvent]:
        """The full arrival stream over the spec horizon."""
        out: List[ArrivalEvent] = []
        for tick in range(self.spec.ticks):
            out.extend(self.arrivals_at(tick, first_index=len(out)))
        return out

    def offered_windows(self) -> int:
        """Total execution windows the stream offers (demand, not
        what the fleet manages to serve)."""
        return sum(event.windows for event in self.events())
