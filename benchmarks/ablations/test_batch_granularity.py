"""Ablation: task granularity for AlexNet-sparse (why batch 128?).

The paper batches 128 images per task for the sparse variant "since the
sparse variant has a significantly lower per-image compute cost"
(section 4.1).  This ablation sweeps the batch size and measures
per-image latency of the deployed pipeline: small batches drown in
per-stage dispatch overhead; large batches amortize it with diminishing
returns (at growing memory cost, which the sweep also reports).
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_alexnet_sparse
from repro.core.framework import BetterTogether
from repro.runtime import estimate_pipeline_memory
from repro.soc import get_platform

BATCHES = (8, 32, 128, 256)


def test_batch_size_granularity(benchmark):
    platform = get_platform("pixel7a")

    def sweep():
        outcomes = {}
        for batch in BATCHES:
            application = build_alexnet_sparse(batch=batch)
            plan = BetterTogether(platform, repetitions=5, k=8,
                                  eval_tasks=10).run(application)
            per_image = plan.measured_latency_s / batch
            depth = len(plan.schedule.chunks()) + 1
            memory = estimate_pipeline_memory(application, depth)
            outcomes[batch] = (per_image, memory.total_mib)
        return outcomes

    outcomes = run_once(benchmark, sweep)
    print("\nbatch -> per-image latency, pipeline memory:")
    for batch, (per_image, mib) in sorted(outcomes.items()):
        print(f"  B={batch:3d}: {per_image * 1e6:8.1f} us/image, "
              f"{mib:7.1f} MiB")

    # Amortization: per-image latency improves monotonically with batch.
    per_image = {b: outcomes[b][0] for b in BATCHES}
    assert per_image[32] < per_image[8]
    assert per_image[128] < per_image[32]
    # Diminishing returns by the paper's choice of 128: doubling again
    # buys comparatively little.
    gain_32_to_128 = per_image[32] / per_image[128]
    gain_128_to_256 = per_image[128] / per_image[256]
    assert gain_32_to_128 > gain_128_to_256
    # Memory grows ~linearly with batch.
    assert outcomes[256][1] > 3 * outcomes[32][1]
