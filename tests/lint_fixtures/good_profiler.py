"""Lint fixture (never imported): the approved idiom for every rule.

Named ``good_profiler.py`` so the GLOBAL-RNG rule applies - and passes.
"""

import time

import numpy as np


def deadline_in(seconds):
    return time.monotonic() + seconds


def seeded_draw(seed):
    return np.random.default_rng(seed).random()


def routed(kernel, injector):
    try:
        kernel()
    except Exception:
        injector.record("kernel-fault")
        raise
