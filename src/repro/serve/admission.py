"""Interference-aware admission control.

Admission answers one question before any tenant touches the SoC:
*if this job starts now, what happens to everyone's latency?*  The
prediction reuses the paper's profiling artifacts rather than a new
model: every tenant's plan carries both the isolated and the
interference-heavy profiling table, so the latency of any schedule is
known at both ends of the contention spectrum.  A measurement - or a
hypothetical co-tenant - is placed *between* those ends by the
fraction of the SoC's other PUs it keeps busy.

Three outcomes:

* ``ADMIT``  - a cached candidate fits entirely inside the free PU
  classes, and the predicted slowdown it inflicts on every running
  tenant stays under the impact ceiling;
* ``QUEUE``  - the job is serveable in principle but not now (its PUs
  are held, or it would hurt co-tenants too much); it waits in the
  backpressure queue for a partition release;
* ``REJECT`` - the job can never be served (needs unschedulable or
  uncoverable PU classes), or the queue is full (backpressure), or
  queueing is disabled and its required classes are oversubscribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional

from repro.core.optimizer import ScheduleCandidate
from repro.core.plan_cache import PlanCache
from repro.errors import ServeError
from repro.serve.placement import PlacementMap
from repro.serve.tenant import TenantRecord, TenantSpec
from repro.soc.platform import Platform

ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one submission."""

    action: str
    reason: str
    candidate: Optional[ScheduleCandidate] = None
    #: Modelled per-task latency of the chosen candidate given how
    #: loaded the SoC is right now (isolated..interference blend).
    predicted_latency_s: float = 0.0
    #: Running tenant -> predicted slowdown ratio if this job starts.
    predicted_impact: Mapping[str, float] = field(default_factory=dict)


class AdmissionController:
    """Decide admit/queue/reject from the shared profiling artifacts.

    Args:
        platform: The shared virtual SoC.
        plan_cache: Source of per-application tables and candidates.
        queue_capacity: Backpressure depth; 0 disables queueing so any
            deferral becomes an outright rejection.
        max_impact_ratio: Ceiling on the predicted slowdown admission
            may inflict on any running tenant (e.g. 1.35 = +35%).
        max_partition_classes: Optional cap on how many PU classes one
            tenant may own - the multi-tenant fairness knob that keeps
            a single job from claiming the whole SoC.
        cumulative_impact: When True, the impact ceiling prices each
            incumbent's *total* predicted slowdown once the newcomer
            lands - PU classes already busied by other co-tenants
            count, not just the newcomer's increment.  Successive
            admissions therefore accumulate toward the ceiling, which
            bounds the worst-case slowdown any incumbent can ever be
            packed into.  The default (False) prices only the
            newcomer's own increment, the historical behaviour.
    """

    def __init__(
        self,
        platform: Platform,
        plan_cache: PlanCache,
        queue_capacity: int = 4,
        max_impact_ratio: float = 1.35,
        max_partition_classes: Optional[int] = None,
        cumulative_impact: bool = False,
    ):
        if queue_capacity < 0:
            raise ServeError("queue_capacity must be >= 0")
        if max_impact_ratio < 1.0:
            raise ServeError("max_impact_ratio must be >= 1.0")
        if max_partition_classes is not None and max_partition_classes < 1:
            raise ServeError("max_partition_classes must be >= 1")
        self.platform = platform
        self.plan_cache = plan_cache
        self.queue_capacity = queue_capacity
        self.max_impact_ratio = max_impact_ratio
        self.max_partition_classes = max_partition_classes
        self.cumulative_impact = cumulative_impact
        self._schedulable = frozenset(platform.schedulable_classes())

    # ------------------------------------------------------------------
    def evaluate(
        self,
        spec: TenantSpec,
        placement: PlacementMap,
        running: Mapping[str, TenantRecord],
        queued: int,
    ) -> AdmissionDecision:
        """Evaluate one submission against the current placement."""
        plan = self.plan_cache.plan_for(spec.application)

        unservable = spec.required_classes - self._schedulable
        if unservable:
            return AdmissionDecision(
                REJECT,
                f"required PU classes {sorted(unservable)} are not "
                "schedulable on this platform",
            )
        cap = self.max_partition_classes
        if cap is not None and len(spec.required_classes) > cap:
            return AdmissionDecision(
                REJECT,
                f"{len(spec.required_classes)} required PU classes "
                f"exceed the per-tenant partition cap of {cap}",
            )
        coverable = [
            c for c in plan.optimization.candidates
            if spec.required_classes <= set(c.schedule.pu_classes_used)
            and (cap is None
                 or len(set(c.schedule.pu_classes_used)) <= cap)
        ]
        if not coverable:
            return AdmissionDecision(
                REJECT,
                "no cached schedule candidate covers required PU "
                f"classes {sorted(spec.required_classes)} within the "
                "partition cap",
            )

        free = placement.free_classes()
        fitting = [
            c for c in coverable
            if set(c.schedule.pu_classes_used) <= free
        ]
        if not fitting:
            return self._defer(
                spec, queued,
                "required PU classes are held by running tenants "
                "(no-oversubscription)",
            )

        # Pick the candidate: impact ceiling first, then the soft
        # placement preference, then modelled latency under today's
        # load, then offline rank as the deterministic tiebreak.
        best: Optional[ScheduleCandidate] = None
        best_key = None
        best_impact: Dict[str, float] = {}
        for candidate in fitting:
            impact = self._impact(candidate, running)
            worst = max(impact.values(), default=1.0)
            latency = self._loaded_prediction(plan, candidate, running)
            dispreferred = not (
                spec.preferred_classes
                <= set(candidate.schedule.pu_classes_used)
            )
            key = (worst > self.max_impact_ratio, dispreferred,
                   latency, candidate.rank)
            if best_key is None or key < best_key:
                best, best_key, best_impact = candidate, key, impact
        assert best is not None and best_key is not None
        if best_key[0]:
            worst_tenant = max(best_impact, key=lambda t: best_impact[t])
            return self._defer(
                spec, queued,
                f"predicted {best_impact[worst_tenant]:.2f}x slowdown "
                f"on tenant {worst_tenant!r} exceeds the "
                f"{self.max_impact_ratio:.2f}x impact ceiling",
            )
        return AdmissionDecision(
            ADMIT,
            f"candidate rank {best.rank} fits free PUs "
            f"{sorted(set(best.schedule.pu_classes_used))}",
            candidate=best,
            predicted_latency_s=best_key[2],
            predicted_impact=best_impact,
        )

    # ------------------------------------------------------------------
    def _defer(
        self, spec: TenantSpec, queued: int, why: str
    ) -> AdmissionDecision:
        if queued < self.queue_capacity:
            return AdmissionDecision(QUEUE, why)
        return AdmissionDecision(
            REJECT,
            f"{why}; backpressure queue is full "
            f"({queued}/{self.queue_capacity})",
        )

    def _impact(
        self,
        candidate: ScheduleCandidate,
        running: Mapping[str, TenantRecord],
    ) -> Dict[str, float]:
        """Predicted slowdown per running tenant if ``candidate`` runs.

        A co-tenant's interference-heavy table was measured with every
        other PU saturated; admitting a job that occupies a fraction
        ``x`` of the co-tenant's "other" PUs is modelled as moving its
        latency ``x`` of the way from isolated to interference-heavy.

        In cumulative mode the fraction counts every class that will
        be busy after the admission (incumbents included), so the
        ratio is the co-tenant's predicted total slowdown, not just
        this newcomer's marginal contribution.
        """
        busy_after = set(candidate.schedule.pu_classes_used)
        if self.cumulative_impact:
            for record in running.values():
                busy_after |= set(record.partition)
        impact: Dict[str, float] = {}
        for name, record in running.items():
            if record.plan is None or record.schedule is None:
                continue
            others = self._schedulable - set(record.partition)
            if not others:
                impact[name] = 1.0
                continue
            fraction = len(busy_after & others) / len(others)
            span = record.plan.contention_span(record.schedule)
            impact[name] = 1.0 + fraction * (span - 1.0)
        return impact

    def _loaded_prediction(
        self,
        plan,
        candidate: ScheduleCandidate,
        running: Mapping[str, TenantRecord],
    ) -> float:
        """The candidate's latency given today's co-tenants, by the
        same isolated->interference interpolation."""
        own = set(candidate.schedule.pu_classes_used)
        others = self._schedulable - own
        busy = set()
        for record in running.values():
            busy |= set(record.partition)
        fraction = len(busy & others) / len(others) if others else 0.0
        isolated = plan.isolated_prediction(candidate.schedule)
        interference = plan.interference_prediction(candidate.schedule)
        return isolated + fraction * (interference - isolated)
