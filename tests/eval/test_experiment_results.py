"""Unit tests for the experiment result classes (no heavy runs)."""

import pytest

from repro.eval.experiments.fig4 import Fig4Cell, Fig4Result
from repro.eval.experiments.fig5 import Fig5Result, Fig5Series
from repro.eval.experiments.fig6 import Fig6Result
from repro.eval.experiments.fig7 import Fig7Result
from repro.eval.experiments.table3 import Table3Result
from repro.baselines.homogeneous import BaselineResult


class TestFig4Result:
    def make(self):
        cells = {}
        data = {
            ("alexnet-dense", "pixel7a"): (1.0, 2.0),
            ("alexnet-sparse", "pixel7a"): (1.0, 4.0),
            ("octree", "pixel7a"): (1.0, 8.0),
            ("alexnet-dense", "jetson_orin_nano"): (1.0, 1.1),
            ("alexnet-sparse", "jetson_orin_nano"): (1.0, 1.2),
            ("octree", "jetson_orin_nano"): (1.0, 1.3),
        }
        for key, (bt, base) in data.items():
            cells[key] = Fig4Cell(
                bt_latency_s=bt, baseline_latency_s=base,
                baseline_name="gpu", schedule="x",
            )
        return Fig4Result(cells=cells)

    def test_platform_geomean(self):
        result = self.make()
        assert result.platform_geomean("pixel7a") == pytest.approx(4.0)

    def test_overall_geomean(self):
        result = self.make()
        expected = (2.0 * 4.0 * 8.0 * 1.1 * 1.2 * 1.3) ** (1 / 6)
        assert result.overall_geomean == pytest.approx(expected)

    def test_max_speedup(self):
        key, value = self.make().max_speedup
        assert key == ("octree", "pixel7a")
        assert value == pytest.approx(8.0)


class TestFig5Series:
    def test_correlation_and_error(self):
        series = Fig5Series(predicted_s=[1.0, 2.0, 3.0],
                            measured_s=[1.1, 2.2, 3.3])
        assert series.correlation == pytest.approx(1.0)
        assert series.mean_abs_error_frac == pytest.approx(1 / 11)

    def test_constant_predictions_read_as_zero_power(self):
        series = Fig5Series(predicted_s=[2.0, 2.0, 2.0],
                            measured_s=[1.0, 2.0, 3.0])
        assert series.correlation == 0.0

    def test_bt_beats_prior_flows(self):
        good = Fig5Series([1, 2, 3], [1, 2, 3])
        bad = Fig5Series([1, 2, 3], [3, 1, 2])
        result = Fig5Result(series={
            "bettertogether": good, "latency-only": bad, "isolated": bad,
        })
        assert result.bt_beats_prior_flows()


class TestFig6Result:
    def make(self):
        keys = [
            (app, plat)
            for app in ("alexnet-dense", "alexnet-sparse", "octree")
            for plat in ("pixel7a", "jetson_orin_nano")
        ]
        bt = {key: 0.95 for key in keys}
        iso = {key: (0.9 if key[0] == "alexnet-dense" else 0.6)
               for key in keys}
        return Fig6Result(bettertogether=bt, isolated=iso)

    def test_means(self):
        result = self.make()
        assert result.mean_correlation("bettertogether") == pytest.approx(
            0.95
        )
        assert result.bt_mean_exceeds_isolated()

    def test_sparse_tree_gap(self):
        assert self.make().sparse_tree_gap() == pytest.approx(0.35)


class TestFig7Result:
    def test_direction_matching(self):
        result = Fig7Result(ratios={
            ("pixel7a", "big"): 1.3,      # paper 1.40 (slowdown) -> ok
            ("pixel7a", "gpu"): 0.9,      # paper 0.86 (speedup) -> ok
            ("oneplus11", "medium"): 1.02,  # paper 1.00 (neutral) -> ok
            ("oneplus11", "little"): 1.2,   # paper 0.63 -> WRONG side
        })
        assert result.direction_matches_paper(("pixel7a", "big"))
        assert result.direction_matches_paper(("pixel7a", "gpu"))
        assert result.direction_matches_paper(("oneplus11", "medium"))
        assert not result.direction_matches_paper(("oneplus11", "little"))
        assert result.directions_matching() == 3


class TestTable3Result:
    def test_winner_counting(self):
        cells = {
            ("alexnet-dense", "pixel7a"): BaselineResult(
                application="alexnet-dense", platform="pixel7a",
                cpu_latency_s=10.0, gpu_latency_s=1.0,
            ),
            ("octree", "pixel7a"): BaselineResult(
                application="octree", platform="pixel7a",
                cpu_latency_s=5.0, gpu_latency_s=1.0,  # paper says cpu!
            ),
        }
        result = Table3Result(cells=cells)
        assert result.winner("alexnet-dense", "pixel7a") == "gpu"
        assert result.winners_matching_paper() == 1
        assert result.total_cells == 2
