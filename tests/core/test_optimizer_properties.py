"""Property-based validation of BT-Optimizer against brute force.

For random profiling tables, the solver-based optimizer must find
exactly the optima that exhaustive enumeration over all contiguous
schedules finds - both for the gapness objective (level 1) and for
latency-under-threshold (level 2's first candidate).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Application, Stage
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import ProfilingTable
from repro.core.schedule import enumerate_schedules
from repro.soc import WorkProfile


def make_case(latencies):
    """latencies: list of per-stage lists, one column per PU."""
    n = len(latencies)
    m = len(latencies[0])
    pus = tuple(f"pu{j}" for j in range(m))
    app = Application(
        "prop",
        [Stage.model_only(f"s{i}", WorkProfile(flops=1.0, bytes_moved=1.0))
         for i in range(n)],
    )
    entries = {
        (f"s{i}", pus[j]): latencies[i][j]
        for i in range(n)
        for j in range(m)
    }
    table = ProfilingTable(
        application="prop", platform="test", mode="interference",
        entries=entries, stage_names=app.stage_names, pu_classes=pus,
    )
    return app, table


latency_tables = st.integers(min_value=2, max_value=6).flatmap(
    lambda n: st.integers(min_value=1, max_value=3).flatmap(
        lambda m: st.lists(
            st.lists(
                st.floats(min_value=0.01, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                min_size=m, max_size=m,
            ),
            min_size=n, max_size=n,
        )
    )
)


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(latency_tables)
    def test_gapness_optimum_is_global(self, latencies):
        app, table = make_case(latencies)
        best = BTOptimizer(app, table).optimize_utilization()
        brute = min(
            s.gapness(app, table)
            for s in enumerate_schedules(app.num_stages, table.pu_classes)
        )
        assert best.gapness_s == pytest.approx(brute, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(latency_tables)
    def test_unfiltered_latency_optimum_is_global(self, latencies):
        app, table = make_case(latencies)
        result = BTOptimizer(app, table, k=1,
                             gap_slack=math.inf).optimize()
        brute = min(
            s.predicted_latency(app, table)
            for s in enumerate_schedules(app.num_stages, table.pu_classes)
        )
        assert result.best.predicted_latency_s == pytest.approx(
            brute, abs=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(latency_tables)
    def test_filtered_optimum_respects_threshold_and_is_best(
        self, latencies
    ):
        app, table = make_case(latencies)
        result = BTOptimizer(app, table, k=1).optimize()
        threshold = result.gap_threshold_s
        feasible = [
            s for s in enumerate_schedules(app.num_stages, table.pu_classes)
            if s.gapness(app, table) <= threshold + 1e-9
        ]
        assert feasible, "threshold always admits the gapness optimum"
        brute = min(s.predicted_latency(app, table) for s in feasible)
        assert result.best.predicted_latency_s == pytest.approx(
            brute, abs=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(latency_tables)
    def test_enumeration_is_exhaustive_and_distinct(self, latencies):
        app, table = make_case(latencies)
        space = enumerate_schedules(app.num_stages, table.pu_classes)
        result = BTOptimizer(app, table, k=len(space) + 5,
                             gap_slack=math.inf).optimize()
        assert len(result.candidates) == len(space)
        seen = {c.schedule.assignments for c in result.candidates}
        assert len(seen) == len(space)

    @settings(max_examples=25, deadline=None)
    @given(latency_tables)
    def test_candidate_predictions_are_self_consistent(self, latencies):
        app, table = make_case(latencies)
        result = BTOptimizer(app, table, k=5).optimize()
        for candidate in result.candidates:
            assert candidate.predicted_latency_s == pytest.approx(
                candidate.schedule.predicted_latency(app, table)
            )
            assert candidate.gapness_s == pytest.approx(
                candidate.schedule.gapness(app, table)
            )
