"""Shared fixtures: a small, fast workload and fleet for unit tests.

The overload acceptance tests (:mod:`tests.traffic.test_overload_soak`)
run the shipped :class:`~repro.traffic.FleetOverloadScenario` verbatim;
everything else uses this scaled-down spec so generator/driver/trace
mechanics are exercised in well under a second.
"""

import pytest

from repro.traffic import BurstSpec, FleetOverloadScenario, TrafficSpec


@pytest.fixture()
def small_spec():
    return TrafficSpec(
        ticks=10,
        arrivals_per_tick=0.8,
        diurnal_amplitude=0.3,
        diurnal_period_ticks=10,
        bursts=(BurstSpec(start_tick=3, end_tick=6, multiplier=2.0),),
        app_pool_size=3,
        stage_count=2,
    )


@pytest.fixture()
def small_scenario():
    return FleetOverloadScenario(
        ticks=10,
        n_shards=1,
        saturation_arrivals_per_tick=0.8,
        load_multiplier=1.0,
        burst_start_tick=3,
        burst_end_tick=6,
        stage_count=2,
    )
