"""Lint fixture (never imported): a suppressed real finding."""

import time


def stamp():
    return time.time()  # bt-lint: disable=WALL-CLOCK
