"""Command-line interface: ``python -m repro <command>``.

Mirrors how the paper's C++ tool is driven: point it at an application
and a target system, get back profiling tables, candidate schedules, a
deployed plan, or the full evaluation report.

Commands:

* ``platforms`` / ``apps``     - list registered targets / workloads
* ``profile``                  - collect a profiling table (optionally save JSON)
* ``plan``                     - run the end-to-end flow, print the plan
* ``baselines``                - measure CPU-only / GPU-only baselines
* ``analyze``                  - affinity spreads, speedup bounds, schedule explanation
* ``gantt``                    - render the deployed pipeline's Gantt chart
* ``report``                   - regenerate every paper table/figure
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import APPLICATION_BUILDERS
from repro.baselines import measure_baselines
from repro.core import BetterTogether
from repro.core.profiler import INTERFERENCE, MODES, BTProfiler
from repro.eval.experiments import ExperimentScale
from repro.eval.metrics import format_table
from repro.runtime import SimulatedPipelineExecutor, format_gantt
from repro.serialization import save
from repro.soc import PLATFORM_NAMES, get_platform
from repro.soc.platforms import _BUILDERS as _ALL_PLATFORMS


def _build_app(name: str):
    try:
        builder = APPLICATION_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATION_BUILDERS))
        raise SystemExit(f"unknown application {name!r}; known: {known}")
    return builder()


def _platform(name: str):
    from repro.errors import PlatformError

    try:
        return get_platform(name)
    except PlatformError as exc:
        raise SystemExit(str(exc))


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_platforms(args: argparse.Namespace) -> int:
    """List registered platforms (paper grid starred)."""
    for name in _ALL_PLATFORMS:
        platform = get_platform(name)
        marker = "*" if name in PLATFORM_NAMES else " "
        print(f"{marker} {name}: {platform.display_name} "
              f"({platform.soc_model})")
    print("\n* = part of the paper's evaluation grid")
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    """List registered applications."""
    for name, builder in APPLICATION_BUILDERS.items():
        app = builder()
        print(f"{name}: {app.num_stages} stages - {app.description}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Collect and print a profiling table; optionally save JSON."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    profiler = BTProfiler(platform, repetitions=args.repetitions)
    table = profiler.profile(application, mode=args.mode)
    print(f"profiling table ({args.mode}) for {application.name} on "
          f"{platform.display_name} (ms):")
    print(format_table(table.to_rows()))
    if args.out:
        save(table, args.out)
        print(f"saved to {args.out}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Run the end-to-end flow and print the deployment plan."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks,
    )
    plan = framework.run(application)
    print(plan.summary())
    if args.out:
        save(plan.schedule, args.out)
        print(f"schedule saved to {args.out}")
    return 0


def cmd_baselines(args: argparse.Namespace) -> int:
    """Measure the homogeneous CPU-only / GPU-only baselines."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    result = measure_baselines(application, platform,
                               n_tasks=args.eval_tasks)
    cpu, gpu = result.as_row()
    print(f"{application.name} on {platform.display_name}: "
          f"CPU-only {cpu} ms | GPU-only {gpu} ms "
          f"(best: {result.best_name})")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Affinity report, speedup bound, schedule explanation, memory."""
    from repro.eval.analysis import (
        explain_schedule,
        format_affinity_report,
        format_explanation,
        speedup_bounds,
        stage_affinity_report,
    )
    from repro.runtime import estimate_pipeline_memory

    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks,
    )
    table = framework.profile(application)
    print("per-stage PU affinities:")
    print(format_affinity_report(stage_affinity_report(application,
                                                       table)))
    bounds = speedup_bounds(
        application, table.restricted(platform.schedulable_classes())
    )
    print("\nspeedup ceiling on "
          f"{platform.display_name}: {bounds.max_speedup:.2f}x")
    optimization = framework.optimize(application, table)
    autotune = framework.autotune(application, optimization)
    winner = autotune.measured_best.candidate
    print(f"\ndeployed schedule (candidate #{winner.rank + 1}):")
    print(format_explanation(
        explain_schedule(application, winner.schedule, table)
    ))
    if application.make_task is not None:
        depth = len(winner.schedule.chunks()) + 1
        memory = estimate_pipeline_memory(application, depth)
        print(f"\nmemory: {memory.total_mib:.1f} MiB "
              f"({depth} TaskObjects x "
              f"{memory.per_task_bytes / 1024 / 1024:.1f} MiB)")
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    """Deploy a plan and render its execution Gantt chart."""
    platform = _platform(args.platform)
    application = _build_app(args.app)
    framework = BetterTogether(
        platform, repetitions=args.repetitions, k=args.k,
        eval_tasks=args.eval_tasks,
    )
    plan = framework.run(application)
    print(plan.summary())
    executor = SimulatedPipelineExecutor(
        application, plan.schedule.chunks(), platform
    )
    result = executor.run(args.tasks, record_trace=True)
    print()
    print(format_gantt(result.spans, width=args.width))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every paper table/figure as one text report."""
    from repro.eval.reporting import generate_report

    scale = (ExperimentScale.quick() if args.quick
             else ExperimentScale.paper())
    text = generate_report(scale=scale, progress=lambda line: print(
        line, file=sys.stderr))
    print(text)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", default="pixel7a",
                        help="target platform (see `platforms`)")
    parser.add_argument("--app", default="octree",
                        help="application (see `apps`)")
    parser.add_argument("--repetitions", type=int, default=30,
                        help="profiling repetitions per table entry")
    parser.add_argument("--k", type=int, default=20,
                        help="optimizer candidate count")
    parser.add_argument("--eval-tasks", type=int, default=30,
                        help="tasks per measurement run")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BetterTogether: interference-aware software "
                    "pipelining on heterogeneous SoCs (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list registered platforms"
                   ).set_defaults(fn=cmd_platforms)
    sub.add_parser("apps", help="list registered applications"
                   ).set_defaults(fn=cmd_apps)

    p = sub.add_parser("profile", help="collect a profiling table")
    _add_target_args(p)
    p.add_argument("--mode", choices=MODES, default=INTERFERENCE)
    p.add_argument("--out", help="save the table as JSON")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("plan", help="run the end-to-end flow")
    _add_target_args(p)
    p.add_argument("--out", help="save the deployed schedule as JSON")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("baselines", help="measure homogeneous baselines")
    _add_target_args(p)
    p.set_defaults(fn=cmd_baselines)

    p = sub.add_parser("analyze",
                       help="affinity report, bounds, explanation")
    _add_target_args(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("gantt", help="render the deployed pipeline")
    _add_target_args(p)
    p.add_argument("--tasks", type=int, default=8)
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(fn=cmd_gantt)

    p = sub.add_parser("report",
                       help="regenerate every paper table/figure")
    p.add_argument("--quick", action="store_true",
                   help="reduced scale for a fast smoke run")
    p.set_defaults(fn=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
