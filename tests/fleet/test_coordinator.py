"""Failover atomicity: evacuate, relocate-or-rollback, priority shed.

These tests drive the router's internals directly on the test thread -
shards are booted by hand and never stepped - so every admission and
rollback is observable without racing a fleet loop.
"""

import pytest

from repro.apps.synthetic import build_synthetic_application
from repro.fleet import (
    SHED,
    FleetConfig,
    FleetRouter,
    FleetTenant,
    ShardSpec,
)
from repro.serve.admission import ADMIT
from repro.serve.tenant import EVICTED, RUNNING, TenantSpec

#: pixel7a's PU classes; a tenant pinned to one class occupies exactly
#: one partition slot, making shard capacity structural (4 slots).
CLASSES = ("big", "medium", "little", "gpu")


def _fleet():
    # Impact admission is effectively disabled so capacity comes only
    # from partition slots - the knob the rollback tests manipulate.
    router = FleetRouter(
        [ShardSpec("s0"), ShardSpec("s1")],
        seed=3,
        config=FleetConfig(max_ticks=64, max_impact_ratio=1e9),
    )
    for shard in router.shards:
        shard.boot()
    return router


def _admit(router, shard, name, priority=0, required=(), windows=30):
    app = build_synthetic_application(seed=11, stage_count=2)
    spec = TenantSpec(name=name, application=app, priority=priority,
                      windows=windows, window_tasks=4,
                      required_classes=frozenset(required))
    tenant = FleetTenant(spec=spec, arrival=router._arrival_counter)
    router._arrival_counter += 1
    router.tenants[name] = tenant
    decision = shard.server.try_admit(spec, tick=0)
    assert decision.action == ADMIT, decision
    router.commit_placement(tenant, shard, 0, "place")
    return tenant


def _admits_for(shard, tenant_name):
    return [e for e in shard.server.timeline
            if e["event"] == "admit" and e["tenant"] == tenant_name]


class TestEvacuation:
    def test_live_shard_drain_withdraws_from_the_server(self):
        router = _fleet()
        s0, s1 = router.shards
        _admit(router, s0, "t-a", priority=1)
        _admit(router, s0, "t-b", priority=0)

        router.coordinator.failover(s0, tick=5, cause="SLO breach")

        # Both tenants were withdrawn (not lost) and landed on s1.
        withdrawn = [e["tenant"] for e in s0.server.timeline
                     if e["event"] == "withdraw"]
        assert sorted(withdrawn) == ["t-a", "t-b"]
        for name in ("t-a", "t-b"):
            assert s0.server.records[name].status == EVICTED
            tenant = router.tenants[name]
            assert tenant.status == RUNNING
            assert tenant.shard == "s1"
            assert tenant.shard_history == ["s0", "s1"]
            assert tenant.migrations == 1
        failovers = [e for e in router.timeline
                     if e["event"] == "failover"]
        assert len(failovers) == 1
        assert failovers[0]["displaced"] == 2
        assert router.coordinator.failovers == 1

    def test_empty_shard_failover_is_a_no_op(self):
        router = _fleet()
        s0, _ = router.shards
        router.coordinator.failover(s0, tick=5, cause="whatever")
        assert router.coordinator.failovers == 0
        assert router.timeline == []


class TestAtomicRollback:
    def test_partial_placement_rolls_back_then_sheds_lowest(self):
        router = _fleet()
        s0, s1 = router.shards
        # s1 keeps exactly ONE free slot (gpu); the failover batch of
        # two cannot fully land on the first attempt.
        for cls in ("big", "medium", "little"):
            _admit(router, s1, f"filler-{cls}", required=(cls,))
        t_low = _admit(router, s0, "t-low", priority=0)
        t_high = _admit(router, s0, "t-high", priority=2)
        s0.close(detail="crashed under test")

        router.coordinator.failover(s0, tick=9, cause="s0 crashed")

        # Attempt 1 placed t-high, got stuck on t-low, rescinded
        # t-high; attempt 2 placed t-high again.  Two admissions on s1
        # is the rollback's signature.
        assert len(_admits_for(s1, "t-high")) == 2
        assert t_high.status == RUNNING
        assert t_high.shard == "s1"
        assert t_low.status == SHED
        assert "could not absorb" in t_low.status_detail
        assert _admits_for(s1, "t-low") == []
        # s1 came out coherent: three fillers plus t-high, and the
        # partition map checks out.
        running = s1.server.running_records()
        assert sorted(running) == [
            "filler-big", "filler-little", "filler-medium", "t-high",
        ]
        s1.server.placement.check()
        shed_events = [e for e in router.timeline
                       if e["event"] == "shed"]
        assert [e["tenant"] for e in shed_events] == ["t-low"]
        assert shed_events[0]["priority"] == 0

    def test_saturated_fleet_sheds_whole_batch_untouched(self):
        router = _fleet()
        s0, s1 = router.shards
        for cls in CLASSES:
            _admit(router, s1, f"filler-{cls}", required=(cls,))
        t_low = _admit(router, s0, "t-low", priority=0)
        t_high = _admit(router, s0, "t-high", priority=2)
        s0.close(detail="crashed under test")

        router.coordinator.failover(s0, tick=9, cause="s0 crashed")

        # Shedding order is priority-ascending: t-low first, then
        # t-high once even the singleton batch cannot land.
        shed = [e["tenant"] for e in router.timeline
                if e["event"] == "shed"]
        assert shed == ["t-low", "t-high"]
        assert t_low.status == SHED
        assert t_high.status == SHED
        # s1 never saw the batch - no admissions, fillers untouched.
        assert _admits_for(s1, "t-high") == []
        assert _admits_for(s1, "t-low") == []
        assert sorted(s1.server.running_records()) == [
            f"filler-{cls}" for cls in sorted(CLASSES)
        ]

    def test_batch_relocation_is_priority_ordered(self):
        router = _fleet()
        s0, s1 = router.shards
        # Two free slots on s1; three displaced tenants of distinct
        # priorities: the two highest land, the lowest is shed.
        for cls in ("big", "medium"):
            _admit(router, s1, f"filler-{cls}", required=(cls,))
        t0 = _admit(router, s0, "t-p0", priority=0)
        t1 = _admit(router, s0, "t-p1", priority=1)
        t2 = _admit(router, s0, "t-p2", priority=2)
        s0.close(detail="crashed under test")

        router.coordinator.failover(s0, tick=9, cause="s0 crashed")

        assert t2.status == RUNNING and t2.shard == "s1"
        assert t1.status == RUNNING and t1.shard == "s1"
        assert t0.status == SHED
