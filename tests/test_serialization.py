"""Tests for JSON persistence of framework artifacts."""

import json

import pytest

from repro.apps import build_octree_application
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import BTProfiler
from repro.core.schedule import Schedule
from repro.serialization import (
    SerializationError,
    load,
    optimization_from_dict,
    optimization_to_dict,
    profiling_table_from_dict,
    profiling_table_to_dict,
    save,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.soc import get_platform


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


@pytest.fixture(scope="module")
def table(pixel, app):
    return BTProfiler(pixel, repetitions=3).profile(app)


@pytest.fixture(scope="module")
def optimization(pixel, app, table):
    return BTOptimizer(
        app, table.restricted(pixel.schedulable_classes()), k=6
    ).optimize()


class TestProfilingTableRoundTrip:
    def test_round_trip_preserves_entries(self, table):
        restored = profiling_table_from_dict(profiling_table_to_dict(table))
        assert restored.stage_names == table.stage_names
        assert restored.pu_classes == table.pu_classes
        assert restored.mode == table.mode
        for stage in table.stage_names:
            for pu in table.pu_classes:
                assert restored.latency(stage, pu) == table.latency(
                    stage, pu
                )

    def test_file_round_trip(self, table, tmp_path):
        path = tmp_path / "table.json"
        save(table, path)
        restored = load(path)
        assert restored.latency(
            table.stage_names[0], table.pu_classes[0]
        ) == table.latency(table.stage_names[0], table.pu_classes[0])

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            profiling_table_from_dict(
                {"kind": "profiling_table", "version": 1}
            )

    def test_wrong_kind_rejected(self, table):
        data = profiling_table_to_dict(table)
        data["kind"] = "schedule"
        with pytest.raises(SerializationError):
            profiling_table_from_dict(data)

    def test_wrong_version_rejected(self, table):
        data = profiling_table_to_dict(table)
        data["version"] = 99
        with pytest.raises(SerializationError):
            profiling_table_from_dict(data)


class TestScheduleRoundTrip:
    def test_round_trip(self):
        schedule = Schedule.from_assignments(
            ["big", "big", "gpu", "little"]
        )
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored.assignments == schedule.assignments

    def test_contiguity_enforced_on_load(self):
        data = schedule_to_dict(Schedule.homogeneous(3, "big"))
        data["assignments"] = ["big", "gpu", "big"]
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            schedule_from_dict(data)


class TestOptimizationRoundTrip:
    def test_round_trip_preserves_candidates(self, optimization):
        restored = optimization_from_dict(
            optimization_to_dict(optimization)
        )
        assert len(restored.candidates) == len(optimization.candidates)
        for a, b in zip(restored.candidates, optimization.candidates):
            assert a.rank == b.rank
            assert a.schedule.assignments == b.schedule.assignments
            assert a.predicted_latency_s == b.predicted_latency_s
        assert restored.gap_threshold_s == optimization.gap_threshold_s

    def test_restored_candidates_feed_autotuner(self, optimization, app,
                                                pixel, tmp_path):
        """A cached campaign can be resumed on-device (the operational
        point of serialization)."""
        from repro.core.autotuner import Autotuner

        path = tmp_path / "opt.json"
        save(optimization, path)
        restored = load(path)
        tuned = Autotuner(app, pixel, eval_tasks=8).tune(restored, top=3)
        assert len(tuned.entries) == 3


class TestFileDispatch:
    def test_load_dispatches_on_kind(self, table, tmp_path):
        table_path = tmp_path / "t.json"
        schedule_path = tmp_path / "s.json"
        save(table, table_path)
        save(Schedule.homogeneous(2, "gpu"), schedule_path)
        from repro.core.profiler import ProfilingTable

        assert isinstance(load(table_path), ProfilingTable)
        assert isinstance(load(schedule_path), Schedule)

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save(object(), tmp_path / "x.json")

    def test_untagged_file_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(SerializationError):
            load(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "mystery", "version": 1}))
        with pytest.raises(SerializationError):
            load(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load(tmp_path / "missing.json")
