"""Virtual heterogeneous-SoC substrate.

Stands in for the physical devices of the paper's evaluation (Google Pixel
7a, OnePlus 11, NVIDIA Jetson Orin Nano in two power modes).  Provides
processing-unit models, a roofline cost model, the intra-application
interference model the paper is built around, affinity maps, virtual
timers with deterministic measurement noise, and a registry of the four
calibrated platforms.
"""

from repro.soc.affinity import AffinityEntry, AffinityMap
from repro.soc.cost_model import CostBreakdown, cpu_cost, gpu_cost, pu_cost
from repro.soc.interference import (
    DvfsCurve,
    ExternalLoad,
    InterferenceModel,
    co_load_fraction,
    external_co_load,
)
from repro.soc.platform import Platform
from repro.soc.energy import (
    EnergyReport,
    PowerSpec,
    estimate_energy,
    power_table,
)
from repro.soc.platforms import (
    PLATFORM_NAMES,
    all_platforms,
    get_platform,
    jetson_orin_nano,
    jetson_orin_nano_lp,
    oneplus_11,
    pixel_7a,
    raspberry_pi5,
)
from repro.soc.pu import (
    ALL_CLASSES,
    BIG,
    CPU_CLASSES,
    GPU,
    LITTLE,
    MEDIUM,
    CpuCluster,
    Gpu,
)
from repro.soc.timer import MeasurementNoise, VirtualTimer, mean_of_measurements
from repro.soc.workprofile import WorkProfile

__all__ = [
    "ALL_CLASSES",
    "AffinityEntry",
    "AffinityMap",
    "BIG",
    "CPU_CLASSES",
    "CostBreakdown",
    "CpuCluster",
    "DvfsCurve",
    "EnergyReport",
    "ExternalLoad",
    "GPU",
    "Gpu",
    "InterferenceModel",
    "LITTLE",
    "MEDIUM",
    "MeasurementNoise",
    "PLATFORM_NAMES",
    "Platform",
    "PowerSpec",
    "VirtualTimer",
    "WorkProfile",
    "all_platforms",
    "co_load_fraction",
    "cpu_cost",
    "estimate_energy",
    "external_co_load",
    "get_platform",
    "gpu_cost",
    "jetson_orin_nano",
    "jetson_orin_nano_lp",
    "mean_of_measurements",
    "oneplus_11",
    "pixel_7a",
    "power_table",
    "pu_cost",
    "raspberry_pi5",
]
