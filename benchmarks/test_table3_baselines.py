"""Benchmark + shape check for Table 3 (homogeneous baselines)."""

from benchmarks.conftest import run_once
from repro.eval.experiments import PAPER_WINNERS, format_table3, run_table3


def test_table3_baseline_winners(benchmark, paper_scale):
    result = run_once(benchmark, run_table3, paper_scale)
    print("\n" + format_table3(result))

    # The reproduction contract for Table 3: every cell's CPU-vs-GPU
    # winner matches the paper's.
    assert result.winners_matching_paper() == len(PAPER_WINNERS)

    # Crossover factors, roughly: the Jetson GPU wins Octree by >2x
    # (paper 3.05x) while the phones' CPUs win it by >2x.
    jetson = result.cells[("octree", "jetson_orin_nano")]
    assert jetson.cpu_latency_s > 2.0 * jetson.gpu_latency_s
    pixel = result.cells[("octree", "pixel7a")]
    assert pixel.gpu_latency_s > 2.0 * pixel.cpu_latency_s
    # Dense CNNs: GPUs dominate by >an order of magnitude on phones.
    dense = result.cells[("alexnet-dense", "pixel7a")]
    assert dense.cpu_latency_s > 10 * dense.gpu_latency_s
    # AlexNet-sparse sits near parity on the Pixel (paper: 8.51 vs 8.35).
    sparse = result.cells[("alexnet-sparse", "pixel7a")]
    ratio = sparse.cpu_latency_s / sparse.gpu_latency_s
    assert 0.7 < ratio < 1.7
