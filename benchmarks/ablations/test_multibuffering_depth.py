"""Ablation: TaskObject multi-buffering depth (section 3.4).

One TaskObject serializes the pipeline; the paper's multi-buffering is
what lets chunks overlap.  Diminishing returns past #chunks + 1.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_octree_application
from repro.core.framework import BetterTogether
from repro.runtime import SimulatedPipelineExecutor
from repro.soc import get_platform


def test_multibuffering_depth(benchmark):
    platform = get_platform("pixel7a")
    application = build_octree_application()
    plan = BetterTogether(platform, repetitions=10, k=10,
                          eval_tasks=15).run(application)
    chunks = plan.schedule.chunks()

    def sweep():
        intervals = {}
        for depth in (1, 2, len(chunks), len(chunks) + 1,
                      2 * len(chunks) + 2):
            executor = SimulatedPipelineExecutor(
                application, chunks, platform, depth=depth
            )
            intervals[depth] = executor.run(25).steady_interval_s
        return intervals

    intervals = run_once(benchmark, sweep)
    print("\nsteady per-task interval by multi-buffering depth:")
    for depth, interval in sorted(intervals.items()):
        print(f"  depth={depth}: {interval * 1e3:.3f} ms")
    depths = sorted(intervals)
    # depth=1 is serial and clearly slower than full multi-buffering.
    assert intervals[1] > 1.3 * intervals[depths[-1]]
    # Diminishing returns: going beyond #chunks+1 changes little.
    full = intervals[len(chunks) + 1]
    beyond = intervals[2 * len(chunks) + 2]
    assert abs(beyond - full) < 0.1 * full
