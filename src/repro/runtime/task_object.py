"""TaskObject: everything one streaming input needs, pre-allocated.

Paper section 3.4: a TaskObject holds all memory buffers and metadata
required to run an application end-to-end - unified buffers, host/device
scratch, and scalar constants - allocated once and recycled between tasks
so the steady-state pipeline never allocates.

The object behaves like a mutable mapping from buffer name to the numpy
array (the *unified* view), which is the interface the compute kernels
consume; richer access (scoped views, attach hints) goes through
:meth:`buffer`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, MutableMapping, Optional

import numpy as np

from repro.errors import PipelineError
from repro.runtime.usm import UsmBuffer


class TaskObject(MutableMapping):
    """A recyclable container of buffers and constants for one task."""

    def __init__(self, task_id: int = 0):
        self.task_id = task_id
        self.sequence = task_id  # updated on every recycle
        self._buffers: Dict[str, UsmBuffer] = {}
        self._constants: Dict[str, object] = {}
        self._generation = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def allocate(self, name: str, shape, dtype, scope: str = "unified") -> UsmBuffer:
        """Pre-allocate a named buffer (refuses duplicates)."""
        if name in self._buffers:
            raise PipelineError(f"buffer {name!r} already allocated")
        buffer = UsmBuffer(name, tuple(np.atleast_1d(shape).tolist())
                           if not isinstance(shape, tuple) else shape,
                           dtype, scope=scope)
        self._buffers[name] = buffer
        return buffer

    def adopt(self, name: str, array: np.ndarray) -> UsmBuffer:
        """Wrap an existing array's shape/dtype as a unified buffer and
        copy its contents in (used when loading inputs)."""
        buffer = self.allocate(name, array.shape, array.dtype)
        np.copyto(buffer.host_view(), array)
        return buffer

    def set_constant(self, name: str, value) -> None:
        """Attach a scalar parameter (e.g. input dimensions)."""
        self._constants[name] = value

    def constant(self, name: str):
        """Read a scalar parameter."""
        try:
            return self._constants[name]
        except KeyError:
            raise PipelineError(f"no constant {name!r}") from None

    @property
    def constants(self) -> Mapping[str, object]:
        return dict(self._constants)

    # ------------------------------------------------------------------
    # Mapping interface: kernels index buffers by name.
    # ------------------------------------------------------------------
    def buffer(self, name: str) -> UsmBuffer:
        """The named UsmBuffer object (for scoped views/hints)."""
        try:
            return self._buffers[name]
        except KeyError:
            raise PipelineError(f"no buffer {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.buffer(name).host_view()

    def __setitem__(self, name: str, array: np.ndarray) -> None:
        if name in self._buffers:
            target = self.buffer(name).host_view()
            np.copyto(target, array)
        else:
            self.adopt(name, np.asarray(array))

    def __delitem__(self, name: str) -> None:
        del self._buffers[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._buffers)

    def __len__(self) -> int:
        return len(self._buffers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def synchronize_for(self, pu_class: str,
                        names: Optional[Mapping] = None) -> None:
        """Issue coherence hints for the buffers a chunk is about to use
        (dispatcher step 2 in paper section 3.4)."""
        targets = names if names is not None else list(self._buffers)
        for name in targets:
            self.buffer(name).attach_async(pu_class)

    def recycle(self, new_sequence: int) -> None:
        """Reset for reuse by a subsequent task (dispatcher recycling)."""
        self.sequence = new_sequence
        self._generation += 1

    @property
    def generation(self) -> int:
        return self._generation

    def total_bytes(self) -> int:
        """Total bytes across all buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TaskObject(id={self.task_id}, seq={self.sequence}, "
            f"{len(self._buffers)} buffers, {self.total_bytes()} bytes)"
        )
