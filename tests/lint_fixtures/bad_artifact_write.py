"""Lint fixture (never imported): RAW-ARTIFACT-WRITE violations."""

import json
from pathlib import Path


def dump(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)
    Path(path).write_text("done")
