"""Tests for the race-checker scenario runner and its CLI."""

import json

from repro.analysis import race, runtime_checks
from repro.analysis.runtime_checks import (
    BUFFER_ALIAS,
    LOCK_ORDER,
    SPSC_PRODUCER,
    USE_AFTER_RELEASE,
)
from repro.cli import main
from repro.core.stage import Chunk
from repro.runtime import ThreadedPipelineExecutor


class TestScenarios:
    def test_clean_pipeline_run_reports_nothing(self):
        log, summary = race.run_clean_phase(tasks=4, stages=4)
        assert len(log) == 0
        assert summary["completed"] == 4

    def test_selftest_detects_every_seeded_kind(self):
        log, missing = race.run_selftest_phase()
        assert missing == []
        for kind in (SPSC_PRODUCER, USE_AFTER_RELEASE, BUFFER_ALIAS,
                     LOCK_ORDER):
            assert log.counts[kind] >= 1

    def test_selftest_is_repeatable_in_one_process(self):
        # Lock-cycle reports dedupe per lock pair; the seeder must use
        # fresh names so a second selftest still detects the inversion.
        _, first_missing = race.run_selftest_phase()
        _, second_missing = race.run_selftest_phase()
        assert first_missing == []
        assert second_missing == []

    def test_run_race_structured_report(self):
        data, exit_code = race.run_race(tasks=4, stages=4, selftest=True)
        assert exit_code == 0
        assert data["tool"] == "repro-race"
        assert data["verdict"] == "ok"
        assert data["phases"]["clean"]["total"] == 0
        assert data["selftest_ok"] is True
        json.dumps(data)  # must be serialisable as-is


class TestExecutorLifetime:
    def test_executor_releases_retired_tasks(self):
        application = race.build_check_app(4)
        seen = []
        result = ThreadedPipelineExecutor(
            application, [Chunk(0, 4, "big")], num_task_objects=2,
        ).run(5, on_complete=lambda task, i: seen.append(task),
              validate=True)
        assert result.completed == 5
        retired = {id(task): task for task in seen}.values()
        assert all(task.released for task in retired)

    def test_release_happens_after_on_complete(self):
        application = race.build_check_app(2)
        with runtime_checks.collecting() as log:
            ThreadedPipelineExecutor(
                application, [Chunk(0, 2, "big")],
            ).run(3, on_complete=lambda task, i: task["trace"],
                  validate=True)
        # Reading buffers inside on_complete is legal: the executor
        # releases only after the completion callback ran.
        assert len(log) == 0


class TestCli:
    def test_race_cli_selftest_json(self, capsys):
        assert main(["race", "--tasks", "2", "--stages", "2",
                     "--selftest", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["verdict"] == "ok"
        assert set(data["phases"]) == {"clean", "selftest"}

    def test_race_cli_text_and_out(self, tmp_path, capsys):
        out_file = tmp_path / "race.json"
        assert main(["race", "--tasks", "2", "--stages", "2",
                     "--out", str(out_file)]) == 0
        text = capsys.readouterr().out
        assert "repro-race report:" in text
        data = json.loads(out_file.read_text())
        assert data["phases"]["clean"]["total"] == 0
