"""Multi-window burn-rate alerting on the tick clock."""

import pytest

from repro.errors import ReproError
from repro.obs.alerts import BurnAlert, BurnRateEvaluator, BurnRateRule


class TestRuleValidation:
    def test_defaults_are_valid(self):
        rule = BurnRateRule()
        assert rule.fast_window < rule.slow_window

    def test_fast_window_must_be_positive(self):
        with pytest.raises(ReproError, match="fast <= slow"):
            BurnRateRule(fast_window=0)

    def test_slow_window_must_dominate_fast(self):
        with pytest.raises(ReproError, match="fast <= slow"):
            BurnRateRule(fast_window=8, slow_window=4)

    def test_budget_bounds(self):
        with pytest.raises(ReproError, match="budget"):
            BurnRateRule(budget=0.0)
        with pytest.raises(ReproError, match="budget"):
            BurnRateRule(budget=1.5)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ReproError, match="threshold"):
            BurnRateRule(threshold=0.0)


class TestEvaluator:
    RULE = BurnRateRule(fast_window=3, slow_window=6, budget=0.1,
                        threshold=2.0)

    def test_all_good_never_alerts(self):
        ev = BurnRateEvaluator(self.RULE)
        for tick in range(12):
            assert ev.observe("k", tick, good=5, bad=0) is None

    def test_sustained_badness_alerts(self):
        ev = BurnRateEvaluator(self.RULE)
        alerts = [ev.observe("k", tick, good=0, bad=5)
                  for tick in range(6)]
        fired = [a for a in alerts if a is not None]
        assert fired
        alert = fired[0]
        assert isinstance(alert, BurnAlert)
        assert alert.fast_burn >= self.RULE.threshold
        assert alert.slow_burn >= self.RULE.threshold

    def test_single_bad_tick_does_not_page(self):
        # The slow window suppresses blips: one bad tick among good
        # ones burns the fast window but not the slow one.
        ev = BurnRateEvaluator(self.RULE)
        for tick in range(5):
            assert ev.observe("k", tick, good=10, bad=0) is None
        assert ev.observe("k", 5, good=0, bad=3) is None

    def test_alert_is_level_triggered(self):
        ev = BurnRateEvaluator(self.RULE)
        for tick in range(6):
            ev.observe("k", tick, good=0, bad=5)
        assert ev.observe("k", 6, good=0, bad=5) is not None
        assert ev.observe("k", 7, good=0, bad=5) is not None

    def test_reset_clears_the_window(self):
        ev = BurnRateEvaluator(self.RULE)
        for tick in range(6):
            ev.observe("k", tick, good=0, bad=5)
        ev.reset("k")
        assert ev.burn_rates("k") == (0.0, 0.0)
        assert ev.observe("k", 6, good=5, bad=0) is None

    def test_keys_are_sorted(self):
        ev = BurnRateEvaluator(self.RULE)
        ev.observe("z", 0, 1, 0)
        ev.observe("a", 0, 1, 0)
        assert ev.keys() == ["a", "z"]

    def test_independent_keys(self):
        ev = BurnRateEvaluator(self.RULE)
        for tick in range(6):
            ev.observe("burning", tick, good=0, bad=5)
            assert ev.observe("healthy", tick, good=5, bad=0) is None
        fast, slow = ev.burn_rates("burning")
        assert fast >= self.RULE.threshold
        assert ev.burn_rates("healthy") == (0.0, 0.0)

    def test_deterministic_replay(self):
        feed = [(0, 5), (2, 3), (0, 5), (5, 0), (1, 4), (0, 5)]

        def run():
            ev = BurnRateEvaluator(self.RULE)
            out = []
            for tick, (good, bad) in enumerate(feed):
                alert = ev.observe("k", tick, good, bad)
                out.append(None if alert is None else alert.to_dict())
            return out

        assert run() == run()

    def test_alert_to_dict_rounds(self):
        alert = BurnAlert(key="k", tick=3, fast_burn=1.23456789012,
                          slow_burn=2.0, threshold=2.0)
        d = alert.to_dict()
        assert d["fast_burn"] == 1.23456789
        assert d["key"] == "k"
        assert d["tick"] == 3
