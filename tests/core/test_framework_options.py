"""Tests for BetterTogether's configuration knobs."""

import pytest

from repro.apps import build_octree_application
from repro.core import BetterTogether
from repro.soc import get_platform


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=10_000)


@pytest.fixture(scope="module")
def platform():
    return get_platform("jetson_orin_nano")


class TestKnobs:
    def test_k_limits_candidates(self, app, platform):
        plan = BetterTogether(platform, repetitions=2, k=3,
                              eval_tasks=6).run(app)
        assert len(plan.optimization.candidates) == 3

    def test_autotune_top_limits_measurements(self, app, platform):
        plan = BetterTogether(platform, repetitions=2, k=6,
                              autotune_top=2, eval_tasks=6).run(app)
        assert len(plan.autotune.entries) == 2
        assert len(plan.optimization.candidates) == 6

    def test_default_autotunes_all_candidates(self, app, platform):
        plan = BetterTogether(platform, repetitions=2, k=4,
                              eval_tasks=6).run(app)
        assert len(plan.autotune.entries) == len(
            plan.optimization.candidates
        )

    def test_gap_slack_zero_keeps_only_tightest(self, app, platform):
        tight = BetterTogether(platform, repetitions=2, k=4,
                               gap_slack=0.0, eval_tasks=6)
        loose = BetterTogether(platform, repetitions=2, k=4,
                               gap_slack=5.0, eval_tasks=6)
        tight_plan = tight.run(app)
        loose_plan = loose.run(app)
        assert (tight_plan.optimization.gap_threshold_s
                < loose_plan.optimization.gap_threshold_s)

    def test_profile_mode_passthrough(self, app, platform):
        framework = BetterTogether(platform, repetitions=2)
        table = framework.profile(app, mode="isolated")
        assert table.mode == "isolated"
