"""Fig. 5: predicted vs. measured latency for the top-20 schedules of
AlexNet-sparse on the Google Pixel, under three modeling flows:

(a) BetterTogether: interference-aware table + gapness filter + latency,
(b) latency-only optimization over the interference-aware table,
(c) the prior-work standard: isolated table + latency-only optimization.

Shape target: (a) correlates strongly; (b) and (c) visibly worse, with
(c) the worst (its predictions are also systematically optimistic - the
paper's motivating example predicted 4.95 ms and measured 7.77 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.prior_models import (
    isolated_latency_only_candidates,
    latency_only_candidates,
)
from repro.core.framework import BetterTogether
from repro.core.profiler import ISOLATED, BTProfiler
from repro.eval.experiments.common import (
    ExperimentScale,
    build_applications,
    measure_candidates,
)
from repro.eval.metrics import format_table, safe_pearson
from repro.soc import get_platform

FLOW_LABELS = {
    "bettertogether": "(a) BetterTogether",
    "latency-only": "(b) latency-only, interference table",
    "isolated": "(c) isolated table, latency-only",
}


@dataclass
class Fig5Series:
    """One subfigure's scatter series (rank-ordered candidates)."""

    predicted_s: List[float]
    measured_s: List[float]

    @property
    def correlation(self) -> float:
        return safe_pearson(self.predicted_s, self.measured_s)

    @property
    def mean_abs_error_frac(self) -> float:
        """Mean |predicted - measured| / measured."""
        return sum(
            abs(p - m) / m
            for p, m in zip(self.predicted_s, self.measured_s)
        ) / len(self.measured_s)


@dataclass
class Fig5Result:
    series: Dict[str, Fig5Series]
    application: str = "alexnet-sparse"
    platform: str = "pixel7a"

    def bt_beats_prior_flows(self) -> bool:
        bt = self.series["bettertogether"].correlation
        return all(
            bt >= self.series[flow].correlation - 1e-9
            for flow in ("latency-only", "isolated")
        )


def run_fig5(scale: ExperimentScale = None,
             app_name: str = "alexnet-sparse",
             platform_name: str = "pixel7a") -> Fig5Result:
    scale = scale or ExperimentScale.paper()
    platform = get_platform(platform_name)
    application = build_applications(scale)[app_name]
    schedulable = platform.schedulable_classes()

    framework = BetterTogether(
        platform, repetitions=scale.repetitions, k=scale.k,
        eval_tasks=scale.eval_tasks,
    )
    interference_table = framework.profile(application)
    isolated_table = BTProfiler(
        platform, repetitions=scale.repetitions
    ).profile(application, mode=ISOLATED)

    flows = {
        "bettertogether": framework.optimize(application,
                                             interference_table),
        "latency-only": latency_only_candidates(
            application,
            interference_table.restricted(schedulable),
            k=scale.k,
        ),
        "isolated": isolated_latency_only_candidates(
            application, platform, k=scale.k, table=isolated_table,
        ),
    }
    series = {}
    for name, optimization in flows.items():
        predicted, measured = measure_candidates(
            application, platform, optimization, scale.eval_tasks
        )
        series[name] = Fig5Series(predicted_s=predicted,
                                  measured_s=measured)
    return Fig5Result(series=series, application=app_name,
                      platform=platform_name)


def format_fig5(result: Fig5Result) -> str:
    rows: List[List[str]] = [
        ["flow", "r (pred vs meas)", "mean |err|"]
    ]
    for name in ("bettertogether", "latency-only", "isolated"):
        s = result.series[name]
        rows.append([
            FLOW_LABELS[name],
            f"{s.correlation:.3f}",
            f"{s.mean_abs_error_frac * 100:.1f}%",
        ])
    check = f"BT correlation is the best: {result.bt_beats_prior_flows()}"
    return (
        f"Fig. 5 - predicted vs measured, top-{len(result.series['bettertogether'].predicted_s)} "
        f"schedules, {result.application} @ {result.platform}\n"
        + format_table(rows) + "\n" + check
    )
