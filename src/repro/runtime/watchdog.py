"""Watchdog supervision for dispatcher threads (extension).

The threaded back-end's queue timeouts catch a pipeline whose *queues*
wedge, but a dispatcher stuck inside a kernel dispatch (driver hang,
runaway kernel, an injected stall) holds its queue slots and blocks the
whole pipeline until the coarse queue timeout finally trips - and then
the run aborts rather than recovers.  This module closes that gap:

* every dispatcher carries a :class:`Heartbeat` it beats around each
  unit of work (task pickup, stage dispatch, idle);
* a :class:`Watchdog` supervisor thread scans the heartbeats and
  detects two conditions per (chunk, task):

  - **deadline overrun** - the chunk has been busy on one task longer
    than ``chunk_deadline_s`` (logged, observability only);
  - **stall** - busy longer than ``stall_timeout_s``: the watchdog
    records the stall and *cancels* the dispatch via the heartbeat's
    cancel event.

Cancellation is cooperative: the dispatcher's cancellable sleep (used
for injected slowdowns and retry backoff) and any kernel that polls the
event observe it and raise :class:`~repro.errors.StallError`, which the
dispatcher routes into the existing recovery machinery - quarantine
under failure isolation (the run completes, the stall is reported in
the :class:`~repro.runtime.faults.FaultReport`), pipeline unwind
otherwise.  Stalls are never retried: a wedged kernel would only wedge
again.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.analysis.lock_order import checked_lock
from repro.errors import PipelineError, StallError
from repro.obs.recorder import recorder
from repro.runtime.faults import (
    DEADLINE_OVERRUN,
    STALL,
    FaultEvent,
    FaultInjector,
)


@dataclass
class WatchdogConfig:
    """Supervision thresholds for one pipeline run.

    Attributes:
        stall_timeout_s: Busy time on one task after which a chunk is
            declared stalled and its dispatch cancelled.
        chunk_deadline_s: Optional softer per-chunk, per-task deadline;
            overruns are logged but not cancelled.  Must not exceed
            ``stall_timeout_s``.
        poll_interval_s: Supervisor scan period (default: a quarter of
            the tightest threshold, clamped to [1 ms, 100 ms]).
    """

    stall_timeout_s: float
    chunk_deadline_s: Optional[float] = None
    poll_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.stall_timeout_s <= 0:
            raise PipelineError("stall_timeout_s must be > 0")
        if self.chunk_deadline_s is not None:
            if self.chunk_deadline_s <= 0:
                raise PipelineError("chunk_deadline_s must be > 0")
            if self.chunk_deadline_s > self.stall_timeout_s:
                raise PipelineError(
                    "chunk_deadline_s must not exceed stall_timeout_s "
                    "(the stall cancellation would fire first)"
                )
        if self.poll_interval_s is None:
            tightest = self.stall_timeout_s
            if self.chunk_deadline_s is not None:
                tightest = min(tightest, self.chunk_deadline_s)
            self.poll_interval_s = min(max(tightest / 4.0, 0.001), 0.1)
        elif self.poll_interval_s <= 0:
            raise PipelineError("poll_interval_s must be > 0")


class Heartbeat:
    """One dispatcher's liveness record, written by the dispatcher and
    read by the watchdog (all accesses under a single lock)."""

    def __init__(self, chunk_index: int, pu_class: str):
        self.chunk_index = chunk_index
        self.pu_class = pu_class
        #: Set by the watchdog to cancel the in-flight dispatch;
        #: observed by cancellable sleeps and cooperative kernels.
        self.cancel = threading.Event()
        self._lock = checked_lock(f"heartbeat-{chunk_index}.lock")
        self._busy_since: Optional[float] = None
        self._task_id = -1
        self._stage_index = -1
        self._beats = 0

    # -- dispatcher side ----------------------------------------------
    def start_task(self, task_id: int) -> None:
        """The chunk picked up a task; the per-task clock starts."""
        with self._lock:
            # A stale cancellation aimed at a previous task must not
            # poison this one.
            self.cancel.clear()
            self._busy_since = time.monotonic()
            self._task_id = task_id
            self._stage_index = -1
            self._beats += 1

    @property
    def beats(self) -> int:
        """Monotonic count of :meth:`start_task` beats.

        The wall-clock fields above serve the stall scanner; this
        logical counter serves tick-driven health checks (the fleet's
        :class:`~repro.fleet.health.HealthMonitor` compares beat counts
        across fleet ticks, so a shard whose loop stops beating - a
        gray failure - is detected without any wall-clock dependence).
        """
        with self._lock:
            return self._beats

    def start_stage(self, stage_index: int) -> None:
        """About to dispatch one stage of the current task."""
        with self._lock:
            self._stage_index = stage_index

    def idle(self) -> None:
        """The chunk finished its task and is waiting on its queue."""
        with self._lock:
            self._busy_since = None
            self._task_id = -1
            self._stage_index = -1

    def sleep(self, duration: float) -> None:
        """A cancellable stand-in for ``time.sleep``.

        Raises:
            StallError: The watchdog cancelled this dispatch.
        """
        if self.cancel.wait(duration):
            raise StallError(
                f"chunk {self.chunk_index} ({self.pu_class}) cancelled "
                "by the watchdog while sleeping",
                flight_tail=recorder().tail(),
            )

    def check_cancelled(self) -> None:
        """Cooperative cancellation point for long-running kernels."""
        if self.cancel.is_set():
            raise StallError(
                f"chunk {self.chunk_index} ({self.pu_class}) cancelled "
                "by the watchdog",
                flight_tail=recorder().tail(),
            )

    # -- watchdog side -------------------------------------------------
    def snapshot(self) -> Tuple[Optional[float], int, int]:
        """(busy_since, task_id, stage_index) atomically."""
        with self._lock:
            return self._busy_since, self._task_id, self._stage_index

    def cancel_if(self, task_id: int) -> bool:
        """Cancel the in-flight dispatch if it is still ``task_id``.

        The task check closes the race where the dispatch completes
        between the watchdog's snapshot and its cancellation - a
        finished task must not get the next one cancelled.
        """
        with self._lock:
            if self._busy_since is None or self._task_id != task_id:
                return False
            self.cancel.set()
            return True


def supervised_thread(
    name: str,
    target: Callable[[], None],
    heartbeat: Heartbeat,
    watchdog: "Watchdog",
) -> threading.Thread:
    """The sanctioned factory for long-lived worker threads.

    The ``UNSUPERVISED-THREAD`` lint rule confines thread creation to
    the pipeline executor and this module, so every thread in the tree
    is born supervised.  Long-lived workers outside the executor (the
    serving layer's request loop) obtain theirs here: the factory
    refuses to build a thread whose heartbeat the watchdog is not
    scanning, which makes "spawned but unsupervised" unrepresentable.

    The caller starts the returned (daemon) thread and remains
    responsible for beating the heartbeat around each unit of work.
    """
    if heartbeat not in watchdog.heartbeats:
        raise PipelineError(
            f"thread {name!r} refused: its heartbeat is not registered "
            "with the supervising watchdog"
        )
    return threading.Thread(target=target, name=name, daemon=True)


class Watchdog:
    """Supervisor thread scanning dispatcher heartbeats.

    Args:
        heartbeats: One per dispatcher, in chunk order.
        config: Detection thresholds.
        injector: Optional fault log to mirror events into (so stalls
            land in the same :class:`FaultReport` as injected faults).
    """

    def __init__(self, heartbeats: List[Heartbeat],
                 config: WatchdogConfig,
                 injector: Optional[FaultInjector] = None):
        self.heartbeats = list(heartbeats)
        self.config = config
        self.injector = injector
        self.events: List[FaultEvent] = []
        self._lock = checked_lock("watchdog.events-lock")
        self._stop = threading.Event()
        self._overruns: Set[Tuple[int, int]] = set()
        self._stalls: Set[Tuple[int, int]] = set()
        self._thread = threading.Thread(
            target=self._scan_loop, name="watchdog", daemon=True
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the supervisor thread."""
        self._thread.start()

    def stop(self) -> None:
        """Stop the supervisor and wait for its thread to exit."""
        self._stop.set()
        self._thread.join()

    @property
    def stall_count(self) -> int:
        """Distinct (chunk, task) stalls detected so far."""
        with self._lock:
            return len(self._stalls)

    def _record(self, kind: str, heartbeat: Heartbeat, task_id: int,
                stage_index: int, detail: str) -> None:
        event = FaultEvent(
            kind=kind, pu_class=heartbeat.pu_class,
            stage_index=stage_index, task_id=task_id, detail=detail,
        )
        with self._lock:
            self.events.append(event)
        if self.injector is not None:
            # The injector's log feeds the flight recorder itself.
            self.injector.record(kind, heartbeat.pu_class, stage_index,
                                 task_id, detail=detail)
        else:
            rec = recorder()
            if rec.enabled:
                rec.record(kind, pu_class=heartbeat.pu_class,
                           stage_index=stage_index, task_id=task_id,
                           detail=detail)

    # ------------------------------------------------------------------
    def _scan_loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval_s):
            self._scan(time.monotonic())

    def _scan(self, now: float) -> None:
        """One pass over every heartbeat (separated out for tests)."""
        for heartbeat in self.heartbeats:
            busy_since, task_id, stage_index = heartbeat.snapshot()
            if busy_since is None:
                continue
            elapsed = now - busy_since
            key = (heartbeat.chunk_index, task_id)
            deadline = self.config.chunk_deadline_s
            if (deadline is not None and elapsed > deadline
                    and key not in self._overruns):
                self._overruns.add(key)
                self._record(
                    DEADLINE_OVERRUN, heartbeat, task_id, stage_index,
                    detail=f"busy {elapsed:.3f}s > deadline "
                           f"{deadline:g}s",
                )
            if (elapsed > self.config.stall_timeout_s
                    and key not in self._stalls
                    and heartbeat.cancel_if(task_id)):
                self._stalls.add(key)
                self._record(
                    STALL, heartbeat, task_id, stage_index,
                    detail=f"busy {elapsed:.3f}s > stall timeout "
                           f"{self.config.stall_timeout_s:g}s; "
                           "cancelling dispatch",
                )
