"""Tests for the dense and sparse neural-network kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels import (
    ConvSpec,
    conv2d_relu_cpu,
    conv2d_relu_gpu,
    im2col,
    linear_cpu,
    linear_gpu,
    maxpool2x2_cpu,
    maxpool2x2_gpu,
    prune_to_csr,
    sparse_conv2d_relu_cpu,
    sparse_conv2d_relu_gpu,
)


def conv_reference(x, weights, bias, padding):
    """Direct (slow) convolution + ReLU oracle."""
    k_out, c_in, kh, kw = weights.shape
    c, h, w = x.shape
    padded = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    oh, ow = h + 2 * padding - kh + 1, w + 2 * padding - kw + 1
    out = np.zeros((k_out, oh, ow), dtype=np.float32)
    for k in range(k_out):
        for i in range(oh):
            for j in range(ow):
                patch = padded[:, i : i + kh, j : j + kw]
                out[k, i, j] = np.sum(patch * weights[k]) + bias[k]
    return np.maximum(out, 0.0)


def make_conv(seed, spec, h, w):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.in_channels, h, w)).astype(np.float32)
    weights = rng.standard_normal(
        (spec.out_channels, spec.in_channels, spec.kernel_size,
         spec.kernel_size)
    ).astype(np.float32)
    bias = rng.standard_normal(spec.out_channels).astype(np.float32)
    oh, ow = spec.out_hw(h, w)
    out = np.zeros((spec.out_channels, oh, ow), dtype=np.float32)
    return x, weights, bias, out


class TestIm2col:
    def test_shape(self):
        x = np.arange(2 * 4 * 4, dtype=np.float32).reshape(2, 4, 4)
        cols = im2col(x, kernel_size=3, padding=1)
        assert cols.shape == (2 * 9, 16)

    def test_identity_kernel_recovers_input(self):
        x = np.arange(3 * 4 * 4, dtype=np.float32).reshape(3, 4, 4)
        cols = im2col(x, kernel_size=1, padding=0)
        np.testing.assert_array_equal(cols, x.reshape(3, 16))

    def test_rejects_bad_rank(self):
        with pytest.raises(KernelError):
            im2col(np.zeros((4, 4), dtype=np.float32), 3, 1)

    def test_rejects_oversized_kernel(self):
        with pytest.raises(KernelError):
            im2col(np.zeros((1, 2, 2), dtype=np.float32), 5, 0)


class TestConv:
    def test_cpu_matches_reference(self):
        spec = ConvSpec(in_channels=2, out_channels=3, kernel_size=3,
                        padding=1)
        x, weights, bias, out = make_conv(1, spec, 6, 6)
        conv2d_relu_cpu(x, weights, bias, out, spec)
        expected = conv_reference(x, weights, bias, 1)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_gpu_matches_cpu(self):
        spec = ConvSpec(in_channels=4, out_channels=20, kernel_size=5,
                        padding=2)
        x, weights, bias, out_cpu = make_conv(2, spec, 8, 8)
        out_gpu = np.zeros_like(out_cpu)
        conv2d_relu_cpu(x, weights, bias, out_cpu, spec)
        conv2d_relu_gpu(x, weights, bias, out_gpu, spec)
        np.testing.assert_allclose(out_cpu, out_gpu, rtol=1e-5)

    def test_relu_clamps_negatives(self):
        spec = ConvSpec(in_channels=1, out_channels=1, kernel_size=1,
                        padding=0)
        x = np.full((1, 2, 2), -1.0, dtype=np.float32)
        weights = np.ones((1, 1, 1, 1), dtype=np.float32)
        bias = np.zeros(1, dtype=np.float32)
        out = np.zeros((1, 2, 2), dtype=np.float32)
        conv2d_relu_cpu(x, weights, bias, out, spec)
        assert np.all(out == 0.0)

    def test_flops_formula(self):
        spec = ConvSpec(in_channels=3, out_channels=8, kernel_size=3,
                        padding=1)
        assert spec.flops(32, 32) == 2 * 3 * 8 * 9 * 32 * 32

    def test_shape_validation(self):
        spec = ConvSpec(in_channels=2, out_channels=3, kernel_size=3,
                        padding=1)
        x, weights, bias, out = make_conv(3, spec, 6, 6)
        with pytest.raises(KernelError):
            conv2d_relu_cpu(x[:1], weights, bias, out, spec)
        with pytest.raises(KernelError):
            conv2d_relu_cpu(x, weights[:, :1], bias, out, spec)
        with pytest.raises(KernelError):
            conv2d_relu_cpu(x, weights, bias[:1], out, spec)
        with pytest.raises(KernelError):
            conv2d_relu_cpu(x, weights, bias, out[:, :1], spec)


class TestMaxPool:
    def test_basic(self):
        x = np.array(
            [[[1, 2, 5, 6], [3, 4, 7, 8], [9, 10, 13, 14],
              [11, 12, 15, 16]]],
            dtype=np.float32,
        )
        out = np.zeros((1, 2, 2), dtype=np.float32)
        maxpool2x2_cpu(x, out)
        np.testing.assert_array_equal(out, [[[4, 8], [12, 16]]])

    def test_gpu_matches_cpu(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 16, 16)).astype(np.float32)
        a = np.zeros((8, 8, 8), dtype=np.float32)
        b = np.zeros((8, 8, 8), dtype=np.float32)
        maxpool2x2_cpu(x, a)
        maxpool2x2_gpu(x, b)
        np.testing.assert_array_equal(a, b)

    def test_odd_size_rejected(self):
        with pytest.raises(KernelError):
            maxpool2x2_cpu(
                np.zeros((1, 3, 4), dtype=np.float32),
                np.zeros((1, 1, 2), dtype=np.float32),
            )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=8))
    def test_property_pool_max_bound(self, c, half):
        rng = np.random.default_rng(c * 100 + half)
        x = rng.standard_normal((c, 2 * half, 2 * half)).astype(np.float32)
        out = np.zeros((c, half, half), dtype=np.float32)
        maxpool2x2_cpu(x, out)
        assert out.max() == pytest.approx(x.max())
        assert np.all(out >= x[:, ::2, ::2] - 1e-6)


class TestLinear:
    def test_cpu_matches_matmul(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 2, 2)).astype(np.float32)
        weights = rng.standard_normal((10, 16)).astype(np.float32)
        bias = rng.standard_normal(10).astype(np.float32)
        out = np.zeros(10, dtype=np.float32)
        linear_cpu(x, weights, bias, out)
        np.testing.assert_allclose(
            out, weights @ x.reshape(-1) + bias, rtol=1e-5
        )

    def test_gpu_matches_cpu(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((4, 2, 2)).astype(np.float32)
        weights = rng.standard_normal((10, 16)).astype(np.float32)
        bias = rng.standard_normal(10).astype(np.float32)
        a = np.zeros(10, dtype=np.float32)
        b = np.zeros(10, dtype=np.float32)
        linear_cpu(x, weights, bias, a)
        linear_gpu(x, weights, bias, b)
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(KernelError):
            linear_cpu(
                np.zeros((2, 2, 2), dtype=np.float32),
                np.zeros((3, 7), dtype=np.float32),
                np.zeros(3, dtype=np.float32),
                np.zeros(3, dtype=np.float32),
            )


class TestPruneToCsr:
    def test_sparsity_achieved(self):
        rng = np.random.default_rng(7)
        weights = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        csr = prune_to_csr(weights, sparsity=0.9)
        assert csr.nnz == pytest.approx(0.1 * weights.size, abs=1.0)
        assert csr.density == pytest.approx(0.1, abs=0.01)

    def test_keeps_largest_magnitudes(self):
        weights = np.zeros((1, 1, 2, 2), dtype=np.float32)
        weights[0, 0] = [[0.1, -5.0], [0.2, 3.0]]
        csr = prune_to_csr(weights, sparsity=0.5)
        dense = csr.to_dense()
        assert dense[0, 1] == pytest.approx(-5.0)
        assert dense[0, 3] == pytest.approx(3.0)
        assert dense[0, 0] == 0.0

    def test_zero_sparsity_is_lossless(self):
        rng = np.random.default_rng(8)
        weights = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        csr = prune_to_csr(weights, sparsity=0.0)
        np.testing.assert_allclose(csr.to_dense(), weights.reshape(3, -1))

    def test_rejects_bad_sparsity(self):
        with pytest.raises(KernelError):
            prune_to_csr(np.zeros((1, 1, 1, 1), dtype=np.float32), 1.0)

    def test_deterministic(self):
        rng = np.random.default_rng(9)
        weights = rng.standard_normal((4, 4, 3, 3)).astype(np.float32)
        a = prune_to_csr(weights, sparsity=0.8)
        b = prune_to_csr(weights, sparsity=0.8)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.data, b.data)


class TestSparseConv:
    def make_case(self, seed, sparsity=0.8):
        spec = ConvSpec(in_channels=3, out_channels=6, kernel_size=3,
                        padding=1)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, 8, 8)).astype(np.float32)
        weights = rng.standard_normal((6, 3, 3, 3)).astype(np.float32)
        bias = rng.standard_normal(6).astype(np.float32)
        csr = prune_to_csr(weights, sparsity=sparsity)
        out = np.zeros((6, 8, 8), dtype=np.float32)
        return spec, x, weights, bias, csr, out

    def test_matches_dense_conv_with_pruned_weights(self):
        spec, x, weights, bias, csr, out = self.make_case(10)
        sparse_conv2d_relu_cpu(x, csr, bias, out, spec)
        pruned_dense = csr.to_dense().reshape(weights.shape)
        expected = np.zeros_like(out)
        conv2d_relu_cpu(x, pruned_dense, bias, expected, spec)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_gpu_matches_cpu(self):
        spec, x, _, bias, csr, out_cpu = self.make_case(11)
        out_gpu = np.zeros_like(out_cpu)
        sparse_conv2d_relu_cpu(x, csr, bias, out_cpu, spec)
        sparse_conv2d_relu_gpu(x, csr, bias, out_gpu, spec)
        np.testing.assert_allclose(out_cpu, out_gpu, rtol=1e-5)

    def test_fully_pruned_rows_emit_bias(self):
        spec, x, _, bias, _, out = self.make_case(12)
        empty = prune_to_csr(
            np.zeros((6, 3, 3, 3), dtype=np.float32) + 1e-9, sparsity=0.99
        )
        bias = np.abs(bias)
        sparse_conv2d_relu_cpu(x, empty, bias, out, spec)
        # Rows with no nonzeros produce constant bias maps.
        for row in range(6):
            if empty.indptr[row] == empty.indptr[row + 1]:
                assert np.allclose(out[row], bias[row])

    def test_csr_shape_mismatch_rejected(self):
        spec, x, _, bias, _, out = self.make_case(13)
        bad = prune_to_csr(
            np.ones((5, 3, 3, 3), dtype=np.float32), sparsity=0.5
        )
        with pytest.raises(KernelError):
            sparse_conv2d_relu_cpu(x, bad, bias, out, spec)
