"""Fig. 4: BetterTogether speedup over the best homogeneous baseline.

Shape targets: speedup > 1 in (nearly) every cell, the Pixel sees the
largest gains and the normal-power Jetson the smallest, the grid maximum
lands on Pixel/Octree, and the overall geomean sits in the paper's 2-3x
band (the paper itself reports 2.17x in section 5.1 and 2.72x in the
abstract for the same figure; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.homogeneous import measure_baselines
from repro.core.framework import BetterTogether
from repro.eval.experiments.common import (
    APP_ORDER,
    PLATFORM_LABELS,
    ExperimentScale,
    build_applications,
    evaluation_platforms,
)
from repro.eval.metrics import format_table, geometric_mean


@dataclass
class Fig4Cell:
    """One (app, platform) outcome."""

    bt_latency_s: float
    baseline_latency_s: float
    baseline_name: str
    schedule: str

    @property
    def speedup(self) -> float:
        return self.baseline_latency_s / self.bt_latency_s


@dataclass
class Fig4Result:
    cells: Dict[Tuple[str, str], Fig4Cell]

    def platform_geomean(self, platform: str) -> float:
        return geometric_mean(
            cell.speedup
            for (app, plat), cell in self.cells.items()
            if plat == platform
        )

    @property
    def overall_geomean(self) -> float:
        return geometric_mean(c.speedup for c in self.cells.values())

    @property
    def max_speedup(self) -> Tuple[Tuple[str, str], float]:
        key = max(self.cells, key=lambda k: self.cells[k].speedup)
        return key, self.cells[key].speedup


def run_fig4(scale: ExperimentScale = None, n_tasks: int = 30) -> Fig4Result:
    scale = scale or ExperimentScale.paper()
    applications = build_applications(scale)
    cells: Dict[Tuple[str, str], Fig4Cell] = {}
    for platform in evaluation_platforms():
        framework = BetterTogether(
            platform,
            repetitions=scale.repetitions,
            k=scale.k,
            eval_tasks=scale.eval_tasks,
        )
        for app_name in APP_ORDER:
            application = applications[app_name]
            plan = framework.run(application)
            baseline = measure_baselines(application, platform,
                                         n_tasks=n_tasks)
            cells[(app_name, platform.name)] = Fig4Cell(
                bt_latency_s=plan.measured_latency_s,
                baseline_latency_s=baseline.best_latency_s,
                baseline_name=baseline.best_name,
                schedule=plan.schedule.describe(application),
            )
    return Fig4Result(cells=cells)


def format_fig4(result: Fig4Result) -> str:
    rows: List[List[str]] = [
        ["Device"] + list(APP_ORDER) + ["geomean"]
    ]
    platforms = sorted({p for _, p in result.cells},
                       key=list(PLATFORM_LABELS).index)
    for platform in platforms:
        row = [PLATFORM_LABELS[platform]]
        for app in APP_ORDER:
            row.append(f"{result.cells[(app, platform)].speedup:.2f}x")
        row.append(f"{result.platform_geomean(platform):.2f}x")
        rows.append(row)
    (max_app, max_plat), max_speed = result.max_speedup
    footer = [
        f"overall geomean: {result.overall_geomean:.2f}x "
        "(paper: 2.17x in section 5.1 / 2.72x in the abstract)",
        f"max: {max_speed:.2f}x on {max_app} @ "
        f"{PLATFORM_LABELS[max_plat]} (paper: 8.40x on octree @ Google)",
    ]
    return (
        "Fig. 4 - BetterTogether speedup over best homogeneous baseline\n"
        + format_table(rows) + "\n" + "\n".join(footer)
    )
