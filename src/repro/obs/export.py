"""Exporters over the unified span tree.

One event model, three renderings:

* :func:`chrome_trace` - Chrome trace-event JSON (the format Perfetto
  loads natively): the ``control`` and ``virtual`` clock domains become
  two processes, and every track (one per PU class and per tenant, plus
  one per control-plane category) becomes a named thread.  Span
  parent/child ids ride along in ``args`` so correlation survives the
  export.
* :func:`export_gantt` - the existing ASCII Gantt refitted as an
  exporter: virtual-domain span events are folded back into
  :class:`repro.runtime.trace.Span` rows and rendered by
  :func:`~repro.runtime.trace.format_gantt`.
* :func:`write_trace` - persists a payload through the sanctioned
  :func:`repro.serialization.write_json_report` sink.

Exports are pure functions of the event list (plus an optional metrics
snapshot), so a seeded run exports byte-identical traces every time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.tracer import CONTROL, VIRTUAL, TraceEvent

#: Chrome pid per clock domain (Perfetto shows each as a process group).
DOMAIN_PIDS = {CONTROL: 1, VIRTUAL: 2}
DOMAIN_LABELS = {
    CONTROL: "control plane (logical ticks)",
    VIRTUAL: "virtual time (DES)",
}


def _microseconds(event: TraceEvent) -> float:
    # Control ticks map 1 tick -> 1 us; virtual seconds scale to us.
    if event.domain == VIRTUAL:
        return event.ts * 1e6
    return event.ts


def _duration_us(event: TraceEvent) -> float:
    if event.domain == VIRTUAL:
        return event.dur * 1e6
    return event.dur


def _track_ids(events: Sequence[TraceEvent]) -> Dict[Any, int]:
    """Deterministic tid per (domain, track): sorted, starting at 1."""
    keys = sorted({(e.domain, e.track) for e in events})
    return {key: tid for tid, key in enumerate(keys, start=1)}


def chrome_trace(events: Sequence[TraceEvent],
                 metrics_snapshot: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON payload (Perfetto-loadable)."""
    tids = _track_ids(events)
    trace_events: List[Dict[str, Any]] = []
    for domain in (CONTROL, VIRTUAL):
        pid = DOMAIN_PIDS[domain]
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": DOMAIN_LABELS[domain]},
        })
    for (domain, track), tid in sorted(tids.items()):
        trace_events.append({
            "ph": "M", "name": "thread_name",
            "pid": DOMAIN_PIDS[domain], "tid": tid,
            "args": {"name": track},
        })
    for event in events:
        args: Dict[str, Any] = {
            "id": event.event_id,
            "parent": event.parent_id,
        }
        for key, value in event.attrs:
            args[key] = value
        record: Dict[str, Any] = {
            "ph": "X" if event.kind == "span" else "i",
            "name": event.name,
            "cat": event.category,
            "ts": _microseconds(event),
            "pid": DOMAIN_PIDS[event.domain],
            "tid": tids[(event.domain, event.track)],
            "args": args,
        }
        if event.kind == "span":
            record["dur"] = _duration_us(event)
        else:
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    payload: Dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": trace_events,
        "otherData": {
            "generator": "repro.obs",
            "metrics": metrics_snapshot if metrics_snapshot else {},
        },
    }
    return payload


def export_gantt(events: Sequence[TraceEvent], width: int = 72) -> str:
    """Render the virtual-domain span events as an ASCII Gantt chart."""
    from repro.runtime.trace import format_gantt, record_span

    spans = [
        record_span(
            chunk_index=int(e.attr("chunk", 0)),
            pu_class=str(e.attr("pu", e.track)),
            task_id=int(e.attr("task", 0)),
            start_s=e.ts,
            end_s=e.ts + e.dur,
            tenant=e.attr("tenant"),
        )
        for e in events
        if e.domain == VIRTUAL and e.kind == "span"
    ]
    return format_gantt(spans, width=width)


def write_trace(path: Any, payload: Dict[str, Any]) -> None:
    """Persist an exported trace via the sanctioned report sink."""
    from repro.serialization import write_json_report

    write_json_report(path, payload)
