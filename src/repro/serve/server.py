"""The multi-tenant pipeline server: one supervised loop, many tenants.

Architecture (deliberately boring, for determinism's sake):

* **One request-loop thread** owns every mutable serving structure -
  the tenant registry, the placement map, the backpressure queue.  It
  is created through :func:`repro.runtime.watchdog.supervised_thread`
  and beats a heartbeat every tick, so the same watchdog machinery
  that guards kernel dispatches also catches a wedged control loop.
* **Submissions cross threads** through a single lock-guarded inbox
  (:func:`~repro.analysis.lock_order.checked_lock`, so the race
  checker sees it).  Everything after the inbox is single-threaded.
* **Virtual time only.**  Tenant windows execute on the discrete-event
  simulator; a *tick* of the serve loop runs one window for every
  running tenant.  With all submissions made before :meth:`start` the
  entire run - admissions, windows, reschedules, evictions, the final
  report - is a pure function of (platform, specs, drifts, seed), which
  is what makes the soak test's byte-determinism assertion possible.

Per tick the loop: drains the inbox through the admission controller,
retries the backpressure queue (a completed tenant may have freed the
PUs a queued one needs), then serves one window per running tenant -
each simulated under the :class:`~repro.soc.interference.ExternalLoad`
formed by its co-tenants' offered loads plus any injected drift - and
finally lets the online rescheduler react to drifted measurements.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional

from repro.analysis.lock_order import checked_lock
from repro.core.plan_cache import PlanCache
from repro.errors import ReproError, ServeError
from repro.obs.metrics import metrics
from repro.obs.recorder import recorder
from repro.obs.tracer import tracer
from repro.runtime.simulator import (
    SimWindow,
    SimulatedPipelineExecutor,
    simulate_batch,
)
from repro.runtime.trace import Span
from repro.runtime.watchdog import (
    Heartbeat,
    Watchdog,
    WatchdogConfig,
    supervised_thread,
)
from repro.serve.admission import ADMIT, QUEUE, AdmissionController
from repro.serve.metrics import ServeReport, TenantMetrics
from repro.serve.placement import PlacementMap, tenant_offered_load
from repro.serve.rescheduler import EVICT, SWITCH, OnlineRescheduler
from repro.serve.tenant import (
    COMPLETED,
    EVICTED,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    TenantRecord,
    TenantSpec,
    WindowResult,
)
from repro.soc.interference import ExternalLoad
from repro.soc.platform import Platform


@dataclass(frozen=True)
class DriftSpec:
    """Injected outside interference, active over a tick range.

    Models load the server does not control (a foreground app on a
    phone, another container on a Jetson): per-class busy fractions
    plus DRAM bandwidth demand, applied to *every* tenant's external
    load while active.
    """

    start_tick: int
    busy: Mapping[str, float] = field(default_factory=dict)
    demand_gbps: float = 0.0
    end_tick: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_tick < 0:
            raise ServeError("start_tick must be >= 0")
        if self.end_tick is not None and self.end_tick <= self.start_tick:
            raise ServeError("end_tick must be > start_tick")

    def active_at(self, tick: int) -> bool:
        if tick < self.start_tick:
            return False
        return self.end_tick is None or tick < self.end_tick

    def load(self) -> ExternalLoad:
        return ExternalLoad(busy=dict(self.busy),
                            demand_gbps=self.demand_gbps)


@dataclass
class ServerConfig:
    """Knobs for one serving run."""

    max_ticks: int = 64
    queue_capacity: int = 4
    #: Ticks a tenant may sit in the backpressure queue before the
    #: server rejects it outright (deterministic age-out).  None keeps
    #: queued tenants waiting until the run drains - the pre-overload
    #: behaviour, where sustained overload parks the queue forever.
    queue_patience: Optional[int] = None
    max_impact_ratio: float = 1.5
    max_partition_classes: Optional[int] = None
    #: Price the impact ceiling against each incumbent's *total*
    #: predicted slowdown (co-tenants already running included) rather
    #: than the newcomer's marginal contribution alone.  See
    #: :class:`~repro.serve.admission.AdmissionController`.
    cumulative_impact: bool = False
    drift_threshold: float = 1.2
    min_gain: float = 0.02
    patience: int = 2
    reschedule: bool = True
    profiling_repetitions: int = 3
    candidates_k: int = 8
    stall_timeout_s: float = 60.0
    #: Per-window interference blame decomposition
    #: (:mod:`repro.obs.attribution`).  Off by default: attribution
    #: replays the steady-state rate model per (window, source) pair,
    #: so uninstrumented runs must not pay for it - and reports only
    #: grow an ``attribution`` key when it is on, keeping default
    #: report bytes unchanged.
    attribution: bool = False

    def __post_init__(self) -> None:
        if self.max_ticks < 1:
            raise ServeError("max_ticks must be >= 1")
        if self.queue_patience is not None and self.queue_patience < 1:
            raise ServeError("queue_patience must be >= 1 (or None)")


class PipelineServer:
    """Serve streaming pipeline tenants on one shared virtual SoC."""

    def __init__(
        self,
        platform: Platform,
        seed: int = 0,
        config: Optional[ServerConfig] = None,
        plan_cache: Optional[PlanCache] = None,
    ):
        self.platform = platform
        self.seed = seed
        self.config = config or ServerConfig()
        if plan_cache is None:
            plan_cache = PlanCache(
                platform,
                repetitions=self.config.profiling_repetitions,
                k=self.config.candidates_k,
            )
        elif plan_cache.platform is not platform:
            raise ServeError(
                "injected plan_cache was built for platform "
                f"{plan_cache.platform.name!r}, not {platform.name!r}"
            )
        self.plan_cache = plan_cache
        self.placement = PlacementMap(platform.schedulable_classes())
        self.admission = AdmissionController(
            platform,
            self.plan_cache,
            queue_capacity=self.config.queue_capacity,
            max_impact_ratio=self.config.max_impact_ratio,
            max_partition_classes=self.config.max_partition_classes,
            cumulative_impact=self.config.cumulative_impact,
        )
        self.rescheduler = OnlineRescheduler(
            platform,
            drift_threshold=self.config.drift_threshold,
            min_gain=self.config.min_gain,
            patience=self.config.patience,
        )
        self.records: Dict[str, TenantRecord] = {}
        self.timeline: List[Dict[str, object]] = []
        #: Tenant-tagged spans from each tenant's last served window
        #: (the multi-tenant Gantt input).
        self.trace_spans: List[Span] = []
        self.ticks_executed = 0

        self._inbox: Deque[TenantSpec] = deque()
        self._inbox_lock = checked_lock("serve.inbox-lock")
        self._queue: List[str] = []
        #: Tick each queued tenant entered the queue (age-out clock).
        self._queued_since: Dict[str, int] = {}
        self._drifts: List[DriftSpec] = []
        self._patience: Dict[str, int] = {}
        self._admission_counter = 0
        self._names = set()

        self._heartbeat = Heartbeat(0, "serve-loop")
        self._watchdog = Watchdog(
            [self._heartbeat],
            WatchdogConfig(stall_timeout_s=self.config.stall_timeout_s),
        )
        self._thread: Optional[threading.Thread] = None
        self._done = threading.Event()
        self._stop_requested = threading.Event()
        self._started = False
        self._stepping = False
        self._loop_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, spec: TenantSpec) -> None:
        """Queue one job for admission.

        Submissions made before :meth:`start` are processed in order on
        the first tick, which keeps the whole run deterministic;
        submitting to a live server is allowed but lands on whichever
        tick the loop reaches next.
        """
        if self._done.is_set():
            raise ServeError(
                f"server has drained; cannot submit {spec.name!r}"
            )
        with self._inbox_lock:
            if spec.name in self._names:
                raise ServeError(
                    f"tenant name {spec.name!r} already submitted"
                )
            self._names.add(spec.name)
            self._inbox.append(spec)

    def inject_drift(self, drift: DriftSpec) -> None:
        """Register outside interference.

        In loop mode this must happen before :meth:`start` so runs stay
        reproducible.  In step mode (:meth:`open_stepped`) the caller
        owns the clock, so drifts may land mid-run - the fleet chaos
        injector uses this to degrade a live shard deterministically.
        """
        if self._started and not self._stepping:
            raise ServeError(
                "inject_drift() must be called before start() so runs "
                "stay reproducible"
            )
        self._drifts.append(drift)

    def start(self) -> None:
        """Boot the supervised request loop."""
        if self._started:
            raise ServeError("server already started")
        self._started = True
        self._watchdog.start()
        self._thread = supervised_thread(
            "serve-loop", self._loop, self._heartbeat, self._watchdog
        )
        self._thread.start()

    def drain(self, timeout_s: Optional[float] = None) -> ServeReport:
        """Wait until every tenant reaches a terminal state, then stop
        the supervision machinery and return the report."""
        if not self._started or self._thread is None:
            raise ServeError("server was never started")
        if not self._done.wait(timeout_s):
            self._stop_requested.set()
            raise ServeError(
                f"server did not drain within {timeout_s}s "
                f"(tick {self.ticks_executed})"
            )
        self._thread.join()
        self._watchdog.stop()
        if self._loop_error is not None:
            raise ServeError(
                f"serve loop aborted: {self._loop_error}"
            )
        return self.report()

    def stop(self) -> None:
        """Request an early stop and wait for the loop to exit."""
        self._stop_requested.set()
        if self._thread is not None:
            self._done.wait()
            self._thread.join()
            self._watchdog.stop()

    def run(self, timeout_s: Optional[float] = None) -> ServeReport:
        """Convenience: :meth:`start` + :meth:`drain`."""
        self.start()
        return self.drain(timeout_s)

    # ------------------------------------------------------------------
    # Step mode (fleet surface): the caller owns the clock
    # ------------------------------------------------------------------
    # A fleet drives many shards in lockstep from ONE supervised loop
    # thread; per-shard loop threads would make cross-shard event order
    # scheduler-dependent and break byte-determinism.  In step mode the
    # server never spawns its thread: the caller calls step(tick) once
    # per fleet tick (always from the same thread) and close_stepped()
    # to settle terminal states and collect the report.

    def open_stepped(self) -> None:
        """Enter step mode instead of booting the loop thread."""
        if self._started:
            raise ServeError("server already started")
        self._started = True
        self._stepping = True

    def step(self, tick: int) -> bool:
        """Run one tick under the caller's clock; True when drained."""
        if not self._stepping:
            raise ServeError("step() requires open_stepped()")
        self._tick(tick)
        self.ticks_executed += 1
        return self._drained()

    def close_stepped(self, detail: Optional[str] = None) -> ServeReport:
        """Leave step mode: settle terminal states, return the report.

        ``detail`` (e.g. ``"shard crashed at tick 8"``) becomes the
        status detail of any tenant still live at close.
        """
        if not self._stepping:
            raise ServeError("close_stepped() requires open_stepped()")
        if detail is not None:
            self._loop_error = detail
        self._stepping = False
        self._close_out()
        self._done.set()
        return self.report()

    def try_admit(self, spec: TenantSpec, tick: int):
        """Synchronous admission (step mode only).

        Evaluates ``spec`` against the current placement and running
        set; on ADMIT the tenant is deployed immediately and serves its
        first window on the next :meth:`step`.  QUEUE/REJECT decisions
        leave no record behind - the fleet router owns the backlog, not
        the shard.  Returns the :class:`AdmissionDecision` either way.
        """
        if not self._stepping:
            raise ServeError("try_admit() requires open_stepped()")
        if spec.name in self._names:
            raise ServeError(
                f"tenant name {spec.name!r} already known to this shard"
            )
        decision = self.admission.evaluate(
            spec, self.placement, self._running(), queued=0,
        )
        if decision.action == ADMIT:
            self._names.add(spec.name)
            record = TenantRecord(spec=spec)
            self.records[spec.name] = record
            self._deploy(tick, record, decision)
        return decision

    def withdraw(self, name: str, reason: str, tick: int) -> TenantRecord:
        """Remove a live tenant (step mode only): release its placement
        and mark it EVICTED with ``reason``.  The fleet failover drain -
        the tenant's remaining windows continue on another shard."""
        if not self._stepping:
            raise ServeError("withdraw() requires open_stepped()")
        record = self.records.get(name)
        if record is None or record.done:
            raise ServeError(
                f"cannot withdraw {name!r}: not a live tenant"
            )
        if name in self._queue:
            self._queue.remove(name)
            self._queued_since.pop(name, None)
        if name in self.placement.partitions:
            self.placement.release(name)
        record.status = EVICTED
        record.status_detail = reason
        self._event(tick, "withdraw", name, reason=reason)
        return record

    def rescind(self, name: str) -> None:
        """Un-admit a tenant placed via :meth:`try_admit` this tick (the
        fleet rollback primitive): the placement is released and the
        record erased as if the admission never happened."""
        if not self._stepping:
            raise ServeError("rescind() requires open_stepped()")
        record = self.records.pop(name, None)
        if record is None:
            raise ServeError(f"cannot rescind {name!r}: unknown tenant")
        if name in self.placement.partitions:
            self.placement.release(name)
        self._names.discard(name)
        self._patience.pop(name, None)
        self._queued_since.pop(name, None)

    def running_records(self) -> Dict[str, TenantRecord]:
        """Live RUNNING tenants in admission order (read-only view)."""
        return self._running()

    def knows_tenant(self, name: str) -> bool:
        """Whether this server generation has ever seen ``name``.

        Names are never recycled within a generation, so a fleet router
        must not re-place a tenant onto a shard that already knows it
        (a rejoined shard is a fresh generation and qualifies again).
        """
        return name in self._names

    def report(self) -> ServeReport:
        """The (deterministic) serving report for the run so far."""
        return ServeReport(
            platform=self.platform.name,
            seed=self.seed,
            ticks=self.ticks_executed,
            rescheduling_enabled=self.config.reschedule,
            tenants={
                name: TenantMetrics.from_record(record)
                for name, record in self.records.items()
            },
            timeline=list(self.timeline),
            plan_cache=self.plan_cache.stats(),
            attribution=self._attribution_summary(),
        )

    def _attribution_summary(self) -> Optional[Dict[str, object]]:
        """Blame matrices harvested from tenant histories (None when
        attribution is off, so default report bytes stay unchanged)."""
        if not self.config.attribution:
            return None
        from repro.obs.attribution import top_offenders

        per_tenant: Dict[str, object] = {}
        matrices = []
        for name in sorted(self.records):
            blames = [w.blame for w in self.records[name].history
                      if w.blame is not None]
            if blames:
                per_tenant[name] = [b.to_dict() for b in blames]
                matrices.extend(blames)
        return {
            "tenants": per_tenant,
            "top_offenders": top_offenders(matrices, k=5),
        }

    # ------------------------------------------------------------------
    # Request loop (single thread; owns all serving state)
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        try:
            for tick in range(self.config.max_ticks):
                if self._stop_requested.is_set():
                    break
                self._heartbeat.start_task(tick)
                self._tick(tick)
                self._heartbeat.idle()
                self.ticks_executed = tick + 1
                if self._drained():
                    break
        except ReproError as error:
            self._loop_error = str(error)
        finally:
            self._close_out()
            self._done.set()

    def _drained(self) -> bool:
        with self._inbox_lock:
            pending = len(self._inbox)
        if pending:
            return False
        return all(record.done for record in self.records.values())

    def _close_out(self) -> None:
        """Terminal states for whatever the loop left behind."""
        with self._inbox_lock:
            leftovers = list(self._inbox)
            self._inbox.clear()
        for spec in leftovers:
            record = TenantRecord(spec=spec, status=REJECTED,
                                  status_detail="server stopped before "
                                                "admission")
            self.records[spec.name] = record
        for record in self.records.values():
            if record.done:
                continue
            if record.status == RUNNING:
                self.placement.release(record.name)
            detail = (self._loop_error
                      or "tick budget exhausted before completion")
            if record.status == QUEUED:
                record.status = REJECTED
                record.status_detail = (
                    "queued until the server drained (backpressure)"
                )
            else:
                record.status = FAILED
                record.status_detail = detail

    # -- one tick -------------------------------------------------------
    def _tick(self, tick: int) -> None:
        with tracer().span("serve.tick", "serve", tick=tick):
            self._admit_new(tick)
            self._retry_queued(tick)
            self._serve_windows(tick)

    #: timeline event -> admission-metric counter name.
    _ADMISSION_COUNTERS = {
        "admit": "admission.admits",
        "queue": "admission.queued",
        "reject": "admission.rejects",
        "reschedule": "serve.reschedules",
        "evict": "serve.evictions",
        "withdraw": "serve.withdrawals",
        "queue_evict": "admission.queue_evictions",
    }

    def _event(self, tick: int, event: str, tenant: str,
               **extra: object) -> None:
        entry: Dict[str, object] = {
            "tick": tick, "event": event, "tenant": tenant,
        }
        entry.update(extra)
        self.timeline.append(entry)
        # Mirror every timeline entry into the observability spine:
        # an instant on the tenant's trace track, a flight-recorder
        # event, and the admission/reschedule counters.  All happen on
        # the single loop thread, so the emission order - and therefore
        # an exported trace's bytes - stays a function of the seed.
        trc = tracer()
        if trc.enabled:
            trc.instant(f"serve.{event}", "serve",
                        track=f"tenant:{tenant}", tick=tick,
                        tenant=tenant)
        rec = recorder()
        if rec.enabled:
            rec.record(f"serve.{event}", tick=tick, tenant=tenant)
        reg = metrics()
        if reg.enabled:
            counter = self._ADMISSION_COUNTERS.get(event)
            if counter is not None:
                total = reg.counter(counter)
                # Cumulative per-tick series of every admission /
                # reschedule counter (bounded ring per series).
                reg.series_point(counter, tick, total or 0.0)
            if event == "window":
                reg.observe("serve.window_latency_s",
                            float(extra["latency_s"]))

    def _admit_new(self, tick: int) -> None:
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    return
                spec = self._inbox.popleft()
            record = TenantRecord(spec=spec)
            self.records[spec.name] = record
            self._decide(tick, record)

    def _retry_queued(self, tick: int) -> None:
        # Deterministic age-out before the retry pass: under sustained
        # overload the queue would otherwise park tenants forever, and
        # an open-loop workload keeps refilling it.  FIFO order means
        # the oldest entries are seen (and rejected) first.
        patience = self.config.queue_patience
        if patience is not None:
            for name in list(self._queue):
                queued_since = self._queued_since[name]
                if tick - queued_since < patience:
                    continue
                record = self.records[name]
                self._queue.remove(name)
                self._queued_since.pop(name, None)
                record.status = REJECTED
                record.status_detail = (
                    f"aged out of the admission queue after waiting "
                    f"{tick - queued_since} ticks (patience {patience})"
                )
                self._event(tick, "queue_evict", name,
                            reason=record.status_detail,
                            waited_ticks=tick - queued_since)
        for name in list(self._queue):
            record = self.records[name]
            decision = self.admission.evaluate(
                record.spec, self.placement, self._running(),
                queued=len(self._queue) - 1,
            )
            if decision.action == ADMIT:
                self._queue.remove(name)
                self._queued_since.pop(name, None)
                self._deploy(tick, record, decision)

    def _decide(self, tick: int, record: TenantRecord) -> None:
        decision = self.admission.evaluate(
            record.spec, self.placement, self._running(),
            queued=len(self._queue),
        )
        if decision.action == ADMIT:
            self._deploy(tick, record, decision)
        elif decision.action == QUEUE:
            record.status = QUEUED
            record.status_detail = decision.reason
            self._queue.append(record.name)
            self._queued_since[record.name] = tick
            self._event(tick, "queue", record.name,
                        reason=decision.reason)
        else:
            record.status = REJECTED
            record.status_detail = decision.reason
            self._event(tick, "reject", record.name,
                        reason=decision.reason)

    def _deploy(self, tick: int, record: TenantRecord, decision) -> None:
        assert decision.candidate is not None
        spec = record.spec
        plan = self.plan_cache.plan_for(spec.application)
        schedule = decision.candidate.schedule
        record.partition = self.placement.assign(
            spec.name, spec.application, schedule
        )
        record.plan = plan
        record.schedule = schedule
        record.candidates = plan.optimization.candidates
        record.status = RUNNING
        record.status_detail = decision.reason
        record.admission_order = self._admission_counter
        self._admission_counter += 1
        self._patience[spec.name] = 0
        self._event(
            tick, "admit", spec.name,
            partition=sorted(record.partition),
            predicted_latency_s=round(decision.predicted_latency_s, 9),
        )

    # -- window serving -------------------------------------------------
    def _running(self) -> Dict[str, TenantRecord]:
        running = {
            name: record for name, record in self.records.items()
            if record.status == RUNNING
        }
        return dict(sorted(
            running.items(), key=lambda kv: kv[1].admission_order
        ))

    def _external_sources(
        self, name: str, tick: int,
    ) -> List[tuple]:
        """Per-source external loads tenant ``name`` sees, labelled.

        Ordered deterministically - co-tenants in admission order (the
        ``_running()`` order), then active drifts in injection order -
        so both the combined load *and* any blame decomposition built
        from the pairs are pure functions of the seeded run.
        """
        sources: List[tuple] = []
        for other, record in self._running().items():
            if other == name:
                continue
            assert record.plan is not None and record.schedule is not None
            sources.append((other, tenant_offered_load(
                record.spec.application, record.plan.isolated,
                record.schedule, self.platform,
            )))
        for index, drift in enumerate(self._drifts):
            if drift.active_at(tick):
                sources.append((f"drift:{index}", drift.load()))
        return sources

    def _external_for(self, name: str, tick: int) -> ExternalLoad:
        """Everything tenant ``name`` sees on the SoC besides itself."""
        return ExternalLoad.combined(
            load for _, load in self._external_sources(name, tick)
        )

    def _serve_windows(self, tick: int) -> None:
        """Serve one window per running tenant, as one simulator batch.

        Every tenant's window is simulated against the external-load
        snapshot taken at tick start (a *tick-consistent co-load view*):
        all running tenants of a tick see each other's offered load
        regardless of who completes, reschedules, or fails while the
        tick's windows are processed.  That is what lets the whole
        tick run through :func:`simulate_batch` in one call.
        """
        batch: List[tuple] = []
        for name, record in self._running().items():
            self._heartbeat.check_cancelled()
            assert (record.plan is not None
                    and record.schedule is not None)
            try:
                sources = self._external_sources(name, tick)
                external = ExternalLoad.combined(
                    load for _, load in sources
                )
                executor = SimulatedPipelineExecutor(
                    record.spec.application,
                    record.schedule.chunks(),
                    self.platform,
                    external_load=external,
                    tenant=name,
                )
            except ReproError as error:
                self._fail_tenant(tick, name, record, error)
                continue
            batch.append((name, record, external, sources, SimWindow(
                executor, record.spec.window_tasks, record_trace=True,
            )))
        if not batch:
            return
        outcomes = simulate_batch(
            [entry[4] for entry in batch], collect_errors=True,
        )
        for (name, record, external, sources, window), outcome in zip(
                batch, outcomes):
            try:
                with tracer().span("serve.window", "serve",
                                   tenant=name, tick=tick,
                                   window=record.windows_done):
                    if outcome.error is not None:
                        raise outcome.error
                    self._finish_window(tick, name, record, external,
                                        outcome.result, sources,
                                        window.executor)
            except ReproError as error:
                self._fail_tenant(tick, name, record, error)

    def _fail_tenant(self, tick: int, name: str, record: TenantRecord,
                     error: ReproError) -> None:
        if name in self.placement.partitions:
            self.placement.release(name)
        record.status = FAILED
        record.status_detail = str(error)
        self._event(tick, "fail", name, reason=str(error))

    def _finish_window(self, tick: int, name: str,
                       record: TenantRecord,
                       external: ExternalLoad, result,
                       sources: Optional[List[tuple]] = None,
                       executor=None) -> None:
        measured = result.steady_interval_s
        regime = self.rescheduler.classify(record, measured)
        record.windows_done += 1
        blame = None
        if (self.config.attribution and sources is not None
                and executor is not None and record.plan is not None):
            from repro.obs.attribution import decompose

            isolated = record.plan.isolated_prediction(record.schedule)
            blame = decompose(
                tenant=name,
                window_index=record.windows_done - 1,
                slowdown=measured / isolated if isolated > 0.0 else 1.0,
                chunks=executor.attribution_inputs(),
                platform=self.platform,
                sources=sources,
            )
        record.history.append(WindowResult(
            window_index=record.windows_done - 1,
            schedule=record.schedule,
            measured_latency_s=measured,
            external_busy_classes=sorted(external.busy),
            regime=regime,
            blame=blame,
        ))
        self._event(tick, "window", name,
                    window=record.windows_done - 1,
                    latency_s=round(measured, 9), regime=regime)

        if record.windows_done >= record.spec.windows:
            self.placement.release(name)
            record.status = COMPLETED
            record.status_detail = (
                f"served {record.windows_done} windows"
            )
            self._event(tick, "complete", name,
                        windows=record.windows_done)
            self._record_trace(record, result.spans)
            return
        self._record_trace(record, result.spans)

        if record.baseline_latency_s is None:
            # First window on this schedule: the drift reference point.
            record.baseline_latency_s = measured
            return
        if not self.config.reschedule:
            return
        if not self.rescheduler.drifted(record, measured):
            self._patience[name] = 0
            return
        self._react_to_drift(tick, name, record, external, measured)

    def _record_trace(self, record: TenantRecord,
                      spans: List[Span]) -> None:
        """Keep only each tenant's most recent window of spans."""
        self.trace_spans = [
            span for span in self.trace_spans
            if span.tenant != record.name
        ]
        self.trace_spans.extend(spans)

    # -- drift reaction -------------------------------------------------
    def _react_to_drift(self, tick: int, name: str,
                        record: TenantRecord,
                        external: ExternalLoad,
                        measured: float) -> None:
        action = self.rescheduler.rerank(
            record, external, self.placement.free_classes()
        )
        if action.kind == SWITCH:
            assert action.candidate is not None
            schedule = action.candidate.schedule
            record.partition = self.placement.reassign(
                name, record.spec.application, schedule
            )
            record.schedule = schedule
            record.baseline_latency_s = None
            record.reschedules += 1
            self._patience[name] = 0
            self._event(
                tick, "reschedule", name,
                rank=action.candidate.rank,
                partition=sorted(record.partition),
                measured_s=round(measured, 9),
                predicted_s=round(action.predicted_latency_s, 9),
            )
            return
        self._patience[name] = self._patience.get(name, 0) + 1
        exhausted = self._patience[name] >= self.config.patience
        if action.kind == EVICT or exhausted:
            if self._evict_for(tick, record):
                self._patience[name] = 0
                return
        self._event(tick, "hold", name, reason=action.reason,
                    patience=self._patience[name])

    def _evict_for(self, tick: int, sufferer: TenantRecord) -> bool:
        """Eviction fallback: remove the lowest-priority running tenant
        strictly below the drifted tenant, freeing its PUs for the next
        re-rank.  Returns False when nobody qualifies (the sufferer is
        itself the lowest priority - it just has to cope)."""
        candidates = [
            record for record in self._running().values()
            if record.name != sufferer.name
            and record.priority < sufferer.priority
        ]
        if not candidates:
            return False
        victim = min(
            candidates,
            key=lambda r: (r.priority, -r.admission_order),
        )
        self.placement.release(victim.name)
        victim.status = EVICTED
        victim.status_detail = (
            f"evicted at tick {tick} to relieve contention on "
            f"{sufferer.name!r} (priority {victim.priority} < "
            f"{sufferer.priority})"
        )
        self._event(tick, "evict", victim.name,
                    beneficiary=sufferer.name,
                    priority=victim.priority)
        return True
