"""Per-window interference blame decomposition.

The paper's premise is that co-scheduled pipelines interfere; the serving
layer can already report *that* a window was slow (``WindowResult.
measured_latency_s`` against the plan's isolated prediction) but not *who*
caused it.  This module closes that gap with an exact, deterministic
decomposition: for each simulated window the observed slowdown is
attributed to (source, resource-class) pairs, where a *source* is one
co-tenant or one injected interference drift, and the *resource class*
distinguishes compute contention (DVFS co-load plus same-class
time-sharing) from DRAM-bandwidth fair-share.

The mechanism is counterfactual replay of the DES steady-state rate
model.  :func:`steady_interval` re-evaluates the pipeline's bottleneck
interval under an arbitrary external load, using the *same* scalar model
calls as the simulator engines (``Platform.instantaneous_rate`` +
:func:`~repro.soc.interference.external_co_load` + same-class fair
share).  For each source we compute two leave-one-component-out deltas:

* replacing the source with :meth:`~repro.soc.interference.ExternalLoad.
  bandwidth_only` removes its busy fractions -> the interval drop is its
  **compute** blame weight;
* replacing it with :meth:`~repro.soc.interference.ExternalLoad.
  compute_only` removes its bandwidth demand -> the drop is its
  **bandwidth** blame weight.

Weights are then normalised against the *measured* excess slowdown
(``slowdown - 1``), so the shares plus an explicit ``residual`` term sum
to the measurement exactly (the conservation property tested in
``tests/obs/test_attribution.py``).  The residual absorbs model error,
execution jitter and queueing effects the steady-state model cannot see.

Everything here is a pure function of its inputs - no clocks, no global
state - so matrices are byte-identical across seeded runs and across
both simulator engines (which agree on the measured latency bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.soc.interference import ExternalLoad, external_co_load

#: Resource classes a source can be blamed on.
COMPUTE = "compute"
BANDWIDTH = "bandwidth"


@dataclass(frozen=True)
class ChunkLoad:
    """Steady-state load profile of one pipeline chunk.

    Aggregated over the chunk's stages by the simulator
    (``SimulatedPipelineExecutor.attribution_inputs``): overheads and
    work times sum; memory-boundedness and bandwidth demand are
    work-time-weighted means, matching the time-average the DES rate
    machinery applies phase by phase.
    """

    pu_class: str
    overhead_s: float
    work_s: float
    memory_boundedness: float
    demand_gbps: float


@dataclass(frozen=True)
class BlameShare:
    """One (source, resource) cell of a blame matrix.

    ``share`` is in slowdown units: the portion of ``slowdown - 1``
    attributed to this cell.
    """

    source: str
    resource: str
    share: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "resource": self.resource,
            "share": round(self.share, 9),
        }


@dataclass(frozen=True)
class BlameMatrix:
    """Exact decomposition of one window's measured slowdown.

    Invariant: ``sum(s.share for s in shares) + residual`` equals
    ``slowdown - 1.0`` up to float rounding, for every window, seed and
    simulator engine.
    """

    tenant: str
    window_index: int
    slowdown: float
    shares: Tuple[BlameShare, ...]
    residual: float

    @property
    def attributed(self) -> float:
        """Sum of the per-source shares (excludes the residual)."""
        return sum(share.share for share in self.shares)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "window": self.window_index,
            "slowdown": round(self.slowdown, 9),
            "shares": [share.to_dict() for share in self.shares],
            "residual": round(self.residual, 9),
        }


def steady_interval(
    chunks: Sequence[ChunkLoad],
    platform: Any,
    external: Optional[ExternalLoad],
) -> float:
    """Steady-state pipeline interval under a given external load.

    Mirrors the DES rate model in its saturated regime: every chunk is
    assumed active in its work phase, so DVFS co-load counts each other
    internal class at 1.0 and the memory controller sees the summed
    demand.  The pipeline interval is the slowest chunk's stage time.
    """
    busy_classes = {chunk.pu_class for chunk in chunks}
    total_other = max(len(platform.pu_classes()) - 1, 0)
    ext = None if external is None or external.is_empty else external
    total_demand = sum(chunk.demand_gbps for chunk in chunks)
    if ext is not None:
        total_demand += ext.demand_gbps
    worst = 0.0
    for chunk in chunks:
        if chunk.work_s > 0.0:
            co_load = external_co_load(
                busy_classes, chunk.pu_class, ext, total_other
            )
            rate = platform.instantaneous_rate(
                memory_boundedness=chunk.memory_boundedness,
                pu_class=chunk.pu_class,
                demand_gbps=chunk.demand_gbps,
                total_demand_gbps=total_demand,
                co_load=co_load,
            )
            if ext is not None:
                share = ext.busy.get(chunk.pu_class, 0.0)
                if share > 0.0:
                    rate /= 1.0 + share
            interval = chunk.overhead_s + chunk.work_s / rate
        else:
            interval = chunk.overhead_s
        if interval > worst:
            worst = interval
    return worst


def _counterfactual_weights(
    chunks: Sequence[ChunkLoad],
    platform: Any,
    sources: Sequence[Tuple[str, ExternalLoad]],
) -> List[Tuple[str, str, float]]:
    """Leave-one-component-out interval drops, in source order."""
    loads = [load for _, load in sources]
    full_interval = steady_interval(
        chunks, platform, ExternalLoad.combined(loads)
    )
    weights: List[Tuple[str, str, float]] = []
    for index, (label, load) in enumerate(sources):
        for resource, stripped in (
            (COMPUTE, load.bandwidth_only()),
            (BANDWIDTH, load.compute_only()),
        ):
            counterfactual = list(loads)
            counterfactual[index] = stripped
            interval = steady_interval(
                chunks, platform, ExternalLoad.combined(counterfactual)
            )
            weights.append(
                (label, resource, max(full_interval - interval, 0.0))
            )
    return weights


def decompose(
    tenant: str,
    window_index: int,
    slowdown: float,
    chunks: Sequence[ChunkLoad],
    platform: Any,
    sources: Sequence[Tuple[str, ExternalLoad]],
) -> BlameMatrix:
    """Attribute a window's measured slowdown to its external sources.

    Args:
        tenant: The slowed-down tenant (blame target).
        window_index: Its window index within the serving session.
        slowdown: Measured latency over the isolated prediction.
        chunks: Steady-state chunk loads from the window's executor.
        platform: The shared SoC (``Platform``-shaped; only
            ``pu_classes()`` and ``instantaneous_rate()`` are used).
        sources: Ordered ``(label, load)`` pairs - co-tenants in
            admission order, then drifts - so share order, and therefore
            report bytes, are a pure function of the seeded run.

    The per-source counterfactual weights are normalised against the
    measured excess ``slowdown - 1``; whatever the model cannot explain
    (or a net speedup, when DVFS boost wins) lands in ``residual`` so
    the matrix always sums to the measurement exactly.
    """
    excess = slowdown - 1.0
    shares: List[BlameShare] = []
    residual = excess
    if sources and excess > 0.0:
        weights = _counterfactual_weights(chunks, platform, sources)
        total_weight = sum(weight for _, _, weight in weights)
        if total_weight > 0.0:
            attributed = 0.0
            for label, resource, weight in weights:
                if weight <= 0.0:
                    continue
                share = excess * (weight / total_weight)
                attributed += share
                shares.append(
                    BlameShare(source=label, resource=resource, share=share)
                )
            residual = excess - attributed
    return BlameMatrix(
        tenant=tenant,
        window_index=window_index,
        slowdown=slowdown,
        shares=tuple(shares),
        residual=residual,
    )


def top_offenders(
    matrices: Sequence[BlameMatrix], k: int = 5
) -> List[Dict[str, Any]]:
    """Aggregate blame across windows into the top-K offender cells.

    Shares sum per (source, resource) pair; ties break lexicographically
    so the ranking is deterministic.  Output values are rounded like
    every other report field.
    """
    totals: Dict[Tuple[str, str], float] = {}
    windows: Dict[Tuple[str, str], int] = {}
    for matrix in matrices:
        for share in matrix.shares:
            key = (share.source, share.resource)
            totals[key] = totals.get(key, 0.0) + share.share
            windows[key] = windows.get(key, 0) + 1
    ranked = sorted(
        totals.items(), key=lambda item: (-item[1], item[0][0], item[0][1])
    )
    return [
        {
            "source": source,
            "resource": resource,
            "total_share": round(total, 9),
            "windows": windows[(source, resource)],
        }
        for (source, resource), total in ranked[: max(k, 0)]
    ]
