"""Tests for the Karras radix tree: reference vs. vectorized variants,
plus structural invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels import (
    allocate_tree,
    build_radix_tree_cpu,
    build_radix_tree_gpu,
    build_radix_tree_reference,
)


def make_codes(n, seed=0):
    """n distinct sorted 30-bit codes."""
    rng = np.random.default_rng(seed)
    codes = rng.choice(1 << 30, size=n, replace=False).astype(np.uint32)
    return np.sort(codes)


distinct_sorted_codes = (
    st.sets(st.integers(min_value=0, max_value=(1 << 30) - 1),
            min_size=2, max_size=64)
    .map(lambda s: np.asarray(sorted(s), dtype=np.uint32))
)


def tree_fields(tree):
    return (
        tree.left, tree.right, tree.left_is_leaf, tree.right_is_leaf,
        tree.parent, tree.leaf_parent, tree.delta_node,
        tree.range_left, tree.range_right,
    )


class TestAgainstReference:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 16, 33, 100, 257])
    def test_cpu_matches_reference(self, n):
        codes = make_codes(n, seed=n)
        expected = build_radix_tree_reference(codes)
        tree = allocate_tree(n)
        build_radix_tree_cpu(codes, tree)
        for got, want in zip(tree_fields(tree), tree_fields(expected)):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("n", [2, 5, 50, 300])
    def test_gpu_matches_reference(self, n):
        codes = make_codes(n, seed=1000 + n)
        expected = build_radix_tree_reference(codes)
        tree = allocate_tree(n)
        build_radix_tree_gpu(codes, tree)
        for got, want in zip(tree_fields(tree), tree_fields(expected)):
            np.testing.assert_array_equal(got, want)

    @settings(max_examples=60, deadline=None)
    @given(distinct_sorted_codes)
    def test_property_vectorized_matches_reference(self, codes):
        expected = build_radix_tree_reference(codes)
        tree = allocate_tree(len(codes))
        build_radix_tree_cpu(codes, tree)
        for got, want in zip(tree_fields(tree), tree_fields(expected)):
            np.testing.assert_array_equal(got, want)


class TestStructuralInvariants:
    @settings(max_examples=40, deadline=None)
    @given(distinct_sorted_codes)
    def test_every_leaf_has_exactly_one_parent(self, codes):
        tree = allocate_tree(len(codes))
        build_radix_tree_cpu(codes, tree)
        assert np.all(tree.leaf_parent >= 0)

    @settings(max_examples=40, deadline=None)
    @given(distinct_sorted_codes)
    def test_single_root_and_connected(self, codes):
        tree = allocate_tree(len(codes))
        build_radix_tree_cpu(codes, tree)
        roots = np.nonzero(tree.parent < 0)[0]
        assert list(roots) == [0]
        # Walking up from any internal node reaches the root.
        for i in range(tree.num_internal):
            node, hops = i, 0
            while tree.parent[node] >= 0:
                node = tree.parent[node]
                hops += 1
                assert hops <= tree.num_internal
            assert node == 0

    @settings(max_examples=40, deadline=None)
    @given(distinct_sorted_codes)
    def test_children_partition_key_range(self, codes):
        """Node i covers [range_left, range_right] and its children split
        that range at gamma."""
        tree = allocate_tree(len(codes))
        build_radix_tree_cpu(codes, tree)
        for i in range(tree.num_internal):
            left, right = tree.range_left[i], tree.range_right[i]
            gamma = tree.left[i]
            assert left <= gamma < right
            if not tree.left_is_leaf[i]:
                child = tree.left[i]
                assert tree.range_left[child] == left
                assert tree.range_right[child] == gamma
            if not tree.right_is_leaf[i]:
                child = tree.right[i]
                assert tree.range_left[child] == gamma + 1
                assert tree.range_right[child] == right

    @settings(max_examples=40, deadline=None)
    @given(distinct_sorted_codes)
    def test_delta_monotone_down_the_tree(self, codes):
        """A child's common prefix is at least as long as its parent's."""
        tree = allocate_tree(len(codes))
        build_radix_tree_cpu(codes, tree)
        for i in range(tree.num_internal):
            parent = tree.parent[i]
            if parent >= 0:
                assert tree.delta_node[i] >= tree.delta_node[parent]

    @settings(max_examples=40, deadline=None)
    @given(distinct_sorted_codes)
    def test_root_covers_everything(self, codes):
        tree = allocate_tree(len(codes))
        build_radix_tree_cpu(codes, tree)
        assert tree.range_left[0] == 0
        assert tree.range_right[0] == len(codes) - 1

    def test_internal_node_count(self):
        codes = make_codes(17, seed=9)
        tree = allocate_tree(17)
        build_radix_tree_cpu(codes, tree)
        assert tree.num_internal == 16
        assert tree.num_leaves == 17


class TestEdgeCases:
    def test_single_leaf(self):
        tree = allocate_tree(1)
        build_radix_tree_cpu(np.array([5], dtype=np.uint32), tree)
        assert tree.num_internal == 0

    def test_two_leaves(self):
        codes = np.array([1, 2], dtype=np.uint32)
        tree = allocate_tree(2)
        build_radix_tree_cpu(codes, tree)
        assert tree.left_is_leaf[0] and tree.right_is_leaf[0]
        assert tree.left[0] == 0 and tree.right[0] == 1

    def test_rejects_unsorted(self):
        tree = allocate_tree(3)
        with pytest.raises(KernelError):
            build_radix_tree_cpu(np.array([3, 1, 2], dtype=np.uint32), tree)

    def test_rejects_duplicates(self):
        tree = allocate_tree(3)
        with pytest.raises(KernelError):
            build_radix_tree_cpu(np.array([1, 1, 2], dtype=np.uint32), tree)

    def test_rejects_size_mismatch(self):
        tree = allocate_tree(4)
        with pytest.raises(KernelError):
            build_radix_tree_cpu(np.array([1, 2, 3], dtype=np.uint32), tree)

    def test_rejects_empty(self):
        with pytest.raises(KernelError):
            allocate_tree(0)

    def test_adjacent_codes(self):
        """Codes differing only in the lowest bit."""
        codes = np.arange(8, dtype=np.uint32)
        tree = allocate_tree(8)
        build_radix_tree_cpu(codes, tree)
        expected = build_radix_tree_reference(codes)
        np.testing.assert_array_equal(tree.delta_node, expected.delta_node)
