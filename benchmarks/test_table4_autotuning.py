"""Benchmark + shape check for Table 4 (the autotuning campaign)."""

from benchmarks.conftest import run_once
from repro.eval.experiments import format_table4, run_table4


def test_table4_autotuning_log(benchmark, paper_scale):
    result = run_once(benchmark, run_table4, paper_scale)
    print("\n" + format_table4(result))

    entries = result.autotune.entries
    assert len(entries) >= 10

    # Predicted latencies are sorted (the optimizer's output order) and
    # cluster into tiers.
    predicted = [e.predicted_latency_s for e in entries]
    assert predicted == sorted(predicted)

    # Level-3 autotuning finds a measured-best at least as good as the
    # predicted-best, with a tangible gain (paper: 1.35x).
    assert result.autotuning_gain >= 1.0
    # Within the top candidates, measured order differs from predicted
    # order somewhere - the reason autotuning exists at all.
    measured = [e.measured_latency_s for e in entries]
    assert measured != sorted(measured)
