"""Fidelity pins: the virtual platforms must match the paper's Table 2.

These tests freeze the *architectural* facts (core counts, frequencies,
GPU identities, pinnability) so future calibration of the behavioural
knobs cannot silently drift the hardware descriptions away from the
paper.
"""

import pytest

from repro.soc import get_platform
from repro.soc.pu import BIG, GPU, LITTLE, MEDIUM


class TestPixel7a:
    @pytest.fixture(scope="class")
    def platform(self):
        return get_platform("pixel7a")

    def test_cpu_tiers(self, platform):
        big = platform.clusters[BIG]
        assert (big.cores, big.freq_ghz, big.model) == (
            2, 2.85, "Cortex-X1"
        )
        medium = platform.clusters[MEDIUM]
        assert (medium.cores, medium.freq_ghz) == (2, 2.35)
        little = platform.clusters[LITTLE]
        assert (little.cores, little.freq_ghz) == (4, 1.80)

    def test_gpu(self, platform):
        assert platform.gpu.model == "Mali-G710 MP7"
        assert platform.gpu.vendor == "arm"
        assert platform.gpu.api == "vulkan"

    def test_fully_pinnable(self, platform):
        assert platform.affinity.pinnable_cores() == 8
        assert len(platform.schedulable_classes()) == 4


class TestOnePlus11:
    @pytest.fixture(scope="class")
    def platform(self):
        return get_platform("oneplus11")

    def test_cpu_tiers(self, platform):
        assert platform.clusters[BIG].cores == 1
        assert platform.clusters[BIG].freq_ghz == 3.2
        assert platform.clusters[BIG].model == "Cortex-X3"
        assert platform.clusters[MEDIUM].cores == 4
        assert platform.clusters[LITTLE].cores == 3

    def test_gpu(self, platform):
        assert platform.gpu.model == "Adreno 740"
        assert platform.gpu.vendor == "qualcomm"
        assert platform.gpu.api == "vulkan"

    def test_five_of_eight_pinnable(self, platform):
        assert platform.affinity.total_cores() == 8
        assert platform.affinity.pinnable_cores() == 5
        assert LITTLE not in platform.schedulable_classes()


class TestJetson:
    def test_normal_mode(self):
        platform = get_platform("jetson_orin_nano")
        cpu = platform.clusters[BIG]
        assert (cpu.cores, cpu.freq_ghz, cpu.model) == (
            6, 1.7, "Cortex-A78AE"
        )
        assert platform.gpu.vendor == "nvidia"
        assert platform.gpu.api == "cuda"
        assert len(platform.pu_classes()) == 2

    def test_low_power_mode_shuts_cores_and_halves_clock(self):
        normal = get_platform("jetson_orin_nano")
        lp = get_platform("jetson_orin_nano_lp")
        assert lp.clusters[BIG].cores == normal.clusters[BIG].cores - 2
        assert lp.clusters[BIG].freq_ghz == pytest.approx(0.85)
        assert lp.gpu.freq_ghz < normal.gpu.freq_ghz
        assert lp.interference.dram_bw_gbps < normal.interference.dram_bw_gbps


class TestBehaviouralDirections:
    """The Fig. 7 interference signs, pinned at the model level."""

    def test_pixel_dvfs_directions(self):
        dvfs = get_platform("pixel7a").interference.dvfs
        assert dvfs[BIG].speed_at_full_load < 1.0
        assert dvfs[MEDIUM].speed_at_full_load < 1.0
        assert dvfs[LITTLE].speed_at_full_load < 1.0
        assert dvfs[GPU].speed_at_full_load > 1.0

    def test_oneplus_boost_anomalies(self):
        dvfs = get_platform("oneplus11").interference.dvfs
        assert dvfs[LITTLE].speed_at_full_load > 1.0
        assert dvfs[GPU].speed_at_full_load > 1.0
        assert dvfs[MEDIUM].speed_at_full_load == pytest.approx(1.0)

    def test_jetson_throttles_harder_in_lp(self):
        normal = get_platform("jetson_orin_nano").interference.dvfs
        lp = get_platform("jetson_orin_nano_lp").interference.dvfs
        assert normal[GPU].speed_at_full_load < 1.0
        assert lp[GPU].speed_at_full_load < normal[GPU].speed_at_full_load

    def test_vulkan_launch_costs_exceed_cuda(self):
        mali = get_platform("pixel7a").gpu
        adreno = get_platform("oneplus11").gpu
        ampere = get_platform("jetson_orin_nano").gpu
        assert mali.launch_overhead_s > 5 * ampere.launch_overhead_s
        assert adreno.launch_overhead_s > 5 * ampere.launch_overhead_s
