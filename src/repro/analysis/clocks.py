"""Clock-domain discipline analysis (the second ``repro flow`` pass).

The tracer (PR 5) defines two clock domains: ``control`` - logical
scheduler ticks - and ``virtual`` - DES seconds.  Both are plain ints/
floats at runtime, so nothing stops ``deadline_tick + budget_s`` from
type-checking; it is simply wrong by a unit error, and unit errors in
deadline arithmetic are exactly the class of bug that silently skews a
soak without failing any assertion.

This pass infers a domain for every value from the repo's naming
convention (which the codebase already follows consistently):

* ``*_s`` / ``*_sec`` / ``*_secs`` / ``*_seconds``  -> **VIRTUAL**
  (seconds),
* ``tick`` / ``ticks`` / ``beat`` / ``beats`` and the ``*_tick`` /
  ``*_ticks`` / ``*_beat`` / ``*_beats`` suffixes -> **CONTROL**
  (logical ticks),
* everything else -> unknown (never reported).

Rules:

* ``CLOCK-MIX``  - ``+``/``-``/``%``/comparison over operands of
  *different known* domains, or assigning a known domain into a name
  declared as the other.
* ``CLOCK-CALL`` - passing a known domain where a call parameter's
  name declares the other (resolved project calls check positional
  args; *every* call checks keyword argument names).

``*`` and ``/`` are conversions between domains (``ticks * dt_s``),
so multiplicative results are unknown by construction - the analysis
never flags a legitimate unit conversion.
"""

from __future__ import annotations

import ast
import re
from bisect import bisect_left
from itertools import accumulate
from typing import Dict, List, Optional

from repro.analysis.astcache import ParsedModule
from repro.analysis.callgraph import (
    ClassInfo,
    FunctionInfo,
    Project,
)
from repro.analysis.rules import Finding

CONTROL = "control-ticks"
VIRTUAL = "virtual-seconds"

_SECONDS_SUFFIXES = ("_s", "_sec", "_secs", "_seconds")
_TICK_SUFFIXES = ("_tick", "_ticks", "_beat", "_beats")
_TICK_NAMES = frozenset({"tick", "ticks", "beat", "beats"})
_SECONDS_NAMES = frozenset({"seconds"})

#: Arithmetic that requires both operands in one domain.
_ADDITIVE = (ast.Add, ast.Sub, ast.Mod)


#: Any source line that could introduce a known clock domain contains
#: one of these tokens (identifier suffixes / bare names, see
#: :func:`domain_of_name`).  Matching raw text over-approximates -
#: comments and strings count - which is exactly what a skip-filter
#: needs: a function whose lines never match cannot yield a finding.
_DOMAIN_TOKEN = re.compile(
    r"(?i)(?:_s|_secs?|_seconds|_ticks?|_beats?"
    r"|\bticks?|\bbeats?|\bseconds)\b")

#: Same alternatives, for anchored validation of a candidate offset
#: (no leading ``\b`` - the caller checks the left boundary itself).
_DOMAIN_TOKEN_AT = re.compile(
    r"(?i)(?:_s|_secs?|_seconds|_ticks?|_beats?"
    r"|ticks?|beats?|seconds)\b")

#: Substrings that appear in every (lower-cased) domain token; the
#: ``_s`` needle also covers ``_secs``/``_seconds`` prefixes.
_TOKEN_NEEDLES = ("_s", "tick", "beat", "second")


def _token_positions(source: str) -> List[int]:
    """Sorted offsets where :data:`_DOMAIN_TOKEN` matches ``source``.

    ``sre`` has no multi-literal scan, so ``finditer`` with this
    alternation walks the text position by position - it dominated the
    whole clock pass.  ``str.find`` over a handful of needles is a
    C-level memchr scan; each candidate is then validated with one
    anchored match.  Falls back to the plain scan in the (non-ASCII)
    corner where lower-casing changes string length and offsets would
    skew.
    """
    lowered = source.lower()
    if len(lowered) != len(source):  # pragma: no cover - exotic case
        return [m.start() for m in _DOMAIN_TOKEN.finditer(source)]
    candidates = set()
    for needle in _TOKEN_NEEDLES:
        pos = lowered.find(needle)
        while pos >= 0:
            candidates.add(pos)
            if needle != "_s" and pos and lowered[pos - 1] == "_":
                # _ticks / _beats / _seconds match from the underscore.
                candidates.add(pos - 1)
            pos = lowered.find(needle, pos + 1)
    hits = []
    for pos in sorted(candidates):
        if _DOMAIN_TOKEN_AT.match(lowered, pos) is None:
            continue
        if lowered[pos] != "_" and pos:
            prev = lowered[pos - 1]
            if prev.isalnum() or prev == "_":
                continue  # bare token needs a left word boundary
        hits.append(pos)
    return hits


def domain_of_name(name: str) -> Optional[str]:
    """The clock domain a naming convention declares, if any."""
    lowered = name.lower()
    if lowered in _TICK_NAMES or lowered.endswith(_TICK_SUFFIXES):
        return CONTROL
    if lowered in _SECONDS_NAMES \
            or lowered.endswith(_SECONDS_SUFFIXES):
        return VIRTUAL
    return None


class _ClockChecker:
    """Single-pass domain checker over one function (or module) body."""

    def __init__(self, project: Project, path: str,
                 fn: Optional[FunctionInfo]) -> None:
        self.project = project
        self.path = path
        self.module = project.modules.get(fn.module) if fn else None
        self.enclosing_class = fn.cls if fn else None
        self.env: Dict[str, str] = {}
        self.findings: List[Finding] = []
        if fn is not None:
            for param in tuple(fn.params) + tuple(fn.kwonly_params):
                declared = domain_of_name(param)
                if declared is not None:
                    self.env[param] = declared

    def emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.findings.append(Finding(
            rule_id=rule_id, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), message=message,
        ))

    # -- domains -------------------------------------------------------
    def domain(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, domain_of_name(node.id))
        if isinstance(node, ast.Attribute):
            return domain_of_name(node.attr)
        if isinstance(node, ast.Subscript):
            return self.domain(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            terminal = func.attr if isinstance(func, ast.Attribute) \
                else (func.id if isinstance(func, ast.Name) else "")
            if terminal in ("int", "float", "round", "abs",
                            "min", "max", "sum"):
                domains = {self.domain(a) for a in node.args}
                domains.discard(None)
                if len(domains) == 1:
                    return domains.pop()
                return None
            return domain_of_name(terminal)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, _ADDITIVE):
                left = self.domain(node.left)
                right = self.domain(node.right)
                return left if left is not None else right
            return None  # * and / convert between domains
        if isinstance(node, ast.UnaryOp):
            return self.domain(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.domain(node.body)
            orelse = self.domain(node.orelse)
            return body if body == orelse else None
        return None

    # -- traversal -----------------------------------------------------
    def check_expr(self, node: ast.expr) -> None:
        # Hand-rolled DFS: this visits every expression in the tree,
        # and ``ast.walk``'s generator machinery dominated the whole
        # pass's runtime.  Only expression children are pushed - clock
        # operands cannot hide in statement positions of an expression.
        stack: List[ast.AST] = [node]
        while stack:
            sub = stack.pop()
            cls = sub.__class__
            if cls is ast.Name or cls is ast.Constant:
                continue  # leaves: nothing to check, nothing to push
            if cls is ast.BinOp:
                if isinstance(sub.op, _ADDITIVE):
                    left = self.domain(sub.left)
                    right = self.domain(sub.right)
                    if left and right and left != right:
                        self.emit(
                            sub, "CLOCK-MIX",
                            f"additive arithmetic mixes {left} with "
                            f"{right}; convert explicitly (multiply by "
                            "the tick period) before combining clock "
                            "domains",
                        )
                stack.append(sub.left)
                stack.append(sub.right)
                continue
            if cls is ast.Compare:
                left_domain = self.domain(sub.left)
                for comparator in sub.comparators:
                    right_domain = self.domain(comparator)
                    if (left_domain and right_domain
                            and left_domain != right_domain):
                        self.emit(
                            sub, "CLOCK-MIX",
                            f"comparison mixes {left_domain} with "
                            f"{right_domain}; the two tracer clock "
                            "domains are not commensurable",
                        )
                stack.append(sub.left)
                stack.extend(sub.comparators)
                continue
            if cls is ast.Call:
                self.check_call(sub)
                stack.append(sub.func)
                stack.extend(sub.args)
                for keyword in sub.keywords:
                    stack.append(keyword.value)
                continue
            for child in ast.iter_child_nodes(sub):
                if isinstance(child, ast.expr):
                    stack.append(child)
                elif isinstance(child, ast.comprehension):
                    stack.append(child.iter)
                    stack.extend(child.ifs)

    def check_call(self, call: ast.Call) -> None:
        params: tuple = ()
        target = None
        if self.module is not None:
            target = self.project.resolve(call.func, self.module,
                                          self.enclosing_class)
        if isinstance(target, FunctionInfo):
            params = tuple(target.params) + tuple(target.kwonly_params)
        elif isinstance(target, ClassInfo):
            params = target.init_params()
        for index, arg in enumerate(call.args):
            if index >= len(params):
                break
            expected = domain_of_name(params[index])
            actual = self.domain(arg)
            if expected and actual and expected != actual:
                self.emit(
                    call, "CLOCK-CALL",
                    f"argument {index} is {actual} but parameter "
                    f"'{params[index]}' expects {expected}",
                )
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            expected = domain_of_name(keyword.arg)
            actual = self.domain(keyword.value)
            if expected and actual and expected != actual:
                self.emit(
                    call, "CLOCK-CALL",
                    f"keyword '{keyword.arg}' expects {expected} but "
                    f"the argument is {actual}",
                )

    def check_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # analysed separately
        if isinstance(stmt, ast.Assign):
            self.check_expr(stmt.value)
            value_domain = self.domain(stmt.value)
            for target in stmt.targets:
                self.check_assign_target(target, value_domain,
                                         stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.check_expr(stmt.value)
            self.check_assign_target(stmt.target,
                                     self.domain(stmt.value),
                                     stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.check_expr(stmt.value)
            if isinstance(stmt.op, _ADDITIVE):
                target_domain = self.domain(stmt.target)
                value_domain = self.domain(stmt.value)
                if (target_domain and value_domain
                        and target_domain != value_domain):
                    self.emit(
                        stmt, "CLOCK-MIX",
                        f"augmented assignment adds {value_domain} "
                        f"into a {target_domain} accumulator",
                    )
        else:
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self.check_expr(sub)
                elif isinstance(sub, ast.stmt):
                    self.check_stmt(sub)
                elif isinstance(sub, (ast.withitem,
                                      ast.excepthandler)):
                    for inner in ast.iter_child_nodes(sub):
                        if isinstance(inner, ast.expr):
                            self.check_expr(inner)
                        elif isinstance(inner, ast.stmt):
                            self.check_stmt(inner)

    def check_assign_target(self, target: ast.expr,
                            value_domain: Optional[str],
                            value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            declared = domain_of_name(target.id)
            if declared and value_domain and declared != value_domain:
                self.emit(
                    value, "CLOCK-MIX",
                    f"assigning a {value_domain} value to "
                    f"'{target.id}', which declares {declared}",
                )
            resolved = declared or value_domain
            if resolved is not None:
                self.env[target.id] = resolved
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            declared = domain_of_name(target.attr)
            if declared and value_domain and declared != value_domain:
                self.emit(
                    value, "CLOCK-MIX",
                    f"assigning a {value_domain} value to attribute "
                    f"'.{target.attr}', which declares {declared}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            pass  # element-wise domains unknown

    def check_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.check_stmt(stmt)


def check_clocks(parsed: ParsedModule,
                 project: Project) -> List[Finding]:
    """Clock-domain findings for one module (functions + top level)."""
    findings: List[Finding] = []
    source = parsed.source
    # One regex scan of the whole module collects every domain-token
    # position; per-function "could this span name a clock domain at
    # all?" then becomes a bisect into that list instead of a fresh
    # bounded search per function.  Token-free functions are skipped -
    # they cannot yield a finding.
    hits = _token_positions(source)
    if not hits:
        return findings
    # Character offset of each line start (all C-level list building):
    # a function's line span becomes a char span.
    starts = [0, *accumulate(
        map(len, source.splitlines(keepends=True)))]
    last_line = len(starts) - 1

    def span_has_token(node: ast.AST) -> bool:
        first = min(getattr(node, "lineno", 1), last_line)
        last = getattr(node, "end_lineno", None)
        lo = starts[first - 1]
        hi = starts[last] if (last is not None
                              and last <= last_line) else len(source)
        index = bisect_left(hits, lo)
        return index < len(hits) and hits[index] < hi

    for fn in project.functions_in(parsed.path):
        if not span_has_token(fn.node):
            continue
        checker = _ClockChecker(project, parsed.path, fn)
        checker.check_body(fn.node.body)
        findings.extend(checker.findings)
    top = _ClockChecker(project, parsed.path, None)
    top.check_body([
        s for s in parsed.tree.body
        if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef))
    ])
    findings.extend(top.findings)
    return findings
