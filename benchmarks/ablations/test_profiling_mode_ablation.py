"""Ablation: profiling mode x utilization filter (a 2x2).

The paper co-designs its two ideas: interference-aware profiling AND the
gapness filter whose schedules recreate the profiled co-run conditions
(section 3.3, "Optimization One").  Ablating them independently on
AlexNet-sparse @ Pixel separates their contributions:

* the *filter* is what rescues rank correlation (it restores the
  conditions either table was collected under for the surviving
  schedules);
* the *table mode* sets the bias direction: isolated tables are
  systematically optimistic (the paper's 4.95 ms-predicted /
  7.77 ms-measured motivation), interference-heavy tables conservative.
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.apps import build_alexnet_sparse
from repro.core.autotuner import Autotuner
from repro.core.optimizer import BTOptimizer
from repro.core.profiler import INTERFERENCE, ISOLATED, BTProfiler
from repro.eval.metrics import pearson_correlation
from repro.soc import get_platform


def test_profiling_mode_times_filter_grid(benchmark):
    platform = get_platform("pixel7a")
    application = build_alexnet_sparse()
    profiler = BTProfiler(platform, repetitions=10)
    schedulable = platform.schedulable_classes()
    tables = {
        mode: profiler.profile(application, mode=mode).restricted(
            schedulable
        )
        for mode in (INTERFERENCE, ISOLATED)
    }

    def ablate():
        grid = {}
        for mode in (INTERFERENCE, ISOLATED):
            for filtered, slack in (("filter", 0.10),
                                    ("nofilter", math.inf)):
                optimization = BTOptimizer(
                    application, tables[mode], k=20, gap_slack=slack
                ).optimize()
                tuned = Autotuner(
                    application, platform, eval_tasks=20
                ).tune(optimization)
                predicted = [e.predicted_latency_s for e in tuned.entries]
                measured = [e.measured_latency_s for e in tuned.entries]
                signed = [
                    (p - m) / m for p, m in zip(predicted, measured)
                ]
                grid[(mode, filtered)] = (
                    pearson_correlation(predicted, measured),
                    sum(signed) / len(signed),
                )
        return grid

    grid = run_once(benchmark, ablate)
    print("\nmode x filter -> (correlation, signed bias):")
    for key, (r, bias) in grid.items():
        print(f"  {key}: r={r:+.3f}, bias={bias:+.3f}")

    # The BetterTogether corner correlates strongly.
    assert grid[(INTERFERENCE, "filter")][0] > 0.9
    # The filter is what rescues rank correlation, for either table.
    for mode in (INTERFERENCE, ISOLATED):
        assert (
            grid[(mode, "filter")][0]
            > grid[(mode, "nofilter")][0] + 0.3
        )
    # Isolated tables are optimistic, interference-heavy conservative.
    for filtered in ("filter", "nofilter"):
        assert grid[(ISOLATED, filtered)][1] < 0.0
        assert grid[(INTERFERENCE, filtered)][1] > 0.0
