"""repro.serve: online multi-tenant serving on one virtual SoC.

The offline flow (profile -> optimize -> autotune -> deploy) freezes
one schedule per pipeline.  This package keeps the loop closed at
serve time: an interference-aware admission controller decides who may
share the SoC, a placement map partitions the PU classes across
admitted tenants (no oversubscription, ever), and an online
rescheduler watches measured window latencies for drift and re-ranks
each tenant's cached candidates under the load actually present -
falling back to evicting the lowest-priority tenant when nothing fits.
"""

from repro.serve.admission import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.metrics import (
    ServeReport,
    TenantMetrics,
    attainment,
    fleet_p95,
    merge_latencies,
    percentile,
)
from repro.serve.placement import PlacementMap, tenant_offered_load
from repro.serve.rescheduler import (
    EVICT,
    HOLD,
    SWITCH,
    OnlineRescheduler,
    RescheduleAction,
)
from repro.serve.scenario import (
    SoakScenario,
    build_soak_server,
    run_soak,
)
from repro.serve.server import (
    DriftSpec,
    PipelineServer,
    ServerConfig,
)
from repro.serve.tenant import (
    COMPLETED,
    EVICTED,
    FAILED,
    PENDING,
    QUEUED,
    REJECTED,
    RUNNING,
    TERMINAL_STATES,
    TenantRecord,
    TenantSpec,
    WindowResult,
)

__all__ = [
    "ADMIT",
    "AdmissionController",
    "AdmissionDecision",
    "COMPLETED",
    "DriftSpec",
    "EVICT",
    "EVICTED",
    "FAILED",
    "HOLD",
    "OnlineRescheduler",
    "PENDING",
    "PipelineServer",
    "PlacementMap",
    "QUEUE",
    "QUEUED",
    "REJECT",
    "REJECTED",
    "RUNNING",
    "RescheduleAction",
    "SWITCH",
    "ServeReport",
    "ServerConfig",
    "SoakScenario",
    "TERMINAL_STATES",
    "TenantMetrics",
    "TenantRecord",
    "TenantSpec",
    "WindowResult",
    "attainment",
    "build_soak_server",
    "fleet_p95",
    "merge_latencies",
    "percentile",
    "run_soak",
    "tenant_offered_load",
]
