"""Byte-for-byte equivalence of the two DES engines.

The ``vector`` batch-event kernel is only allowed to be *faster* than
the ``reference`` scalar loop - never different.  Every test serializes
the full :class:`SimulatedRunResult` (completions, busy seconds,
recorded spans, steady interval, event counts) from both engines and
compares the JSON bytes, across schedules, depths, arrival processes,
fault injection, and external load.  The kernel's rate memoization is
exact, not approximate: rates between events are a pure function of
the discrete phase signature, so a cached vector must be bit-equal to
a recomputed one - which is what byte-comparison (rather than
``pytest.approx``) pins down.
"""

import dataclasses
import json

import pytest

import repro.runtime.simulator as sim
from repro.apps import build_octree_application
from repro.core import Chunk
from repro.errors import PipelineError, PuFailureError
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    PuDropoutSpec,
    SimulatedPipelineExecutor,
    SlowdownSpec,
)
from repro.soc import get_platform
from repro.soc.interference import ExternalLoad
from repro.soc.pu import BIG, GPU, LITTLE, MEDIUM


@pytest.fixture(scope="module")
def pixel():
    return get_platform("pixel7a")


@pytest.fixture(scope="module")
def app():
    return build_octree_application(n_points=20_000)


SCHEDULES = {
    "serial": [Chunk(0, 7, BIG)],
    "two-way": [Chunk(0, 4, BIG), Chunk(4, 7, GPU)],
    "four-way": [Chunk(0, 2, BIG), Chunk(2, 4, GPU),
                 Chunk(4, 6, MEDIUM), Chunk(6, 7, LITTLE)],
    "max-split": [Chunk(0, 1, LITTLE), Chunk(1, 2, MEDIUM),
                  Chunk(2, 5, GPU), Chunk(5, 7, BIG)],
}

EXTERNAL = ExternalLoad(busy={BIG: 0.5, GPU: 0.25}, demand_gbps=2.0)


def serialized(result):
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


def run_both(app, pixel, chunks, n=20, record_trace=True, **kwargs):
    run_args = {
        key: kwargs.pop(key)
        for key in ("arrival_period_s",) if key in kwargs
    }
    results = []
    for engine in ("vector", "reference"):
        executor = SimulatedPipelineExecutor(
            app, chunks, pixel, engine=engine, **kwargs
        )
        results.append(
            executor.run(n, record_trace=record_trace, **run_args)
        )
    return results


def assert_equivalent(app, pixel, chunks, **kwargs):
    vector, reference = run_both(app, pixel, chunks, **kwargs)
    assert serialized(vector) == serialized(reference)


class TestEngineSelection:
    def test_env_var_selects_reference(self, app, pixel, monkeypatch):
        monkeypatch.setenv(sim.ENGINE_ENV, "reference")
        executor = SimulatedPipelineExecutor(
            app, SCHEDULES["serial"], pixel
        )
        assert executor.engine == sim.ENGINE_REFERENCE

    def test_explicit_argument_beats_env(self, app, pixel, monkeypatch):
        monkeypatch.setenv(sim.ENGINE_ENV, "reference")
        executor = SimulatedPipelineExecutor(
            app, SCHEDULES["serial"], pixel, engine="vector"
        )
        assert executor.engine == sim.ENGINE_VECTOR

    def test_unknown_engine_rejected(self, app, pixel):
        with pytest.raises(PipelineError, match="unknown simulator"):
            SimulatedPipelineExecutor(
                app, SCHEDULES["serial"], pixel, engine="turbo"
            )


class TestByteEquivalence:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_across_schedules(self, app, pixel, schedule):
        assert_equivalent(app, pixel, SCHEDULES[schedule])

    @pytest.mark.parametrize("depth", [1, 2, 3, 8])
    def test_across_depths(self, app, pixel, depth):
        assert_equivalent(app, pixel, SCHEDULES["two-way"], depth=depth)

    @pytest.mark.parametrize("period", [0.0005, 0.005, 0.05])
    def test_across_arrival_periods(self, app, pixel, period):
        assert_equivalent(app, pixel, SCHEDULES["four-way"],
                          arrival_period_s=period)

    def test_with_external_load(self, app, pixel):
        assert_equivalent(app, pixel, SCHEDULES["four-way"],
                          external_load=EXTERNAL)

    def test_with_same_class_external_share(self, app, pixel):
        # External load on a chunk's *own* class exercises the
        # fair-share rate division.
        assert_equivalent(
            app, pixel, SCHEDULES["two-way"],
            external_load=ExternalLoad(busy={BIG: 0.7},
                                       demand_gbps=1.0),
        )

    def test_with_slowdown_faults(self, app, pixel):
        def injector():
            return FaultInjector(FaultPlan(slowdowns=[
                SlowdownSpec(task_id=3, stage_index=2, factor=5.0,
                             pu_class=BIG),
                SlowdownSpec(task_id=7, stage_index=5, factor=2.5),
            ]))

        vector, reference = (
            SimulatedPipelineExecutor(
                app, SCHEDULES["two-way"], pixel, engine=engine,
                fault_injector=injector(),
            ).run(20, record_trace=True)
            for engine in ("vector", "reference")
        )
        assert serialized(vector) == serialized(reference)

    def test_pu_dropout_raises_in_both(self, app, pixel):
        for engine in ("vector", "reference"):
            executor = SimulatedPipelineExecutor(
                app, SCHEDULES["two-way"], pixel, engine=engine,
                fault_injector=FaultInjector(FaultPlan(dropouts=[
                    PuDropoutSpec(pu_class=GPU, after_task=4),
                ])),
            )
            with pytest.raises(PuFailureError):
                executor.run(20)

    def test_everything_at_once(self, app, pixel):
        assert_equivalent(
            app, pixel, SCHEDULES["max-split"], n=25, depth=3,
            arrival_period_s=0.002, external_load=EXTERNAL,
        )

    def test_single_task(self, app, pixel):
        assert_equivalent(app, pixel, SCHEDULES["two-way"], n=1)

    def test_rerun_on_one_executor_stays_identical(self, app, pixel):
        # Warm caches (rate signatures, noise) must not change results.
        executor = SimulatedPipelineExecutor(
            app, SCHEDULES["four-way"], pixel, external_load=EXTERNAL
        )
        first = serialized(executor.run(20, record_trace=True))
        second = serialized(executor.run(20, record_trace=True))
        reference = serialized(SimulatedPipelineExecutor(
            app, SCHEDULES["four-way"], pixel, external_load=EXTERNAL,
            engine="reference",
        ).run(20, record_trace=True))
        assert first == second == reference


class TestArrayCore:
    """The kernel's numpy core (wide pipelines) must match too; narrow
    schedules take the scalar core, so force the array core's cutoff
    down to cover it on the same cases."""

    @pytest.fixture(autouse=True)
    def force_array_core(self, monkeypatch):
        monkeypatch.setattr(sim, "_SCALAR_CORE_MAX_SERVERS", 0)

    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_across_schedules(self, app, pixel, schedule):
        assert_equivalent(app, pixel, SCHEDULES[schedule])

    def test_everything_at_once(self, app, pixel):
        assert_equivalent(
            app, pixel, SCHEDULES["max-split"], n=25, depth=3,
            arrival_period_s=0.002, external_load=EXTERNAL,
        )

    def test_wide_pipeline_uses_arrays_by_default(self, app, pixel,
                                                  monkeypatch):
        monkeypatch.setattr(sim, "_SCALAR_CORE_MAX_SERVERS", 8)
        executor = SimulatedPipelineExecutor(
            app, SCHEDULES["max-split"], pixel, engine="vector"
        )
        executor.run(5)
        assert executor._vector_engine is not None
        assert not executor._vector_engine.use_arrays  # 4 servers
        wide = SimulatedPipelineExecutor(
            app, SCHEDULES["max-split"], pixel, engine="vector"
        )
        monkeypatch.setattr(sim, "_SCALAR_CORE_MAX_SERVERS", 2)
        wide.run(5)
        assert wide._vector_engine.use_arrays


class TestBatching:
    def test_run_batch_matches_sequential_runs(self, app, pixel):
        batch = SimulatedPipelineExecutor(
            app, SCHEDULES["two-way"], pixel
        ).run_batch([5, 10, 15])
        singles = [
            SimulatedPipelineExecutor(
                app, SCHEDULES["two-way"], pixel
            ).run(n)
            for n in (5, 10, 15)
        ]
        assert ([serialized(r) for r in batch]
                == [serialized(r) for r in singles])

    def test_simulate_batch_collects_errors(self, app, pixel):
        healthy = SimulatedPipelineExecutor(
            app, SCHEDULES["two-way"], pixel
        )
        doomed = SimulatedPipelineExecutor(
            app, SCHEDULES["two-way"], pixel,
            fault_injector=FaultInjector(FaultPlan(dropouts=[
                PuDropoutSpec(pu_class=GPU, after_task=0),
            ])),
        )
        outcomes = sim.simulate_batch(
            [sim.SimWindow(healthy, 5), sim.SimWindow(doomed, 5),
             sim.SimWindow(healthy, 8)],
            collect_errors=True,
        )
        assert outcomes[0].result is not None and outcomes[0].error is None
        assert isinstance(outcomes[1].error, PuFailureError)
        assert outcomes[1].result is None
        assert outcomes[2].result.n_tasks == 8

    def test_simulate_batch_propagates_without_collect(self, app, pixel):
        doomed = SimulatedPipelineExecutor(
            app, SCHEDULES["two-way"], pixel,
            fault_injector=FaultInjector(FaultPlan(dropouts=[
                PuDropoutSpec(pu_class=GPU, after_task=0),
            ])),
        )
        with pytest.raises(PuFailureError):
            sim.simulate_batch([sim.SimWindow(doomed, 5)])
