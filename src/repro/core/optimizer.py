"""BT-Optimizer (paper section 3.3): three-level schedule optimization.

Level 1 - *Utilization*: encode the assignment problem as constraints
(C1 exactly-one-PU-per-stage, C2 contiguity, optional C3 per-chunk runtime
bounds) and minimize **gapness** ``T_max - T_min`` (objective O1).  The
key insight: low-gapness schedules keep every PU busy, which matches the
co-run conditions the interference-aware profiling table was collected
under, so their predictions are trustworthy.

Level 2 - *Latency*: enumerate ``K`` diverse candidates by repeatedly
solving for minimum predicted latency among schedules within the gapness
threshold, each time blocking the previous solution (constraint C5-ell).
Candidates emerge sorted by predicted latency and cluster into
*performance tiers*.

Level 3 - *Autotuning* lives in :mod:`repro.core.autotuner`: the top
candidates are actually executed and the measured best wins.

The constraint encoding targets :mod:`repro.solver` (the z3 stand-in);
solver invocations on paper-scale instances (N=9, M=4) complete well
under the paper's 50 ms figure.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profiler import ProfilingTable
from repro.core.schedule import Schedule, validate_schedule
from repro.core.stage import Application
from repro.errors import SchedulingError, SolverTimeoutError
from repro.obs.metrics import metrics
from repro.obs.tracer import tracer
from repro.solver import Model, Solver

#: Number of diverse candidates level 2 produces (paper: K = 20).
DEFAULT_K = 20
#: Gapness slack relative to the level-1 optimum, as a fraction of the
#: optimal T_max.  Schedules above the threshold are filtered out as
#: "underutilizing the device".
DEFAULT_GAP_SLACK = 0.10


@dataclass(frozen=True)
class ScheduleCandidate:
    """One level-2 candidate with its model predictions."""

    rank: int
    schedule: Schedule
    predicted_latency_s: float
    gapness_s: float


@dataclass
class OptimizationResult:
    """Everything BT-Optimizer produces for one (app, platform) pair."""

    application: str
    platform: str
    candidates: List[ScheduleCandidate]
    gap_threshold_s: float
    utilization_optimum: Optional[ScheduleCandidate]
    solver_invocations: int = 0
    solver_wall_s: float = 0.0
    #: True when the solver's wall-clock budget expired and the result
    #: degraded to the greedy best-PU schedule (no optimality claim).
    degraded: bool = False

    @property
    def best(self) -> ScheduleCandidate:
        """The predicted-best candidate (level-2 output; level 3 may
        override it with a measured pick)."""
        if not self.candidates:
            raise SchedulingError("optimization produced no candidates")
        return self.candidates[0]

    def tiers(self, tolerance: float = 0.06) -> List[List[ScheduleCandidate]]:
        """Group candidates into performance tiers: consecutive candidates
        whose predicted latencies sit within ``tolerance`` of the tier's
        first member (the clustering the paper observes in section 3.3)."""
        tiers: List[List[ScheduleCandidate]] = []
        for candidate in self.candidates:
            if (
                tiers
                and candidate.predicted_latency_s
                <= tiers[-1][0].predicted_latency_s * (1.0 + tolerance)
            ):
                tiers[-1].append(candidate)
            else:
                tiers.append([candidate])
        return tiers


class BTOptimizer:
    """Levels 1 and 2 of the BetterTogether optimization.

    Args:
        application: Provides stage names/order.
        table: Profiling table (interference-aware for the real flow;
            prior-work comparisons pass an isolated table).
        pu_classes: Schedulable PU classes (the affinity map's output);
            defaults to the table's columns.
        k: Number of candidates for level 2.
        gap_slack: Gapness threshold slack (fraction of optimal T_max).
        max_chunk_time_s / min_chunk_time_s: Optional hard per-chunk
            bounds (constraints C3a / C3b).
        time_budget_s: Optional wall-clock budget across *all* solver
            invocations of one :meth:`optimize` call.  When it expires,
            the result degrades gracefully to the greedy best-PU
            schedule (``result.degraded`` is True) instead of raising.
        max_decisions: Optional per-invocation solver decision budget,
            forwarded to :class:`repro.solver.Solver`; exhaustion
            triggers the same greedy degradation.
    """

    def __init__(
        self,
        application: Application,
        table: ProfilingTable,
        pu_classes: Optional[Sequence[str]] = None,
        k: int = DEFAULT_K,
        gap_slack: float = DEFAULT_GAP_SLACK,
        max_chunk_time_s: Optional[float] = None,
        min_chunk_time_s: Optional[float] = None,
        time_budget_s: Optional[float] = None,
        max_decisions: Optional[int] = None,
    ):
        if k < 1:
            raise SchedulingError("k must be >= 1")
        if time_budget_s is not None and time_budget_s <= 0:
            raise SchedulingError("time_budget_s must be > 0")
        self.application = application
        self.table = table
        self.pu_classes = tuple(pu_classes or table.pu_classes)
        missing = set(self.pu_classes) - set(table.pu_classes)
        if missing:
            raise SchedulingError(
                f"table has no columns for PUs {sorted(missing)}"
            )
        if application.num_stages != len(table.stage_names):
            raise SchedulingError(
                "profiling table does not match the application's stages"
            )
        self.k = k
        self.gap_slack = gap_slack
        self.max_chunk_time_s = max_chunk_time_s
        self.min_chunk_time_s = min_chunk_time_s
        self.time_budget_s = time_budget_s
        self.max_decisions = max_decisions
        self._deadline: Optional[float] = None
        # Dense latency matrix for fast objective evaluation.
        self._lat = [
            [table.latency(stage, pu) for pu in self.pu_classes]
            for stage in application.stage_names
        ]
        self.solver_invocations = 0
        self.solver_wall_s = 0.0

    def _note_solve(self, solver: Solver) -> None:
        """Account one solver invocation (and mirror it into metrics)."""
        self.solver_invocations += 1
        self.solver_wall_s += solver.stats.wall_seconds
        reg = metrics()
        if reg.enabled:
            reg.counter("solver.invocations")
            reg.counter("solver.nodes", solver.stats.decisions)
            reg.counter("solver.conflicts", solver.stats.conflicts)
            reg.counter("solver.propagations", solver.stats.propagations)

    # ------------------------------------------------------------------
    # Constraint encoding
    # ------------------------------------------------------------------
    def _build_model(self) -> Tuple[Model, List[List]]:
        """Encode C1 + C2 (+ optional C3) over x[i][c] booleans."""
        model = Model()
        n = self.application.num_stages
        m = len(self.pu_classes)
        x = [
            [model.new_bool(f"x_{i}_{c}") for c in range(m)]
            for i in range(n)
        ]
        # C1: exactly one PU per stage.
        for i in range(n):
            model.add_exactly_one(x[i])
        # C2: contiguity - (x[i,c] & x[k,c]) => x[j,c] for i < j < k.
        for c in range(m):
            for i in range(n):
                for k in range(i + 2, n):
                    for j in range(i + 1, k):
                        model.add_implication([x[i][c], x[k][c]], x[j][c])
        # C3a: per-chunk upper bound via pseudo-boolean sums per PU (a
        # chunk's runtime is the sum of that PU's assigned stages).
        if self.max_chunk_time_s is not None:
            for c in range(m):
                model.add_linear_le(
                    [(x[i][c], self._lat[i][c]) for i in range(n)],
                    self.max_chunk_time_s,
                )
        return model, x

    def _decode(self, values: Sequence[int],
                x: List[List]) -> Tuple[int, ...]:
        """Assignment (PU column index per stage) from solver values."""
        assignment = []
        for row in x:
            for c, var in enumerate(row):
                if values[var.index] == 1:
                    assignment.append(c)
                    break
        return tuple(assignment)

    def _chunk_sums(self, assignment: Tuple[int, ...]) -> List[float]:
        sums: List[float] = []
        previous = None
        for i, c in enumerate(assignment):
            if c != previous:
                sums.append(0.0)
                previous = c
            sums[-1] += self._lat[i][c]
        return sums

    def _gapness(self, assignment: Tuple[int, ...]) -> float:
        sums = self._chunk_sums(assignment)
        return max(sums) - min(sums)

    def _latency(self, assignment: Tuple[int, ...]) -> float:
        return max(self._chunk_sums(assignment))

    def _meets_chunk_bounds(self, assignment: Tuple[int, ...]) -> bool:
        sums = self._chunk_sums(assignment)
        if self.max_chunk_time_s is not None and max(sums) > self.max_chunk_time_s:
            return False
        if self.min_chunk_time_s is not None and min(sums) < self.min_chunk_time_s:
            return False
        return True

    def _to_schedule(self, assignment: Tuple[int, ...]) -> Schedule:
        return Schedule.from_assignments(
            [self.pu_classes[c] for c in assignment]
        )

    def _make_solver(self, model: Model) -> Solver:
        """A solver honouring whatever remains of the wall budget."""
        remaining = None
        if self._deadline is not None:
            remaining = self._deadline - time.perf_counter()
            if remaining <= 0:
                raise SolverTimeoutError(
                    f"optimization wall-clock budget exhausted "
                    f"({self.time_budget_s}s)"
                )
        return Solver(model, max_decisions=self.max_decisions,
                      time_budget_s=remaining)

    # ------------------------------------------------------------------
    # Branch-and-bound lower bounds
    #
    # The solver branches stage-major, so a partial assignment is a
    # prefix of decided stages.  Every chunk in that prefix except the
    # last is *closed*: contiguity (C2) forbids its PU from reappearing,
    # so its runtime is final.  That makes the bounds below admissible
    # and keeps each solver invocation well under the paper's 50 ms.
    # ------------------------------------------------------------------
    def _closed_chunk_sums(self, values: Sequence[int],
                           x: List[List]) -> List[float]:
        """Chunk runtimes finalized by the decided prefix."""
        sums: List[float] = []
        previous = None
        for i, row in enumerate(x):
            decided = None
            for c, var in enumerate(row):
                if values[var.index] == 1:
                    decided = c
                    break
            if decided is None:
                break
            if decided != previous:
                sums.append(0.0)
                previous = decided
            sums[-1] += self._lat[i][decided]
        if sums:
            sums.pop()  # the last prefix chunk may still grow
        return sums

    def _latency_lower_bound(self, x: List[List]):
        def bound(values: Sequence[int]) -> float:
            closed = self._closed_chunk_sums(values, x)
            return max(closed) if closed else 0.0
        return bound

    def _gapness_lower_bound(self, x: List[List]):
        def bound(values: Sequence[int]) -> float:
            closed = self._closed_chunk_sums(values, x)
            if len(closed) < 2:
                return 0.0
            # Any completion's T_max >= max(closed) and T_min <= min(closed).
            return max(closed) - min(closed)
        return bound

    # ------------------------------------------------------------------
    # Level 1: utilization (gapness) optimum
    # ------------------------------------------------------------------
    def optimize_utilization(self) -> ScheduleCandidate:
        """Solve ``min (T_max - T_min)`` (objective O1)."""
        with tracer().span("solver.utilization", "solver",
                           application=self.application.name):
            return self._optimize_utilization_inner()

    def _optimize_utilization_inner(self) -> ScheduleCandidate:
        model, x = self._build_model()

        def objective(values: Sequence[int]) -> float:
            assignment = self._decode(values, x)
            if not self._meets_chunk_bounds(assignment):
                return math.inf
            return self._gapness(assignment)

        solver = self._make_solver(model)
        result = solver.minimize(
            objective, lower_bound=self._gapness_lower_bound(x)
        )
        self._note_solve(solver)
        if result is None:
            raise SchedulingError("utilization optimization is infeasible")
        solution, gap = result
        if math.isinf(gap):
            raise SchedulingError(
                "no schedule satisfies the per-chunk runtime bounds (C3)"
            )
        assignment = self._decode_solution(solution, x)
        return ScheduleCandidate(
            rank=0,
            schedule=self._to_schedule(assignment),
            predicted_latency_s=self._latency(assignment),
            gapness_s=gap,
        )

    def _decode_solution(self, solution, x) -> Tuple[int, ...]:
        assignment = []
        for row in x:
            for c, var in enumerate(row):
                if solution[var]:
                    assignment.append(c)
                    break
        return tuple(assignment)

    # ------------------------------------------------------------------
    # Greedy fallback (degraded mode)
    # ------------------------------------------------------------------
    def greedy_assignment(self) -> Tuple[int, ...]:
        """Stage-major greedy best-PU schedule (no solver involved).

        Walks the stages in order; each stage either stays on the
        current chunk's PU or opens a new chunk on the fastest PU not
        used yet, whichever has the lower profiled latency for that
        stage.  Contiguity (C2) holds by construction; the per-chunk
        bounds (C3) are *not* enforced - this is the degraded answer
        when the solver budget expires, not an optimal one.
        """
        n = self.application.num_stages
        m = len(self.pu_classes)
        used: set = set()
        current: Optional[int] = None
        assignment: List[int] = []
        for i in range(n):
            options = ([current] if current is not None else []) + [
                c for c in range(m) if c not in used and c != current
            ]
            best = min(options, key=lambda c: self._lat[i][c])
            if best != current:
                if current is not None:
                    used.add(current)
                current = best
            assignment.append(best)
        return tuple(assignment)

    def _degraded_result(
        self, partial: List[ScheduleCandidate]
    ) -> OptimizationResult:
        """Greedy best-PU schedule plus whatever level 2 already found."""
        greedy = self.greedy_assignment()
        pool: Dict[Tuple[int, ...], ScheduleCandidate] = {}
        pool[greedy] = ScheduleCandidate(
            rank=0,
            schedule=self._to_schedule(greedy),
            predicted_latency_s=self._latency(greedy),
            gapness_s=self._gapness(greedy),
        )
        for candidate in partial:
            key = tuple(
                self.pu_classes.index(pu)
                for pu in candidate.schedule.assignments
            )
            pool.setdefault(key, candidate)
        candidates = sorted(
            pool.values(),
            key=lambda c: (c.predicted_latency_s, c.gapness_s),
        )
        candidates = [
            ScheduleCandidate(
                rank=rank, schedule=c.schedule,
                predicted_latency_s=c.predicted_latency_s,
                gapness_s=c.gapness_s,
            )
            for rank, c in enumerate(candidates)
        ]
        return OptimizationResult(
            application=self.application.name,
            platform=self.table.platform,
            candidates=candidates,
            gap_threshold_s=max(c.gapness_s for c in candidates),
            utilization_optimum=None,
            solver_invocations=self.solver_invocations,
            solver_wall_s=self.solver_wall_s,
            degraded=True,
        )

    # ------------------------------------------------------------------
    # Level 2: latency, K diverse candidates via blocking clauses
    # ------------------------------------------------------------------
    def optimize(self) -> OptimizationResult:
        """Run levels 1 and 2; candidates sorted by predicted latency.

        With a ``time_budget_s`` (or ``max_decisions``), budget expiry
        degrades to :meth:`greedy_assignment` instead of raising; the
        result is flagged ``degraded``.  Every produced candidate is
        validated (C1/C2/C3/availability) before it is returned.
        """
        self._deadline = (
            None if self.time_budget_s is None
            else time.perf_counter() + self.time_budget_s
        )
        partial: List[ScheduleCandidate] = []
        with tracer().span("solver.optimize", "solver",
                           application=self.application.name, k=self.k):
            try:
                result = self._optimize_exact(partial)
            except SolverTimeoutError:
                result = self._degraded_result(partial)
            finally:
                self._deadline = None
        for candidate in result.candidates:
            validate_schedule(
                candidate.schedule,
                self.application,
                table=self.table,
                available_pus=self.pu_classes,
                # The greedy fallback cannot honour the chunk bounds.
                max_chunk_time_s=(
                    None if result.degraded else self.max_chunk_time_s
                ),
                min_chunk_time_s=(
                    None if result.degraded else self.min_chunk_time_s
                ),
            )
        return result

    def _optimize_exact(
        self, partial: List[ScheduleCandidate]
    ) -> OptimizationResult:
        """The solver-backed levels 1 + 2; appends each candidate to
        ``partial`` as found so a budget expiry can salvage them."""
        utilization = self.optimize_utilization()
        threshold = (
            utilization.gapness_s
            + self.gap_slack * utilization.predicted_latency_s
        )

        model, x = self._build_model()

        def filtered_objective(values: Sequence[int]) -> float:
            assignment = self._decode(values, x)
            if not self._meets_chunk_bounds(assignment):
                return math.inf
            if self._gapness(assignment) > threshold + 1e-12:
                return math.inf
            return self._latency(assignment)

        def unfiltered_objective(values: Sequence[int]) -> float:
            assignment = self._decode(values, x)
            if not self._meets_chunk_bounds(assignment):
                return math.inf
            return self._latency(assignment)

        candidates = partial  # shared so budget expiry can salvage them
        latency_bound = self._latency_lower_bound(x)
        # Phase 2a enumerates within the utilization threshold; when the
        # filtered space runs dry before K candidates exist (small
        # platforms like the Jetson have only ~2(N-1)+2 contiguous
        # schedules in total), phase 2b tops the set up without the
        # filter so autotuning still sees K diverse options.
        objective = filtered_objective
        trc = tracer()
        for rank in range(self.k):
            # One span per blocking-clause round: how each candidate was
            # found (filtered or top-up) and what it cost the solver.
            with trc.span("solver.candidate_round", "solver", rank=rank):
                solver = self._make_solver(model)
                result = solver.minimize(objective,
                                         lower_bound=latency_bound)
                self._note_solve(solver)
                exhausted = result is None or math.isinf(result[1])
                if exhausted:
                    if objective is unfiltered_objective:
                        break  # blocking clauses exhausted the space
                    objective = unfiltered_objective
                    solver = self._make_solver(model)
                    result = solver.minimize(
                        objective, lower_bound=latency_bound
                    )
                    self._note_solve(solver)
                    if result is None or math.isinf(result[1]):
                        break
                solution, latency = result
                assignment = self._decode_solution(solution, x)
                candidates.append(
                    ScheduleCandidate(
                        rank=rank,
                        schedule=self._to_schedule(assignment),
                        predicted_latency_s=latency,
                        gapness_s=self._gapness(assignment),
                    )
                )
                # C5-ell: forbid this exact assignment.
                model.forbid_assignment(
                    [x[i][c] for i, c in enumerate(assignment)]
                )
        # The paper sorts the candidate set by predicted latency (T_max)
        # at the end; the unfiltered top-up phase can otherwise leave a
        # low-latency, high-gapness schedule after a filtered one.
        candidates.sort(
            key=lambda c: (c.predicted_latency_s, c.gapness_s)
        )
        candidates = [
            ScheduleCandidate(
                rank=rank,
                schedule=c.schedule,
                predicted_latency_s=c.predicted_latency_s,
                gapness_s=c.gapness_s,
            )
            for rank, c in enumerate(candidates)
        ]
        return OptimizationResult(
            application=self.application.name,
            platform=self.table.platform,
            candidates=candidates,
            gap_threshold_s=threshold,
            utilization_optimum=utilization,
            solver_invocations=self.solver_invocations,
            solver_wall_s=self.solver_wall_s,
        )
