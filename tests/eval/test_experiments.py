"""Smoke + shape tests for the experiment drivers at quick scale.

These validate the machinery (every driver runs, formats, and exposes
its shape checks); the paper-scale shape assertions live in the
benchmarks, which run the full configuration.
"""

import pytest

from repro.eval.experiments import (
    APP_ORDER,
    ExperimentScale,
    build_applications,
    evaluation_platforms,
    format_fig1,
    format_fig7,
    format_table1,
    format_table2,
    format_table4,
    run_fig1,
    run_fig7,
    run_table4,
)


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale.quick()


class TestScale:
    def test_paper_defaults(self):
        paper = ExperimentScale.paper()
        assert paper.k == 20
        assert paper.repetitions == 30
        assert paper.sparse_batch == 128

    def test_quick_is_smaller(self, scale):
        paper = ExperimentScale.paper()
        assert scale.n_points < paper.n_points
        assert scale.k < paper.k

    def test_build_applications_order(self, scale):
        apps = build_applications(scale)
        assert tuple(apps) == APP_ORDER

    def test_four_platforms(self):
        platforms = evaluation_platforms()
        assert [p.name for p in platforms] == [
            "pixel7a", "oneplus11", "jetson_orin_nano",
            "jetson_orin_nano_lp",
        ]


class TestFig1:
    def test_shape_properties(self, scale):
        result = run_fig1(scale)
        assert result.gpu_is_worst_at_sort()
        assert result.gpu_is_best_at_radix_tree()
        assert result.octree_build_is_balanced()

    def test_format(self, scale):
        text = format_fig1(run_fig1(scale))
        assert "sort" in text and "radix-tree" in text


class TestFig7:
    def test_directions_all_match(self, scale):
        result = run_fig7(scale)
        assert result.directions_matching() == 12

    def test_pixel_gpu_boosts(self, scale):
        result = run_fig7(scale)
        assert result.ratios[("pixel7a", "gpu")] < 1.0
        assert result.ratios[("pixel7a", "big")] > 1.0

    def test_oneplus_little_boosts(self, scale):
        result = run_fig7(scale)
        assert result.ratios[("oneplus11", "little")] < 1.0

    def test_jetson_gpu_slows(self, scale):
        result = run_fig7(scale)
        assert result.ratios[("jetson_orin_nano", "gpu")] > 1.0
        assert result.ratios[("jetson_orin_nano_lp", "gpu")] > (
            result.ratios[("jetson_orin_nano", "gpu")]
        )

    def test_format(self, scale):
        text = format_fig7(run_fig7(scale))
        assert "paper" in text


class TestTable4:
    def test_autotuning_never_loses(self, scale):
        result = run_table4(scale, shown=5)
        assert result.autotuning_gain >= 1.0

    def test_format_rows(self, scale):
        text = format_table4(run_table4(scale, shown=5))
        assert "Measured (ms)" in text
        assert "Predicted (ms)" in text


class TestStaticTables:
    def test_table1_lists_apps(self, scale):
        text = format_table1(scale)
        assert "alexnet-dense" in text
        assert "octree" in text

    def test_table2_lists_platforms(self):
        text = format_table2()
        assert "Pixel" in text
        assert "Adreno 740" in text
        assert "Orin" in text
